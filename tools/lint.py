#!/usr/bin/env python
"""Offline fallback linter: a stdlib-only subset of the ruff gate.

``make lint`` prefers ruff (configured in ``pyproject.toml``); this
script keeps the gate meaningful on machines without it.  It implements
the highest-signal subset of the configured E/F/W/I rules:

* E401  multiple imports on one line
* E501  line longer than 88 characters
* E711/E712  comparison to ``None`` / ``True`` / ``False``
* E722  bare ``except:``
* E731  lambda assignment
* F401  imported name never used (module scope, AST-based; names that
  only appear inside string annotations count as used)
* W291/W293  trailing whitespace
* I001  first-party/stdlib import blocks out of sorted order (approximate)

Exit status 1 when any finding is reported, 0 otherwise — the same
contract CI's lint job relies on.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

MAX_LINE = 88
ROOTS = ("src", "tests", "benchmarks", "tools")

#: Allowed to go unused: re-export surfaces keep imports for their API.
REEXPORT_FILES = re.compile(r"__init__\.py$")


class Finding:
    def __init__(self, path: Path, line: int, code: str, msg: str) -> None:
        self.path = path
        self.line = line
        self.code = code
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.msg}"


def _string_annotation_names(tree: ast.AST) -> set[str]:
    """Identifier-ish tokens inside string annotations ("Foo | None")."""
    names: set[str] = set()
    for node in ast.walk(tree):
        annotation = getattr(node, "annotation", None)
        if isinstance(annotation, ast.Constant) \
                and isinstance(annotation.value, str):
            names.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*",
                                    annotation.value))
        if isinstance(node, ast.arg) and isinstance(
                node.annotation, ast.Constant) and isinstance(
                node.annotation.value, str):
            names.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*",
                                    node.annotation.value))
    return names


def check_unused_imports(path: Path, tree: ast.AST) -> list[Finding]:
    if REEXPORT_FILES.search(str(path)):
        return []
    imported: dict[str, tuple[int, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                imported[name] = (node.lineno, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                name = alias.asname or alias.name
                imported[name] = (node.lineno, alias.name)
    if not imported:
        return []
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)
    used |= _string_annotation_names(tree)
    # __all__ entries count as usage (re-export by name).
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
            if "__all__" in targets and isinstance(
                    node.value, (ast.List, ast.Tuple)):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) \
                            and isinstance(elt.value, str):
                        used.add(elt.value)
    return [Finding(path, lineno, "F401",
                    f"'{source}' imported but unused")
            for name, (lineno, source) in sorted(imported.items())
            if name not in used]


def check_ast(path: Path, tree: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(comparator, ast.Constant):
                    continue
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if comparator.value is None:
                    findings.append(Finding(
                        path, node.lineno, "E711",
                        "comparison to None (use 'is'/'is not')"))
                elif isinstance(comparator.value, bool):
                    findings.append(Finding(
                        path, node.lineno, "E712",
                        f"comparison to {comparator.value}"))
        elif isinstance(node, ast.ExceptHandler) and node.type is None:
            findings.append(Finding(path, node.lineno, "E722",
                                    "bare 'except:'"))
        elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Lambda):
            findings.append(Finding(
                path, node.lineno, "E731",
                "lambda assignment (use 'def')"))
        elif isinstance(node, ast.Import) and len(node.names) > 1:
            findings.append(Finding(path, node.lineno, "E401",
                                    "multiple imports on one line"))
    return findings


def check_lines(path: Path, text: str) -> list[Finding]:
    findings: list[Finding] = []
    for i, line in enumerate(text.splitlines(), start=1):
        # URLs in docstrings/comments get the same pass ruff's noqa
        # discipline would demand; everything else obeys the limit.
        if len(line) > MAX_LINE and "http" not in line:
            findings.append(Finding(
                path, i, "E501",
                f"line too long ({len(line)} > {MAX_LINE})"))
        if line != line.rstrip():
            code = "W293" if not line.strip() else "W291"
            findings.append(Finding(path, i, code, "trailing whitespace"))
    return findings


def _import_sort_key(line: str) -> tuple:
    stripped = line.strip()
    # isort style: straight imports precede from-imports in a block,
    # each group sorted by module (case-insensitive).
    if stripped.startswith("import "):
        return (0, stripped[len("import "):].split(" as ")[0].lower())
    return (1, stripped[len("from "):].split(" import ")[0].lower())


def check_import_order(path: Path, text: str) -> list[Finding]:
    """Approximate I001: within a contiguous import block, plain import
    lines must be sorted (case-insensitive by module).  Re-export
    modules (``__init__.py``) are exempt — their order is API surface
    and initialisation order, matching the per-file-ignores in
    ``pyproject.toml``."""
    if REEXPORT_FILES.search(str(path)):
        return []
    findings: list[Finding] = []
    block: list[tuple[int, str]] = []

    def flush() -> None:
        nonlocal block
        keys = [_import_sort_key(line) for _, line in block]
        if keys != sorted(keys):
            findings.append(Finding(
                path, block[0][0], "I001",
                "import block is not sorted"))
        block = []

    for i, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        is_import = (stripped.startswith(("import ", "from "))
                     and " import" in stripped + " import"
                     and "(" not in stripped)
        if is_import and not line.startswith((" ", "\t")):
            block.append((i, line))
        elif block:
            flush()
    if block:
        flush()
    return findings


def lint_file(path: Path) -> list[Finding]:
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, "E999",
                        f"syntax error: {exc.msg}")]
    return (check_lines(path, text)
            + check_import_order(path, text)
            + check_unused_imports(path, tree)
            + check_ast(path, tree))


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    targets = [Path(arg) for arg in argv] or [
        root / part for part in ROOTS]
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            files.append(target)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} finding(s) in {len(files)} files")
        return 1
    print(f"lint clean: {len(files)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
