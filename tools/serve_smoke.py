"""Serve-smoke gate: a chaos-killed worker fleet must finish byte-identically.

The CI-facing proof of the service layer's headline guarantee, end to
end with nothing mocked:

1. compute the fault-free quick-matrix payload fingerprints with a
   direct serial :class:`~repro.runner.engine.ExperimentRunner` (the
   oracle);
2. submit the same campaign to a fresh queue directory and run a
   2-process worker fleet against it with the *host-kill* chaos
   controller enabled — fleet members are SIGKILLed mid-job on
   deterministic draws and respawned, so leases genuinely expire and
   survivors reclaim the dead host's cells;
3. gate on (a) the job completing inside an explicit timeout, (b) at
   least one worker actually having been killed (a chaos run where
   nothing died proves nothing), and (c) every payload fingerprint
   being byte-identical to the fault-free oracle.

Exit status is the gate: 0 green, 1 red.  Run via ``make serve-smoke``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Explicit wall-clock guard: generous against CI noise, but a hang —
#: a lease that never expires, a worker that never takes over — must
#: fail the gate rather than the CI job's global timeout.
DEFAULT_TIMEOUT_S = 420.0


def fault_free_fingerprints(job) -> dict[str, str]:
    from repro.runner import ExperimentRunner
    runner = ExperimentRunner()
    results = runner.run(job.cells())
    if len(results) != len(job.cells()):
        raise SystemExit("oracle run failed to produce every cell")
    return {f"{spec.platform}/{spec.category}":
            payload["payload_sha256"]
            for spec, payload in results.items()}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--lease-ttl", type=float, default=4.0)
    parser.add_argument("--kill-rate", type=float, default=0.5,
                        help="per-tick probability of SIGKILLing a "
                             "fleet member (default 0.5)")
    parser.add_argument("--kill-interval", type=float, default=2.0)
    parser.add_argument("--timeout", type=float, default=DEFAULT_TIMEOUT_S)
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="run in DIR and keep it (default: tempdir)")
    args = parser.parse_args(argv)

    from repro.service import (
        Coordinator,
        HostChaosConfig,
        JobQueue,
        JobSpec,
        WorkerFleet,
    )
    from repro.runner import ResultCache

    workdir = Path(args.keep) if args.keep else Path(
        tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    queue = JobQueue(workdir / "queue")
    cache_root = workdir / "cells"
    job = JobSpec.matrix(quick=True)

    print(f"serve-smoke: oracle run ({len(job.cells())} cells) ...")
    oracle = fault_free_fingerprints(job)

    queue.submit(job)
    chaos = HostChaosConfig(kill_rate=args.kill_rate,
                            kill_interval_s=args.kill_interval)
    coordinator = Coordinator(queue, ResultCache(cache_root))
    fleet = WorkerFleet(queue.root, cache_root, size=args.workers,
                        ttl_s=args.lease_ttl, poll_s=0.1, chaos=chaos)

    def supervise(status) -> None:
        fleet.poll()
        # The quick matrix can outrun the random controller's first
        # tick, so once real progress exists mid-job, guarantee the
        # host loss the gate is about: SIGKILL a member outright.
        if fleet.kills == 0 and status.done >= 2 and status.pending > 0:
            fleet.kill_one(0)

    start = time.monotonic()
    with fleet:
        status = coordinator.wait(job, timeout_s=args.timeout, poll_s=0.25,
                                  on_poll=supervise)
        elapsed = time.monotonic() - start
        fleet.drain(timeout_s=30.0)
    print(f"serve-smoke: {status.summary()} in {elapsed:.1f}s "
          f"(kills={fleet.kills} respawns={fleet.respawns})")

    failures: list[str] = []
    if not status.complete:
        failures.append(f"job incomplete after {args.timeout:.0f}s: "
                        f"{status.pending} cells pending")
    if status.failed:
        failures.append(f"{status.failed} cells recorded terminal failures")
    if fleet.kills == 0:
        failures.append("chaos controller never killed a worker — "
                        "the run proved nothing; raise --kill-rate")
    got = coordinator.fingerprints(job)
    for coords, fingerprint in sorted(oracle.items()):
        if got.get(coords) != fingerprint:
            failures.append(
                f"fingerprint mismatch for {coords}: "
                f"{(got.get(coords) or 'absent')[:12]} != "
                f"{fingerprint[:12]}")
    if failures:
        for failure in failures:
            print(f"serve-smoke FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"serve-smoke passed: {len(oracle)} fingerprints byte-identical "
          f"under {fleet.kills} host kill(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
