PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench diff matrix scan chaos serve-smoke lint determinism ci

## Tier-1 test suite (fast; micro-benchmarks excluded via the bench marker).
## PYTEST_ARGS lets CI bolt on reporting flags (--junitxml, --durations)
## without forking the invocation.
test:
	$(PYTHON) -m pytest -x -q $(PYTEST_ARGS)

## Run the simulator micro-benchmarks and record BENCH_<date>.json.
bench:
	$(PYTHON) benchmarks/record_baseline.py

## Differential equivalence suite: fast engine vs reference interpreter.
diff:
	$(PYTHON) -m pytest -q tests/test_differential.py

## Quick evaluation matrix (Figure 1) from the CLI.
matrix:
	$(PYTHON) -m repro figure1

## Speculation scan: sweep the gadget corpus across the quick config grid
## with the multi-path explorer (memoized engine by default; add
## --no-memo for the byte-identical reference lane CI cross-checks
## against); non-zero exit on any expectation violation; leaves
## scan-report.{json,txt} for the CI artifact.
scan:
	$(PYTHON) -m repro scan --no-cache --check \
		--report-json scan-report.json --report-txt scan-report.txt

## Chaos suite: inject crash/hang/raise/corrupt faults into the runner's
## own workers (process level) and SIGKILL whole fleet members / plant
## lease wreckage (host level), proving recovery end to end.
chaos:
	$(PYTHON) -m pytest -q --run-chaos -m chaos \
		tests/test_chaos.py tests/test_service_chaos.py

## Evaluation-as-a-service smoke: a 2-worker fleet drains the quick
## matrix under host-kill chaos; gates on completion and on every
## payload fingerprint matching a fault-free direct run.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

## Lint gate: ruff when installed (pyproject [tool.ruff]), else the
## stdlib-only fallback implementing the same high-signal rule subset.
lint:
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		echo "ruff check ."; ruff check .; \
	else \
		echo "ruff not installed; using tools/lint.py fallback"; \
		$(PYTHON) tools/lint.py; \
	fi

## Determinism smoke: the seed-invariance tests under a fixed and then a
## different PYTHONHASHSEED — results must not depend on hash ordering.
determinism:
	PYTHONHASHSEED=0 $(PYTHON) -m pytest -q tests/test_runner.py -k HashSeed
	PYTHONHASHSEED=12345 $(PYTHON) -m pytest -q tests/test_runner.py -k HashSeed

## Everything CI gates on, runnable locally before pushing.
ci: lint test determinism
	@echo "local CI mirror passed"
