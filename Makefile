PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench diff matrix chaos

## Tier-1 test suite (fast; micro-benchmarks excluded via the bench marker).
test:
	$(PYTHON) -m pytest -x -q

## Run the simulator micro-benchmarks and record BENCH_<date>.json.
bench:
	$(PYTHON) benchmarks/record_baseline.py

## Differential equivalence suite: fast engine vs reference interpreter.
diff:
	$(PYTHON) -m pytest -q tests/test_differential.py

## Quick evaluation matrix (Figure 1) from the CLI.
matrix:
	$(PYTHON) -m repro figure1

## Chaos suite: inject crash/hang/raise/corrupt faults into the runner's
## own workers and prove the recovery guarantees end to end.
chaos:
	$(PYTHON) -m pytest -q --run-chaos -m chaos tests/test_chaos.py
