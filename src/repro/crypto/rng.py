"""Deterministic seeded RNG used throughout the simulation.

Experiments must be reproducible, so everything that needs randomness
(masks, nonces, key generation, noise, glitch timing) draws from an
explicitly seeded :class:`XorShiftRNG` rather than global state.
"""

from __future__ import annotations

_M64 = (1 << 64) - 1


class XorShiftRNG:
    """xorshift64* generator — fast, seedable, and stdlib-independent."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self._state = (seed or 1) & _M64

    def next_u64(self) -> int:
        """Next 64-bit value."""
        x = self._state
        x ^= (x >> 12) & _M64
        x = (x ^ (x << 25)) & _M64
        x ^= x >> 27
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _M64

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def next_byte(self) -> int:
        return self.next_u64() & 0xFF

    def bytes(self, n: int) -> bytes:
        """``n`` pseudo-random bytes."""
        out = bytearray()
        while len(out) < n:
            out.extend(self.next_u64().to_bytes(8, "little"))
        return bytes(out[:n])

    def gauss(self, mean: float = 0.0, std: float = 1.0) -> float:
        """Gaussian sample via the sum of 12 uniforms (Irwin–Hall)."""
        total = sum(self.next_u64() / _M64 for _ in range(12)) - 6.0
        return mean + std * total

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def odd_integer(self, bits: int) -> int:
        """Random odd integer with the top bit set (prime candidates)."""
        if bits < 2:
            raise ValueError("need at least 2 bits")
        value = int.from_bytes(self.bytes((bits + 7) // 8), "little")
        value &= (1 << bits) - 1
        value |= (1 << (bits - 1)) | 1
        return value
