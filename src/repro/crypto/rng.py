"""Deterministic seeded RNG used throughout the simulation.

Experiments must be reproducible, so everything that needs randomness
(masks, nonces, key generation, noise, glitch timing) draws from an
explicitly seeded :class:`XorShiftRNG` rather than global state.
"""

from __future__ import annotations

_M64 = (1 << 64) - 1


class XorShiftRNG:
    """xorshift64* generator — fast, seedable, and stdlib-independent."""

    def __init__(self, seed: int = 0x9E3779B97F4A7C15) -> None:
        self._state = (seed or 1) & _M64

    def next_u64(self) -> int:
        """Next 64-bit value."""
        x = self._state
        x ^= (x >> 12) & _M64
        x = (x ^ (x << 25)) & _M64
        x ^= x >> 27
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & _M64

    def next_below(self, bound: int) -> int:
        """Uniform integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def next_byte(self) -> int:
        return self.next_u64() & 0xFF

    def bytes(self, n: int) -> bytes:
        """``n`` pseudo-random bytes."""
        out = bytearray()
        while len(out) < n:
            out.extend(self.next_u64().to_bytes(8, "little"))
        return bytes(out[:n])

    def gauss(self, mean: float = 0.0, std: float = 1.0) -> float:
        """Gaussian sample via the sum of 12 uniforms (Irwin–Hall)."""
        total = sum(self.next_u64() / _M64 for _ in range(12)) - 6.0
        return mean + std * total

    def u64_block(self, count: int) -> list[int]:
        """``count`` consecutive :meth:`next_u64` values as one block.

        Bit-identical to calling :meth:`next_u64` ``count`` times — the
        state update is inlined into a local-variable loop so batched
        consumers (the vectorized power instrument) can pre-draw a whole
        capture's stream without per-call overhead.
        """
        x = self._state
        mul = 0x2545F4914F6CDD1D
        out = [0] * count
        for i in range(count):
            x ^= x >> 12
            x = (x ^ (x << 25)) & _M64
            x ^= x >> 27
            out[i] = (x * mul) & _M64
        self._state = x
        return out

    def gauss_block(self, count: int, mean: float = 0.0,
                    std: float = 1.0) -> list[float]:
        """``count`` consecutive :meth:`gauss` samples as one block.

        Sum order and the exact int-by-int true division match
        :meth:`gauss`, so the floats (and the final RNG state) are
        bit-identical to ``count`` scalar calls.
        """
        x = self._state
        mul = 0x2545F4914F6CDD1D
        out = [0.0] * count
        for i in range(count):
            total = 0.0
            for _ in range(12):
                x ^= x >> 12
                x = (x ^ (x << 25)) & _M64
                x ^= x >> 27
                total += ((x * mul) & _M64) / _M64
            out[i] = mean + std * (total - 6.0)
        self._state = x
        return out

    def shuffle(self, items: list) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_below(i + 1)
            items[i], items[j] = items[j], items[i]

    def odd_integer(self, bits: int) -> int:
        """Random odd integer with the top bit set (prime candidates)."""
        if bits < 2:
            raise ValueError("need at least 2 bits")
        value = int.from_bytes(self.bytes((bits + 7) // 8), "little")
        value &= (1 << bits) - 1
        value |= (1 << (bits - 1)) | 1
        return value
