"""From-scratch cryptographic implementations — the attack *targets*.

Every physical and cache attack in the paper needs a real cipher producing
real key-dependent intermediates.  This package provides them, each in the
variants the countermeasure discussion (Section 5) requires:

* :class:`TTableAES` — table-based AES-128 whose lookups are observable
  (cache side channels) and whose intermediates leak (power analysis).
* :class:`ConstantTimeAES` — touches every table entry per lookup, the
  software countermeasure of refs [3, 34].
* :class:`MaskedAES` — first-order boolean masking (Section 5's "masking").
* :class:`RSA` — square-and-multiply (timing-leaky, Kocher [23]),
  Montgomery-ladder (constant-time), and CRT signing with/without result
  verification (the Bellcore fault-attack countermeasure [5]).
* :func:`sha256` / :func:`hmac_sha256` — the attestation MAC substrate.
"""

from repro.crypto.sha256 import sha256
from repro.crypto.hmacmod import hmac_sha256, hmac_verify
from repro.crypto.rng import XorShiftRNG
from repro.crypto.aes import (
    AES128,
    ConstantTimeAES,
    MaskedAES,
    TTableAES,
)
from repro.crypto.modexp import (
    ModExpResult,
    modexp_ladder,
    modexp_square_multiply,
)
from repro.crypto.rsa import RSA, RSAKey, generate_rsa_key

__all__ = [
    "AES128",
    "ConstantTimeAES",
    "MaskedAES",
    "ModExpResult",
    "RSA",
    "RSAKey",
    "TTableAES",
    "XorShiftRNG",
    "generate_rsa_key",
    "hmac_sha256",
    "hmac_verify",
    "modexp_ladder",
    "modexp_square_multiply",
    "sha256",
]
