"""AES-128 from scratch, in the three variants Section 5 contrasts.

* :class:`AES128` — reference S-box implementation (also the decryptor).
* :class:`TTableAES` — the classic 32-bit T-table implementation.  Every
  table lookup is reported through ``on_lookup`` (table id, index), which
  the victim harness binds to simulated memory — producing the secret-
  dependent cache footprint Evict+Time / Prime+Probe / Flush+Reload read.
* :class:`ConstantTimeAES` — uniform access pattern: each round preloads
  every table cache line regardless of data (refs [3, 34]'s software
  countermeasure).  Timing and cache footprint become key-independent.
* :class:`MaskedAES` — genuine two-share first-order boolean masking with
  a per-encryption remasked S-box table; leaked intermediates are
  uniformly masked, defeating first-order DPA/CPA.

All variants support ``leak_hook(round, byte_index, value)`` for the power
model and ``fault_hook(round, state)`` for fault injection (the state may
be mutated in place — that *is* the glitch).

The S-box is derived, not transcribed: multiplicative inverse in GF(2^8)
followed by the affine transform, per FIPS-197.
"""

from __future__ import annotations

from typing import Callable

from repro.crypto.rng import XorShiftRNG

LeakHook = Callable[[int, int, int], None]  # (round, byte_index, value)
FaultHook = Callable[[int, bytearray], None]  # (round, state) mutate in place
LookupHook = Callable[[int, int], None]  # (table_id, index)

BLOCK_SIZE = 16
NUM_ROUNDS = 10


# -- GF(2^8) arithmetic and table generation -------------------------------------

def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _gf_inv(a: int) -> int:
    if a == 0:
        return 0
    # a^(2^8 - 2) by square-and-multiply.
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = gf_mul(result, power)
        power = gf_mul(power, power)
        exponent >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    sbox = [0] * 256
    inv = [0] * 256
    for x in range(256):
        b = _gf_inv(x)
        y = 0
        for bit in range(8):
            y |= (((b >> bit) ^ (b >> ((bit + 4) % 8)) ^ (b >> ((bit + 5) % 8))
                   ^ (b >> ((bit + 6) % 8)) ^ (b >> ((bit + 7) % 8))) & 1) << bit
        y ^= 0x63
        sbox[x] = y
        inv[y] = x
    return sbox, inv


SBOX, INV_SBOX = _build_sbox()


def _build_ttables() -> list[list[int]]:
    """Te0..Te3: 256-entry tables of 32-bit words (round lookups)."""
    te = [[0] * 256 for _ in range(4)]
    for x in range(256):
        s = SBOX[x]
        word = (gf_mul(s, 2) << 24) | (s << 16) | (s << 8) | gf_mul(s, 3)
        for t in range(4):
            te[t][x] = ((word >> (8 * t)) | (word << (32 - 8 * t))) & 0xFFFFFFFF
    return te


TE = _build_ttables()

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

#: State-byte index read by each of the 16 round-1 T-table lookups, in
#: lookup order: lookup ``j`` uses table ``j % 4`` and state byte
#: ``TTABLE_LOOKUP_BYTE[j]`` (the ShiftRows source index) — the mapping
#: cache attacks invert to attribute an observed set to a key byte.
TTABLE_LOOKUP_BYTE = [(row + 4 * ((col + row) % 4))
                      for col in range(4) for row in range(4)]


def expand_key(key: bytes) -> list[bytes]:
    """AES-128 key schedule: 11 round keys of 16 bytes."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [bytes(sum(words[4 * r:4 * r + 4], []))
            for r in range(NUM_ROUNDS + 1)]


def invert_key_schedule(last_round_key: bytes) -> bytes:
    """Recover the AES-128 master key from round key 10.

    The key schedule is invertible: ``w[i-4] = w[i] ^ g(w[i-1])``.  This
    is the final step of every last-round attack (cache, DFA, CLKSCREW):
    once ``k10`` is known, so is the cipher key.
    """
    if len(last_round_key) != 16:
        raise ValueError("round key must be 16 bytes")
    words: list[list[int] | None] = [None] * 44
    for j in range(4):
        words[40 + j] = list(last_round_key[4 * j:4 * j + 4])
    for i in range(43, 3, -1):
        prev = words[i - 1]
        temp = list(prev)
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // 4 - 1]
        words[i - 4] = [a ^ b for a, b in zip(words[i], temp)]
    return bytes(sum((words[j] for j in range(4)), []))


def _shift_rows(state: bytearray) -> bytearray:
    out = bytearray(16)
    for col in range(4):
        for row in range(4):
            out[4 * col + row] = state[(4 * (col + row) + row) % 16]
    return out


def _inv_shift_rows(state: bytearray) -> bytearray:
    out = bytearray(16)
    for col in range(4):
        for row in range(4):
            out[(4 * (col + row) + row) % 16] = state[4 * col + row]
    return out


def _mix_single_column(col: bytearray) -> bytearray:
    a = list(col)
    return bytearray([
        gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3],
        a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3],
        a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3),
        gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2),
    ])


def _mix_columns(state: bytearray) -> bytearray:
    out = bytearray()
    for col in range(4):
        out.extend(_mix_single_column(state[4 * col:4 * col + 4]))
    return out


def _inv_mix_columns(state: bytearray) -> bytearray:
    out = bytearray()
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        out.extend([
            gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9),
            gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13),
            gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11),
            gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14),
        ])
    return out


class AES128:
    """Reference AES-128 with leakage and fault hooks."""

    def __init__(self, key: bytes,
                 leak_hook: LeakHook | None = None,
                 fault_hook: FaultHook | None = None) -> None:
        self.round_keys = expand_key(key)
        self.leak_hook = leak_hook
        self.fault_hook = fault_hook

    def _leak(self, rnd: int, state: bytearray) -> None:
        if self.leak_hook is not None:
            for i, value in enumerate(state):
                self.leak_hook(rnd, i, value)

    def _fault(self, rnd: int, state: bytearray) -> None:
        if self.fault_hook is not None:
            self.fault_hook(rnd, state)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError("plaintext block must be 16 bytes")
        state = bytearray(a ^ b for a, b in zip(plaintext, self.round_keys[0]))
        for rnd in range(1, NUM_ROUNDS):
            self._fault(rnd, state)
            state = bytearray(SBOX[b] for b in state)
            self._leak(rnd, state)
            state = _shift_rows(state)
            state = _mix_columns(state)
            state = bytearray(a ^ b for a, b in
                              zip(state, self.round_keys[rnd]))
        self._fault(NUM_ROUNDS, state)
        state = bytearray(SBOX[b] for b in state)
        self._leak(NUM_ROUNDS, state)
        state = _shift_rows(state)
        state = bytearray(a ^ b for a, b in
                          zip(state, self.round_keys[NUM_ROUNDS]))
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != BLOCK_SIZE:
            raise ValueError("ciphertext block must be 16 bytes")
        state = bytearray(a ^ b for a, b in
                          zip(ciphertext, self.round_keys[NUM_ROUNDS]))
        state = _inv_shift_rows(state)
        state = bytearray(INV_SBOX[b] for b in state)
        for rnd in range(NUM_ROUNDS - 1, 0, -1):
            state = bytearray(a ^ b for a, b in
                              zip(state, self.round_keys[rnd]))
            state = _inv_mix_columns(state)
            state = _inv_shift_rows(state)
            state = bytearray(INV_SBOX[b] for b in state)
        return bytes(a ^ b for a, b in zip(state, self.round_keys[0]))


class TTableAES(AES128):
    """T-table AES: the classic fast-but-leaky software implementation.

    Table ids reported to ``on_lookup``: 0-3 for Te0-Te3 (rounds 1-9),
    4 for the final-round S-box table.
    """

    def __init__(self, key: bytes,
                 on_lookup: LookupHook | None = None,
                 leak_hook: LeakHook | None = None,
                 fault_hook: FaultHook | None = None) -> None:
        super().__init__(key, leak_hook=leak_hook, fault_hook=fault_hook)
        self.on_lookup = on_lookup

    def _lookup(self, table: int, index: int) -> int:
        if self.on_lookup is not None:
            self.on_lookup(table, index)
        if table == 4:
            return SBOX[index]
        return TE[table][index]

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError("plaintext block must be 16 bytes")
        state = bytearray(a ^ b for a, b in zip(plaintext, self.round_keys[0]))
        for rnd in range(1, NUM_ROUNDS):
            self._fault(rnd, state)
            new = bytearray(16)
            for col in range(4):
                acc = 0
                for row in range(4):
                    byte = state[(4 * (col + row) + row) % 16]
                    # Te_row already embeds the row's rotation.
                    acc ^= self._lookup(row, byte)
                for row in range(4):
                    new[4 * col + row] = (acc >> (24 - 8 * row)) & 0xFF
            state = bytearray(a ^ b for a, b in zip(new, self.round_keys[rnd]))
            if self.leak_hook is not None:
                self._leak(rnd, state)
        self._fault(NUM_ROUNDS, state)
        final = bytearray(16)
        for col in range(4):
            for row in range(4):
                byte = state[(4 * (col + row) + row) % 16]
                final[4 * col + row] = self._lookup(4, byte)
        self._leak(NUM_ROUNDS, final)
        return bytes(a ^ b for a, b in zip(final, self.round_keys[NUM_ROUNDS]))


class ConstantTimeAES(AES128):
    """Uniform-access AES: preloads every table line each round.

    The computation itself is the reference path (no data-dependent
    lookups reach memory); ``on_lookup`` is called for *every line of every
    table* once per round, modelling the scanning preload of cache-attack-
    hardened libraries.  ``entries_per_line`` matches 64-byte lines over
    4-byte entries.
    """

    def __init__(self, key: bytes,
                 on_lookup: LookupHook | None = None,
                 leak_hook: LeakHook | None = None,
                 fault_hook: FaultHook | None = None,
                 entries_per_line: int = 16) -> None:
        super().__init__(key, leak_hook=leak_hook, fault_hook=fault_hook)
        self.on_lookup = on_lookup
        self.entries_per_line = entries_per_line

    def _preload(self) -> None:
        if self.on_lookup is None:
            return
        for table in range(5):
            for index in range(0, 256, self.entries_per_line):
                self.on_lookup(table, index)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        # The memory access pattern is a constant: one full-table scan per
        # round, independent of data, then the arithmetic S-box path.
        for _ in range(NUM_ROUNDS):
            self._preload()
        return super().encrypt_block(plaintext)


class MaskedAES(AES128):
    """First-order boolean-masked AES (two shares, remasked S-box table).

    Per encryption two fresh mask bytes are drawn: ``m_in`` (the uniform
    input mask) and ``m_out`` (the S-box output mask).  The masked table
    ``S'[x] = S[x ^ m_in] ^ m_out`` is rebuilt per block.  Leaked
    intermediates are always one share — uniformly distributed and
    independent of the secret, which is what defeats first-order DPA.
    """

    def __init__(self, key: bytes, rng: XorShiftRNG,
                 leak_hook: LeakHook | None = None,
                 fault_hook: FaultHook | None = None) -> None:
        super().__init__(key, leak_hook=leak_hook, fault_hook=fault_hook)
        self.rng = rng

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != BLOCK_SIZE:
            raise ValueError("plaintext block must be 16 bytes")
        m_in = self.rng.next_byte()
        m_out = self.rng.next_byte()
        masked_sbox = [SBOX[x ^ m_in] ^ m_out for x in range(256)]

        # share0 ^ share1 == true state; share1 starts as a random mask.
        share1 = bytearray(self.rng.next_byte() for _ in range(16))
        share0 = bytearray(p ^ k ^ m for p, k, m in
                           zip(plaintext, self.round_keys[0], share1))

        for rnd in range(1, NUM_ROUNDS):
            share0, share1 = self._masked_round(
                rnd, share0, share1, masked_sbox, m_in, m_out, final=False)
        share0, share1 = self._masked_round(
            NUM_ROUNDS, share0, share1, masked_sbox, m_in, m_out, final=True)
        return bytes(a ^ b for a, b in zip(share0, share1))

    def _masked_round(self, rnd: int, share0: bytearray, share1: bytearray,
                      masked_sbox: list[int], m_in: int, m_out: int,
                      final: bool) -> tuple[bytearray, bytearray]:
        # Remask so every share1 byte equals m_in (table precondition).
        share0 = bytearray(s0 ^ s1 ^ m_in for s0, s1 in zip(share0, share1))
        share1 = bytearray([m_in] * 16)
        if self.fault_hook is not None:
            self.fault_hook(rnd, share0)  # glitch lands on one share
        # Masked SubBytes: share0 = S(state) ^ m_out.
        share0 = bytearray(masked_sbox[b] for b in share0)
        share1 = bytearray([m_out] * 16)
        if self.leak_hook is not None:
            for i, value in enumerate(share0):
                self.leak_hook(rnd, i, value)  # masked value leaks
        share0 = _shift_rows(share0)
        share1 = _shift_rows(share1)
        if not final:
            share0 = _mix_columns(share0)
            share1 = _mix_columns(share1)
        share0 = bytearray(a ^ b for a, b in
                           zip(share0, self.round_keys[rnd]))
        return share0, share1
