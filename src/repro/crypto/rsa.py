"""RSA: key generation, (timing-leaky) decryption, CRT signing.

The CRT signer is the Bellcore fault-attack target (paper ref [5]): a
fault in exactly one CRT half yields a signature that is correct mod one
prime and wrong mod the other, and ``gcd(sig^e - m, n)`` factors the
modulus.  The countermeasure — verify the signature before releasing it —
is a constructor flag, so the fault bench can measure both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Callable

from repro.crypto.modexp import (
    ModExpResult,
    modexp_ladder,
    modexp_square_multiply,
)
from repro.crypto.rng import XorShiftRNG
from repro.errors import SecurityViolation

#: Witnesses making Miller-Rabin deterministic for all n < 3.3 * 10^24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int) -> bool:
    """Miller-Rabin with fixed witnesses (deterministic below 3.3e24)."""
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: XorShiftRNG) -> int:
    while True:
        candidate = rng.odd_integer(bits)
        if is_probable_prime(candidate):
            return candidate


@dataclass(frozen=True)
class RSAKey:
    """Private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int
    dp: int
    dq: int
    qinv: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def public(self) -> tuple[int, int]:
        return self.n, self.e


def generate_rsa_key(bits: int = 256, rng: XorShiftRNG | None = None,
                     e: int = 65537) -> RSAKey:
    """Generate an RSA key (default small for simulation speed)."""
    if bits < 32:
        raise ValueError("key too small even for simulation")
    rng = rng or XorShiftRNG(0xC0FFEE)
    half = bits // 2
    while True:
        p = _random_prime(half, rng)
        q = _random_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if gcd(e, phi) != 1:
            continue
        d = pow(e, -1, phi)
        return RSAKey(n=p * q, e=e, d=d, p=p, q=q,
                      dp=d % (p - 1), dq=d % (q - 1),
                      qinv=pow(q, -1, p))


#: Fault hook signature for CRT halves: hook(half_name, value) -> new value.
CRTFaultHook = Callable[[str, int], int]


class RSA:
    """RSA operations over one key.

    ``constant_time=True`` switches private exponentiation to the
    Montgomery ladder (timing countermeasure); ``verify_signatures=True``
    enables the Bellcore countermeasure on :meth:`sign_crt`.
    """

    def __init__(self, key: RSAKey, constant_time: bool = False,
                 verify_signatures: bool = False) -> None:
        self.key = key
        self.constant_time = constant_time
        self.verify_signatures = verify_signatures

    # -- public operations ---------------------------------------------------

    def encrypt(self, message: int) -> int:
        """Public-key operation ``m^e mod n``."""
        self._check_range(message)
        return pow(message, self.key.e, self.key.n)

    def verify(self, message: int, signature: int) -> bool:
        """True when ``signature^e mod n == message``."""
        return pow(signature, self.key.e, self.key.n) == message % self.key.n

    # -- private operations ---------------------------------------------------

    def decrypt_timed(self, ciphertext: int,
                      noise_rng: XorShiftRNG | None = None,
                      noise_std: float = 0.0) -> ModExpResult:
        """Private-key operation with its timing trace (the SCA target)."""
        self._check_range(ciphertext)
        modexp = modexp_ladder if self.constant_time \
            else modexp_square_multiply
        return modexp(ciphertext, self.key.d, self.key.n,
                      noise_rng=noise_rng, noise_std=noise_std)

    def decrypt(self, ciphertext: int) -> int:
        """Private-key operation, value only."""
        return self.decrypt_timed(ciphertext).value

    def sign_crt(self, message: int,
                 fault_hook: CRTFaultHook | None = None) -> int:
        """CRT signature ``m^d mod n`` via the two half-exponentiations.

        ``fault_hook`` models a glitch: it may corrupt either half-result.
        With ``verify_signatures`` the (possibly faulty) signature is
        checked against the public key before release and a
        :class:`SecurityViolation` is raised instead of emitting it —
        Bellcore's countermeasure.
        """
        self._check_range(message)
        key = self.key
        sp = pow(message % key.p, key.dp, key.p)
        sq = pow(message % key.q, key.dq, key.q)
        if fault_hook is not None:
            sp = fault_hook("p", sp) % key.p
            sq = fault_hook("q", sq) % key.q
        h = (key.qinv * (sp - sq)) % key.p
        signature = (sq + h * key.q) % key.n
        if self.verify_signatures and not self.verify(message, signature):
            raise SecurityViolation(
                "CRT signature failed self-verification; withheld")
        return signature

    def _check_range(self, value: int) -> None:
        if not 0 <= value < self.key.n:
            raise ValueError("value out of range for modulus")
