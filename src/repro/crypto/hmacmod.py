"""HMAC-SHA256 (RFC 2104) over the local SHA-256."""

from __future__ import annotations

from repro.crypto.sha256 import sha256

_BLOCK = 64


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """MAC ``message`` under ``key``; returns 32 bytes."""
    if len(key) > _BLOCK:
        key = sha256(key)
    key = key.ljust(_BLOCK, b"\x00")
    ipad = bytes(b ^ 0x36 for b in key)
    opad = bytes(b ^ 0x5C for b in key)
    return sha256(opad + sha256(ipad + message))


def hmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time-style tag comparison (no early exit on mismatch)."""
    expected = hmac_sha256(key, message)
    if len(tag) != len(expected):
        return False
    diff = 0
    for a, b in zip(expected, tag):
        diff |= a ^ b
    return diff == 0
