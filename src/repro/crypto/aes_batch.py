"""Batched AES-128: fancy-indexed table lookups over ``(N, 16)`` matrices.

The scalar ciphers in :mod:`repro.crypto.aes` drive trace acquisition one
block (and one Python byte-loop) at a time; for the Table-S5 suites and
trace-count sweeps that per-block interpretation dominates the cost of
the whole physical-attack stack.  This module encrypts an ``(N, 16)``
uint8 plaintext matrix in ~10 numpy round steps and hands back the
per-round intermediate-state matrices the power instrument needs —
exactly the values the scalar ``leak_hook`` would have seen, in the same
round order.

Two batch ciphers mirror the two leak-hook-bearing scalar variants the
power stack measures:

* :class:`BatchAES128` — the reference S-box path.  Intermediates are
  the post-SubBytes state of each round, matching where
  ``AES128.encrypt_block`` fires its hook.
* :class:`BatchMaskedAES` — first-order boolean masking.  The scalar
  ``MaskedAES`` leaks ``S(state) ^ m_out`` (the masked share) and draws
  18 bytes per block from its RNG (``m_in``, ``m_out``, 16 share bytes);
  the batch path consumes the *identical* stream via a pre-drawn block
  and XORs ``m_out`` into the plain intermediates.

Ciphertexts are bit-identical to the scalar variants by construction —
the differential harness in :mod:`repro.power.diff` proves it.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.aes import NUM_ROUNDS, SBOX, expand_key, gf_mul
from repro.crypto.rng import XorShiftRNG

SBOX_TABLE = np.array(SBOX, dtype=np.uint8)
_GF2 = np.array([gf_mul(x, 2) for x in range(256)], dtype=np.uint8)
_GF3 = np.array([gf_mul(x, 3) for x in range(256)], dtype=np.uint8)
#: ``out[i] = state[_SHIFT_ROWS[i]]`` reproduces ``aes._shift_rows``.
_SHIFT_ROWS = np.array([(4 * (col + row) + row) % 16
                        for col in range(4) for row in range(4)],
                       dtype=np.intp)


def _round_key_matrix(round_keys: list[bytes]) -> np.ndarray:
    """(11, 16) uint8 view of an expanded key schedule."""
    return np.frombuffer(b"".join(round_keys),
                         dtype=np.uint8).reshape(NUM_ROUNDS + 1, 16)


def _mix_columns(state: np.ndarray) -> np.ndarray:
    """MixColumns over an (N, 16) state matrix."""
    a = state.reshape(-1, 4, 4)
    t2 = _GF2[a]
    t3 = _GF3[a]
    out = np.empty_like(a)
    out[:, :, 0] = t2[:, :, 0] ^ t3[:, :, 1] ^ a[:, :, 2] ^ a[:, :, 3]
    out[:, :, 1] = a[:, :, 0] ^ t2[:, :, 1] ^ t3[:, :, 2] ^ a[:, :, 3]
    out[:, :, 2] = a[:, :, 0] ^ a[:, :, 1] ^ t2[:, :, 2] ^ t3[:, :, 3]
    out[:, :, 3] = t3[:, :, 0] ^ a[:, :, 1] ^ a[:, :, 2] ^ t2[:, :, 3]
    return out.reshape(-1, 16)


def encrypt_blocks(round_keys: np.ndarray, plaintexts: np.ndarray,
                   rounds_of_interest: tuple[int, ...] = (),
                   ) -> tuple[np.ndarray, dict[int, np.ndarray]]:
    """Encrypt an ``(N, 16)`` uint8 matrix under one key schedule.

    Returns ``(ciphertexts, intermediates)`` where ``intermediates[rnd]``
    is the post-SubBytes ``(N, 16)`` state of round ``rnd`` for every
    requested round — the value the scalar ``leak_hook`` observes.
    """
    wanted = frozenset(rounds_of_interest)
    state = plaintexts ^ round_keys[0]
    intermediates: dict[int, np.ndarray] = {}
    for rnd in range(1, NUM_ROUNDS):
        state = SBOX_TABLE[state]
        if rnd in wanted:
            intermediates[rnd] = state
        state = _mix_columns(state[:, _SHIFT_ROWS])
        state ^= round_keys[rnd]
    state = SBOX_TABLE[state]
    if NUM_ROUNDS in wanted:
        intermediates[NUM_ROUNDS] = state
    ciphertexts = state[:, _SHIFT_ROWS] ^ round_keys[NUM_ROUNDS]
    return ciphertexts, intermediates


class BatchAES128:
    """Vectorized twin of :class:`repro.crypto.aes.AES128`."""

    #: RNG stream the cipher consumes per block (none: deterministic).
    rng: XorShiftRNG | None = None

    def __init__(self, key: bytes | None = None,
                 round_keys: list[bytes] | None = None) -> None:
        if round_keys is None:
            if key is None:
                raise ValueError("need a key or an expanded schedule")
            round_keys = expand_key(key)
        self._round_keys = _round_key_matrix(round_keys)

    def encrypt_blocks(self, plaintexts: np.ndarray,
                       rounds_of_interest: tuple[int, ...] = (),
                       ) -> tuple[np.ndarray, dict[int, np.ndarray]]:
        """(ciphertexts, {round: post-SubBytes state}) for the matrix."""
        return encrypt_blocks(self._round_keys, plaintexts,
                              rounds_of_interest)


class BatchMaskedAES(BatchAES128):
    """Vectorized twin of :class:`repro.crypto.aes.MaskedAES`.

    The scalar masked round leaks ``S'(share0) = S(state) ^ m_out``
    (the masked S-box output share), and its ciphertext equals plain
    AES.  Per block it draws ``m_in``, ``m_out`` and 16 ``share1`` bytes
    from its RNG; the batch path pre-draws all ``18 * N`` bytes in that
    exact order — the RNG leaves the capture in the same state as the
    scalar loop even though only ``m_out`` reaches an observable.
    """

    def __init__(self, rng: XorShiftRNG, key: bytes | None = None,
                 round_keys: list[bytes] | None = None) -> None:
        super().__init__(key, round_keys)
        self.rng = rng

    def encrypt_blocks(self, plaintexts: np.ndarray,
                       rounds_of_interest: tuple[int, ...] = (),
                       ) -> tuple[np.ndarray, dict[int, np.ndarray]]:
        n = plaintexts.shape[0]
        draws = np.array(self.rng.u64_block(18 * n),
                         dtype=np.uint64).reshape(n, 18)
        m_out = draws[:, 1].astype(np.uint8)[:, np.newaxis]
        ciphertexts, intermediates = super().encrypt_blocks(
            plaintexts, rounds_of_interest)
        return ciphertexts, {rnd: state ^ m_out
                             for rnd, state in intermediates.items()}
