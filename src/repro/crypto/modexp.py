"""Modular exponentiation with a data-dependent timing model.

Kocher's timing attack (paper ref [23]) needs an implementation whose
per-operation time depends on operand values — on real hardware the extra
reduction step of Montgomery multiplication.  :func:`mult_time` models
that: a modular multiply costs a base unit plus one *extra-reduction* unit
whenever the reduced product lands in the upper half of the modulus range.
The function is pure and public, because the attack's whole premise is
that the adversary can *simulate* the victim's per-step timing for a key
hypothesis and correlate it with measurements.

Two exponentiation strategies:

* :func:`modexp_square_multiply` — MSB-first square-and-multiply; the
  multiply only happens for 1-bits and its duration is data-dependent.
  Timing-leaky.
* :func:`modexp_ladder` — Montgomery ladder; every bit performs the same
  two operations regardless of its value.  The timing countermeasure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import XorShiftRNG

BASE_MULT_COST = 2.0
EXTRA_REDUCTION_COST = 1.0


def mult_time(x: int, y: int, mod: int) -> float:
    """Simulated duration of one modular multiplication.

    Deterministic in the operands (attacker-simulatable), data-dependent
    (leaky): the "extra reduction" fires when the reduced product exceeds
    half the modulus.
    """
    product = (x * y) % mod
    extra = EXTRA_REDUCTION_COST if product >= (mod >> 1) else 0.0
    return BASE_MULT_COST + extra


@dataclass
class ModExpResult:
    """Value plus the timing trace the physical adversary measures."""

    value: int
    time: float
    op_times: list[float] = field(default_factory=list)


def modexp_square_multiply(base: int, exponent: int, mod: int,
                           noise_rng: XorShiftRNG | None = None,
                           noise_std: float = 0.0) -> ModExpResult:
    """MSB-first square-and-multiply (timing-leaky).

    ``noise_rng``/``noise_std`` add Gaussian measurement noise to the total
    time, modelling jitter between the victim and the adversary's clock.
    """
    if mod <= 1:
        raise ValueError("modulus must be > 1")
    result = 1 % mod
    total = 0.0
    op_times: list[float] = []
    for i in range(exponent.bit_length() - 1, -1, -1):
        square_t = mult_time(result, result, mod)
        result = (result * result) % mod
        total += square_t
        op_times.append(square_t)
        if (exponent >> i) & 1:
            mult_t = mult_time(result, base, mod)
            result = (result * base) % mod
            total += mult_t
            op_times.append(mult_t)
    if noise_rng is not None and noise_std > 0:
        total += abs(noise_rng.gauss(0.0, noise_std))
    return ModExpResult(result, total, op_times)


def modexp_ladder(base: int, exponent: int, mod: int,
                  noise_rng: XorShiftRNG | None = None,
                  noise_std: float = 0.0) -> ModExpResult:
    """Montgomery ladder: one square and one multiply per bit, always.

    Total operation *count* is bit-independent; residual leakage through
    operand-dependent :func:`mult_time` is charged at a constant, making
    the per-bit signal Kocher's attack needs vanish.
    """
    if mod <= 1:
        raise ValueError("modulus must be > 1")
    r0, r1 = 1 % mod, base % mod
    total = 0.0
    op_times: list[float] = []
    for i in range(exponent.bit_length() - 1, -1, -1):
        bit = (exponent >> i) & 1
        if bit:
            r0 = (r0 * r1) % mod
            r1 = (r1 * r1) % mod
        else:
            r1 = (r0 * r1) % mod
            r0 = (r0 * r0) % mod
        # Constant-time hardware: both ops charged at worst-case cost.
        step = 2 * (BASE_MULT_COST + EXTRA_REDUCTION_COST)
        total += step
        op_times.append(step)
    if noise_rng is not None and noise_std > 0:
        total += abs(noise_rng.gauss(0.0, noise_std))
    return ModExpResult(r0, total, op_times)
