"""Named physical memory regions with permissions.

A :class:`RegionMap` describes the SoC's physical address layout (DRAM,
ROM, device MMIO, enclave page cache, ...).  Architectures consult it when
configuring bus access control, and tests use it to build realistic
memory maps compactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Permissions:
    """Read/write/execute permission triple."""

    read: bool = True
    write: bool = True
    execute: bool = False

    @classmethod
    def rwx(cls) -> "Permissions":
        return cls(True, True, True)

    @classmethod
    def rx(cls) -> "Permissions":
        return cls(True, False, True)

    @classmethod
    def ro(cls) -> "Permissions":
        return cls(True, False, False)

    @classmethod
    def rw(cls) -> "Permissions":
        return cls(True, True, False)

    def allows(self, access: str) -> bool:
        """True when this triple permits ``access`` (read/write/execute)."""
        if access == "read":
            return self.read
        if access == "write":
            return self.write
        if access == "execute":
            return self.execute
        raise ValueError(f"unknown access kind {access!r}")

    def __str__(self) -> str:
        return ("r" if self.read else "-") + \
               ("w" if self.write else "-") + \
               ("x" if self.execute else "-")


@dataclass(frozen=True)
class MemoryRegion:
    """One contiguous physical region.

    Attributes:
        name: human-readable identifier (``"dram"``, ``"boot-rom"``...).
        base: first byte address.
        size: length in bytes.
        perms: default permissions.
        secure: TrustZone-style secure-world-only marking.
        device: True for MMIO (never cached).
        cacheable: False forces uncached access even for normal memory —
            Sanctuary's defence marks enclave memory this way.
    """

    name: str
    base: int
    size: int
    perms: Permissions = field(default_factory=Permissions.rwx)
    secure: bool = False
    device: bool = False
    cacheable: bool = True

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"region {self.name!r} has size {self.size}")
        if self.base < 0:
            raise ConfigurationError(f"region {self.name!r} has base {self.base}")

    @property
    def end(self) -> int:
        """First address past the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls in this region."""
        return self.base <= addr < self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        """True when the two regions share any address."""
        return self.base < other.end and other.base < self.end

    def with_secure(self, secure: bool) -> "MemoryRegion":
        """Copy of this region with the secure bit changed."""
        return replace(self, secure=secure)

    def with_cacheable(self, cacheable: bool) -> "MemoryRegion":
        """Copy of this region with the cacheable bit changed."""
        return replace(self, cacheable=cacheable)


class RegionMap:
    """An ordered, non-overlapping set of :class:`MemoryRegion`."""

    def __init__(self, regions: list[MemoryRegion] | None = None) -> None:
        self._regions: list[MemoryRegion] = []
        #: Bumped on every layout change; memoising consumers (the MMU's
        #: identity-translation cache, :meth:`find`) key on it.
        self.version = 0
        self._find_cache: dict[int, MemoryRegion | None] = {}
        for region in regions or []:
            self.add(region)

    def add(self, region: MemoryRegion) -> None:
        """Insert a region; rejects overlaps and duplicate names."""
        for existing in self._regions:
            if existing.name == region.name:
                raise ConfigurationError(f"duplicate region name {region.name!r}")
            if existing.overlaps(region):
                raise ConfigurationError(
                    f"region {region.name!r} overlaps {existing.name!r}")
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        self.version += 1
        self._find_cache.clear()

    def remove(self, name: str) -> MemoryRegion:
        """Remove and return the region called ``name``."""
        for i, region in enumerate(self._regions):
            if region.name == name:
                self.version += 1
                self._find_cache.clear()
                return self._regions.pop(i)
        raise KeyError(name)

    def replace(self, region: MemoryRegion) -> None:
        """Swap the same-named region for ``region`` (used to retag)."""
        self.remove(region.name)
        self.add(region)

    def find(self, addr: int) -> MemoryRegion | None:
        """Region containing ``addr``, or None."""
        cache = self._find_cache
        try:
            return cache[addr]
        except KeyError:
            pass
        found = None
        for region in self._regions:
            if region.contains(addr):
                found = region
                break
        if len(cache) > 65536:  # bound the memo for address-sweep workloads
            cache.clear()
        cache[addr] = found
        return found

    def get(self, name: str) -> MemoryRegion:
        """Region called ``name``; raises ``KeyError`` if missing."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(region.name == name for region in self._regions)

    def __iter__(self) -> Iterator[MemoryRegion]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)


def standard_layout(dram_size: int = 1 << 28) -> RegionMap:
    """A conventional SoC layout: boot ROM, MMIO window, DRAM.

    ======== =========== ==========================
    name     base        purpose
    ======== =========== ==========================
    boot-rom 0x0000_0000 immutable first-stage code
    mmio     0x1000_0000 device registers
    dram     0x8000_0000 main memory
    ======== =========== ==========================
    """
    return RegionMap([
        MemoryRegion("boot-rom", 0x0000_0000, 0x1_0000,
                     perms=Permissions.rx(), cacheable=True),
        MemoryRegion("mmio", 0x1000_0000, 0x100_0000,
                     perms=Permissions.rw(), device=True, cacheable=False),
        MemoryRegion("dram", 0x8000_0000, dram_size,
                     perms=Permissions.rwx()),
    ])
