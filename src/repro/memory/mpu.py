"""Memory Protection Units for embedded devices (TrustLite / TyTAN class).

Embedded systems in the paper "use primitive access controllers" instead of
fully-fledged MMUs.  Two are modelled:

* :class:`MPU` — a classic region-register MPU: N (base, size, perms)
  slots checked against every bus transaction from the CPU.
* :class:`ExecutionAwareMPU` — TrustLite's EA-MPU: each region's
  permissions additionally depend on *where the code performing the access
  executes* (the transaction's program counter).  This is what lets a
  trustlet's data be readable only by that trustlet's own code.

Both are installed on the :class:`~repro.memory.bus.SystemBus` as access
controllers, and both support a **lock** — TrustLite locks the EA-MPU after
the Secure Loader runs so a compromised OS cannot reconfigure it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AccessFault, ConfigurationError, SecurityViolation
from repro.memory.bus import BusTransaction
from repro.memory.regions import MemoryRegion, Permissions


@dataclass(frozen=True)
class MPURegion:
    """One MPU slot.

    ``code_base``/``code_size`` (EA-MPU only) restrict which instruction
    addresses may exercise ``perms`` on the data range; other code falls
    back to ``other_perms`` (default: no access).
    """

    name: str
    base: int
    size: int
    perms: Permissions
    code_base: int | None = None
    code_size: int | None = None
    other_perms: Permissions = field(
        default_factory=lambda: Permissions(False, False, False))

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"MPU region {self.name!r}: size {self.size}")
        if (self.code_base is None) != (self.code_size is None):
            raise ConfigurationError(
                f"MPU region {self.name!r}: code_base and code_size must be "
                "set together")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def code_contains(self, pc: int | None) -> bool:
        """True when ``pc`` is inside this region's owning code range."""
        if self.code_base is None or self.code_size is None:
            return True  # not execution-aware: everyone is "owner"
        if pc is None:
            return False  # non-CPU master (e.g. DMA) is never the owner
        return self.code_base <= pc < self.code_base + self.code_size


class MPU:
    """Region-register MPU enforcing permissions on CPU transactions.

    Non-CPU masters (DMA) are *not* checked — faithfully reproducing the
    gap the paper notes for SMART/TrustLite ("DMA attacks are not part of
    the attacker model").  Architectures that do filter DMA install a
    separate controller for it.
    """

    #: Matches real embedded MPUs (e.g. ARMv7-M supports 8 or 16 regions).
    def __init__(self, max_regions: int = 16,
                 default_allow: bool = True) -> None:
        self.max_regions = max_regions
        self.default_allow = default_allow
        self._regions: list[MPURegion] = []
        self._locked = False

    # -- configuration -----------------------------------------------------

    @property
    def locked(self) -> bool:
        return self._locked

    def lock(self) -> None:
        """Make the configuration immutable (TrustLite's post-boot state)."""
        self._locked = True

    def configure(self, region: MPURegion) -> None:
        """Add a region slot; fails when locked or full."""
        if self._locked:
            raise SecurityViolation("MPU is locked; reconfiguration denied")
        if len(self._regions) >= self.max_regions:
            raise ConfigurationError(
                f"MPU supports at most {self.max_regions} regions")
        if any(existing.name == region.name for existing in self._regions):
            raise ConfigurationError(f"duplicate MPU region {region.name!r}")
        self._regions.append(region)

    def remove(self, name: str) -> None:
        """Remove a region slot by name; fails when locked."""
        if self._locked:
            raise SecurityViolation("MPU is locked; reconfiguration denied")
        before = len(self._regions)
        self._regions = [r for r in self._regions if r.name != name]
        if len(self._regions) == before:
            raise KeyError(name)

    def regions(self) -> list[MPURegion]:
        """Configured slots (copy)."""
        return list(self._regions)

    # -- enforcement -------------------------------------------------------

    def _effective_perms(self, region: MPURegion,
                         txn: BusTransaction) -> Permissions:
        return region.perms if region.code_contains(txn.pc) \
            else region.other_perms

    def check(self, txn: BusTransaction,
              mem_region: MemoryRegion | None) -> None:
        """Bus access-controller hook."""
        if txn.master.kind != "cpu":
            return  # classic MPUs do not see DMA traffic
        matched = False
        for region in self._regions:
            if not region.contains(txn.addr):
                continue
            matched = True
            if self._effective_perms(region, txn).allows(txn.access):
                return
        if matched:
            raise AccessFault(txn.addr, txn.access,
                              "denied by MPU region policy")
        if not self.default_allow:
            raise AccessFault(txn.addr, txn.access,
                              "no MPU region matches (default-deny)")


class ExecutionAwareMPU(MPU):
    """TrustLite's EA-MPU: convenience constructor for trustlet regions.

    Functionally :class:`MPU` already supports execution-aware slots; this
    subclass adds the trustlet idiom — pairing a code range with its private
    data range in one call — and defaults to deny-by-default inside
    protected ranges.
    """

    def protect_trustlet(self, name: str, code_base: int, code_size: int,
                         data_base: int, data_size: int) -> None:
        """Protect a trustlet: code is execute-only, data owner-only.

        * Anyone may *execute* the trustlet code (that is how it is
          invoked), but only the trustlet itself may read it (no
          introspection of embedded secrets).
        * The data region is readable/writable exclusively by code running
          from within the trustlet's code range.
        """
        self.configure(MPURegion(
            name=f"{name}-code", base=code_base, size=code_size,
            perms=Permissions(read=True, write=False, execute=True),
            code_base=code_base, code_size=code_size,
            other_perms=Permissions(read=False, write=False, execute=True)))
        self.configure(MPURegion(
            name=f"{name}-data", base=data_base, size=data_size,
            perms=Permissions.rw(),
            code_base=code_base, code_size=code_size))
