"""ROM write-protection and the SMART-style PC-gated key vault.

SMART's hardware change is tiny and precise: a secret key "can only be
accessed if the program counter is pointing to the ROM region".
:class:`KeyVault` is that comparator, installed on the bus as an access
controller.  :class:`ROMRegion` additionally hard-denies writes into the
ROM range from *any* master (the region permission check on the bus covers
CPU stores; this also stops DMA writes into ROM address decoding quirks).
"""

from __future__ import annotations

from repro.errors import AccessFault
from repro.memory.bus import BusTransaction
from repro.memory.phys import PhysicalMemory
from repro.memory.regions import MemoryRegion


class ROMRegion:
    """Access controller denying every write into ``[base, base+size)``."""

    def __init__(self, base: int, size: int, name: str = "rom") -> None:
        self.base = base
        self.size = size
        self.name = name

    @property
    def end(self) -> int:
        return self.base + self.size

    def check(self, txn: BusTransaction, region: MemoryRegion | None) -> None:
        """Bus hook: ROM is immutable after manufacturing."""
        if txn.access != "write":
            return
        if txn.addr < self.end and self.base < txn.end:
            raise AccessFault(txn.addr, "write", f"{self.name} is read-only")


class KeyVault:
    """A secret key readable only by code executing inside a gate range.

    The key is provisioned directly into physical memory at construction
    (the manufacturing step).  At run time the vault compares each read's
    program counter against the gate: only instruction addresses inside
    ``[gate_base, gate_base+gate_size)`` — SMART's ROM-resident attestation
    routine — may read the key bytes.  Writes are always denied.

    The gate can be widened/narrowed for ablation (ABL-2): removing the
    gate entirely is the "what if the key were plain memory" lesion.
    """

    def __init__(self, memory: PhysicalMemory, key_base: int, key: bytes,
                 gate_base: int, gate_size: int, name: str = "keyvault") -> None:
        if not key:
            raise ValueError("key must be non-empty")
        self.key_base = key_base
        self.key_size = len(key)
        self.gate_base = gate_base
        self.gate_size = gate_size
        self.name = name
        self.enabled = True
        self.denied_reads = 0
        memory.write_bytes(key_base, key)

    @property
    def key_end(self) -> int:
        return self.key_base + self.key_size

    def _pc_gated(self, pc: int | None) -> bool:
        if pc is None:
            return False
        return self.gate_base <= pc < self.gate_base + self.gate_size

    def check(self, txn: BusTransaction, region: MemoryRegion | None) -> None:
        """Bus hook: enforce the PC gate over the key bytes."""
        overlaps = txn.addr < self.key_end and self.key_base < txn.end
        if not overlaps:
            return
        if txn.access == "write":
            raise AccessFault(txn.addr, "write",
                              f"{self.name}: key region is immutable")
        if not self.enabled:
            return  # ablated vault: key readable by anyone
        if txn.master.kind != "cpu" or not self._pc_gated(txn.pc):
            self.denied_reads += 1
            raise AccessFault(
                txn.addr, "read",
                f"{self.name}: key readable only from gated code "
                f"[{self.gate_base:#x}, {self.gate_base + self.gate_size:#x})")
