"""TrustZone Address Space Controller (TZASC) and world state.

TrustZone tags every bus transaction with an NS ("non-secure") bit.  The
TZASC partitions physical memory into secure and non-secure windows and
rejects non-secure transactions into secure windows.  It also implements
the paper's observation that TrustZone provides "DMA access control by
temporarily assigning memory regions exclusively to SoC components": a
region can be *claimed* for a single named master, locking out everyone
else until it is released.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import World
from repro.errors import AccessFault, ConfigurationError, SecurityViolation
from repro.memory.bus import BusTransaction
from repro.memory.regions import MemoryRegion


@dataclass
class WorldState:
    """Tracks the current world of each core (set by the monitor)."""

    def __init__(self) -> None:
        self._worlds: dict[str, World] = {}

    def world_of(self, core_name: str) -> World:
        return self._worlds.get(core_name, World.NORMAL)

    def set_world(self, core_name: str, world: World) -> None:
        self._worlds[core_name] = world


@dataclass(frozen=True)
class SecureWindow:
    """One TZASC region descriptor."""

    name: str
    base: int
    size: int
    secure_only: bool = True

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains_range(self, start: int, end: int) -> bool:
        return start < self.end and self.base < end


class TrustZoneAddressSpaceController:
    """Bus access controller enforcing secure/non-secure partitioning."""

    def __init__(self) -> None:
        self._windows: list[SecureWindow] = []
        self._claims: dict[str, str] = {}  # window name -> master name
        self._locked = False

    # -- configuration (monitor-only in a real system) -----------------------

    def lock(self) -> None:
        """Prevent further window changes (set once secure boot completes)."""
        self._locked = True

    def add_window(self, window: SecureWindow) -> None:
        """Declare a secure window."""
        if self._locked:
            raise SecurityViolation("TZASC locked; reconfiguration denied")
        if any(w.name == window.name for w in self._windows):
            raise ConfigurationError(f"duplicate TZASC window {window.name!r}")
        self._windows.append(window)

    def windows(self) -> list[SecureWindow]:
        return list(self._windows)

    # -- exclusive claims (DMA access control) -------------------------------

    def claim(self, window_name: str, master_name: str) -> None:
        """Assign a window exclusively to one master (e.g. the GPU)."""
        if not any(w.name == window_name for w in self._windows):
            raise KeyError(window_name)
        holder = self._claims.get(window_name)
        if holder is not None and holder != master_name:
            raise SecurityViolation(
                f"window {window_name!r} already claimed by {holder!r}")
        self._claims[window_name] = master_name

    def release(self, window_name: str, master_name: str) -> None:
        """Release a previously claimed window."""
        if self._claims.get(window_name) != master_name:
            raise SecurityViolation(
                f"{master_name!r} does not hold window {window_name!r}")
        del self._claims[window_name]

    def holder(self, window_name: str) -> str | None:
        return self._claims.get(window_name)

    # -- enforcement -------------------------------------------------------

    def check(self, txn: BusTransaction,
              region: MemoryRegion | None) -> None:
        """Bus access-controller hook."""
        for window in self._windows:
            if not window.contains_range(txn.addr, txn.end):
                continue
            holder = self._claims.get(window.name)
            if holder is not None and txn.master.name != holder:
                raise AccessFault(
                    txn.addr, txn.access,
                    f"window {window.name!r} exclusively claimed by {holder!r}")
            if window.secure_only and not txn.secure:
                raise AccessFault(
                    txn.addr, txn.access,
                    f"non-secure access into secure window {window.name!r}")
