"""Hardware page-table walker and permission checks (the MMU).

Two microarchitectural details are modelled explicitly because the paper's
attacks depend on them:

* **Faults carry the translated physical address.**  When a permission or
  present-bit check fails, the raised :class:`~repro.errors.PageFault` still
  carries the physical address the walker computed (``fault.paddr``) and the
  PTE flags (``fault.flags``).  Architecturally the load never happens, but
  a Meltdown/Foreshadow-style core *transiently forwards* data from exactly
  that address before the fault retires — the speculative engine in
  :mod:`repro.cpu.speculative` reads these attributes.
* **Walk hooks.**  Sanctum's defining hardware change is "small hardware
  changes around the page table walker"; :attr:`MMU.walk_hooks` is that
  insertion point.  A hook sees every completed walk and may veto it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common import PrivilegeLevel
from repro.errors import PageFault
from repro.memory.bus import BusMaster, SystemBus
from repro.memory.paging import (
    PAGE_MASK,
    PAGE_SHIFT,
    PTE_SIZE,
    LEVEL_BITS,
    LEVEL_ENTRIES,
    PageFlags,
    pte_unpack,
    vpn_split,
)
from repro.memory.regions import MemoryRegion

#: Signature: hook(va, paddr, flags, privilege, secure) -> None or raise.
WalkHook = Callable[[int, int, PageFlags, PrivilegeLevel, bool], None]


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of a successful translation."""

    vaddr: int
    paddr: int
    flags: PageFlags
    region: MemoryRegion | None
    cacheable: bool

    @property
    def page_paddr(self) -> int:
        return self.paddr & ~PAGE_MASK


def _fault(va: int, access: str, reason: str, *, paddr: int | None = None,
           flags: PageFlags = PageFlags(0)) -> PageFault:
    fault = PageFault(va, access, reason)
    fault.paddr = paddr
    fault.flags = flags
    return fault


class MMU:
    """Per-core MMU: optional TLB, bus-based walker, permission checks.

    With ``root is None`` translation is identity (MMU disabled) — the
    configuration of MMU-less embedded devices, whose protection, if any,
    comes from an MPU on the bus instead.
    """

    def __init__(self, bus: SystemBus, core_name: str = "core0",
                 tlb=None) -> None:
        self.bus = bus
        self.tlb = tlb
        self.walker_master = BusMaster(f"{core_name}-ptw", kind="cpu",
                                       secure_capable=True)
        self.root: int | None = None
        self.asid: int = 0
        self.walk_hooks: list[WalkHook] = []
        self.walk_count = 0
        # Identity-translation memo (root is None): results are frozen and
        # depend only on the VA and the region layout, so they are shared
        # until the RegionMap's version moves.
        self._identity_cache: dict[int, TranslationResult] = {}
        self._identity_version = -1

    # -- context management -------------------------------------------------

    def set_context(self, root: int | None, asid: int = 0) -> None:
        """Switch address space (satp/TTBR write)."""
        self.root = root
        self.asid = asid

    def flush_tlb(self, asid: int | None = None) -> None:
        """Flush the TLB, optionally only entries of one ASID."""
        if self.tlb is not None:
            self.tlb.flush(asid)

    # -- translation -----------------------------------------------------------

    def _walk(self, va: int, access: str, secure: bool) -> tuple[int, PageFlags]:
        """Hardware walk; returns (leaf page paddr, flags) or faults."""
        assert self.root is not None
        self.walk_count += 1
        idx1, idx0 = vpn_split(va)
        pte1 = self.bus.read_word(
            self.walker_master, self.root + idx1 * PTE_SIZE, secure=secure)
        table, flags1 = pte_unpack(pte1)
        if not flags1 & PageFlags.PRESENT:
            raise _fault(va, access, "unmapped")
        if not flags1 & PageFlags.NONLEAF:
            raise _fault(va, access, "unmapped")
        pte0 = self.bus.read_word(
            self.walker_master, table + idx0 * PTE_SIZE, secure=secure)
        paddr, flags = pte_unpack(pte0)
        if pte0 == 0:
            raise _fault(va, access, "unmapped")
        return paddr, flags

    def _check_leaf(self, va: int, paddr: int, flags: PageFlags, access: str,
                    privilege: PrivilegeLevel) -> None:
        """Raise the architecturally correct fault for a bad leaf PTE.

        Faults carry the *word-resolved* physical address (PTE frame bits
        combined with the VA's page offset) because that is exactly the
        address the L1 tag match / fill-buffer forwarding uses on
        L1TF/Meltdown-class cores.
        """
        full = paddr | (va & PAGE_MASK)
        if not flags & PageFlags.PRESENT:
            # The terminal-fault case: translation aborted, but the stale
            # physical address remains in the PTE — Foreshadow's foothold.
            raise _fault(va, access, "not-present", paddr=full, flags=flags)
        if flags & PageFlags.RESERVED:
            raise _fault(va, access, "reserved", paddr=full, flags=flags)
        if privilege == PrivilegeLevel.USER and not flags & PageFlags.USER:
            # Meltdown's foothold: a privilege fault whose physical address
            # is fully resolved.
            raise _fault(va, access, "privilege", paddr=full, flags=flags)
        if access == "write" and not flags & PageFlags.WRITABLE:
            raise _fault(va, access, "write-protect", paddr=full, flags=flags)
        if access == "execute" and not flags & PageFlags.EXECUTE:
            raise _fault(va, access, "no-execute", paddr=full, flags=flags)

    def translate(self, va: int, access: str,
                  privilege: PrivilegeLevel = PrivilegeLevel.KERNEL,
                  secure: bool = False) -> TranslationResult:
        """Translate ``va`` for ``access``; raise :class:`PageFault` on denial."""
        if self.root is None:
            regions = self.bus.regions
            cache = self._identity_cache
            if regions.version != self._identity_version:
                cache.clear()
                self._identity_version = regions.version
            result = cache.get(va)
            if result is None:
                region = regions.find(va)
                cacheable = region.cacheable if region is not None else True
                result = TranslationResult(va, va, PageFlags(0), region,
                                           cacheable)
                if len(cache) > 65536:
                    cache.clear()
                cache[va] = result
            return result

        page_va = va & ~PAGE_MASK
        entry = self.tlb.lookup(self.asid, page_va) if self.tlb else None
        if entry is not None:
            paddr, flags = entry
        else:
            paddr, flags = self._walk(va, access, secure)
            if self.tlb is not None and flags & PageFlags.PRESENT:
                self.tlb.insert(self.asid, page_va, paddr, flags)

        self._check_leaf(va, paddr, flags, access, privilege)
        for hook in self.walk_hooks:
            hook(va, paddr, flags, privilege, secure)

        full_paddr = paddr | (va & PAGE_MASK)
        region = self.bus.regions.find(full_paddr)
        cacheable = region.cacheable if region is not None else True
        return TranslationResult(va, full_paddr, flags, region, cacheable)

    def probe(self, va: int) -> tuple[int, PageFlags] | None:
        """Walk without permission checks or hooks (debug/tests)."""
        if self.root is None:
            return va & ~PAGE_MASK, PageFlags(0)
        try:
            return self._walk(va, "read", secure=False)
        except PageFault:
            return None


def identity_mmu(bus: SystemBus, core_name: str = "core0") -> MMU:
    """An MMU left disabled (identity translation) — embedded-device default."""
    return MMU(bus, core_name=core_name, tlb=None)


# Re-export for convenience of callers that pattern-match walk parameters.
__all__ = [
    "MMU",
    "TranslationResult",
    "WalkHook",
    "identity_mmu",
    "LEVEL_BITS",
    "LEVEL_ENTRIES",
    "PAGE_SHIFT",
]
