"""Memory subsystem: physical memory, bus, paging/MMU, MPU, TZASC, DMA, MEE.

Everything a hardware-assisted security architecture hangs off lives here:

* :class:`PhysicalMemory` — byte-addressable backing store.
* :class:`SystemBus` — routes master transactions through pluggable access
  control (this is where TrustZone's TZASC, Sanctum's DMA filter and SMART's
  PC-gated key vault are enforced).
* :mod:`repro.memory.paging` / :class:`MMU` — radix page tables *stored in
  simulated physical memory* so an untrusted OS really can flip
  present/reserved bits (the Foreshadow precondition).
* :class:`MPU` / :class:`ExecutionAwareMPU` — embedded-class protection
  (TrustLite/TyTAN).
* :class:`DMAEngine` — a non-CPU bus master for DMA-attack experiments.
* :class:`MemoryEncryptionEngine` — SGX-style transparent encryption of a
  protected physical range.
"""

from repro.memory.phys import PhysicalMemory
from repro.memory.regions import MemoryRegion, RegionMap, Permissions
from repro.memory.bus import BusMaster, BusTransaction, SystemBus
from repro.memory.paging import (
    PAGE_SIZE,
    PageFlags,
    PageTable,
    pte_pack,
    pte_unpack,
)
from repro.memory.mmu import MMU, TranslationResult
from repro.memory.mpu import ExecutionAwareMPU, MPU, MPURegion
from repro.memory.tzasc import TrustZoneAddressSpaceController, WorldState
from repro.memory.dma import DMAEngine
from repro.memory.mee import MemoryEncryptionEngine
from repro.memory.rom import KeyVault, ROMRegion
from repro.memory.disturbance import DisturbanceModel, ROW_SIZE

__all__ = [
    "BusMaster",
    "BusTransaction",
    "DMAEngine",
    "DisturbanceModel",
    "ExecutionAwareMPU",
    "KeyVault",
    "MMU",
    "MPU",
    "MPURegion",
    "MemoryEncryptionEngine",
    "MemoryRegion",
    "PAGE_SIZE",
    "PageFlags",
    "PageTable",
    "Permissions",
    "PhysicalMemory",
    "ROMRegion",
    "ROW_SIZE",
    "RegionMap",
    "SystemBus",
    "TranslationResult",
    "TrustZoneAddressSpaceController",
    "WorldState",
    "pte_pack",
    "pte_unpack",
]
