"""Sparse byte-addressable physical memory."""

from __future__ import annotations

from itertools import repeat

from repro.errors import MemoryFault

#: Bytes per machine word (register width).
WORD_SIZE = 8
WORD_MASK = (1 << (WORD_SIZE * 8)) - 1


class PhysicalMemory:
    """Sparse physical memory of ``size`` bytes.

    Storage is a dict of only the bytes ever written, so multi-gigabyte
    address spaces cost nothing.  Word accesses are little-endian and need
    not be aligned (alignment penalties are modelled in the cache layer,
    not here).
    """

    def __init__(self, size: int = 1 << 32) -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self._bytes: dict[int, int] = {}

    def _check(self, addr: int, length: int, access: str) -> None:
        if addr < 0 or addr + length > self.size:
            raise MemoryFault(addr, access, "out-of-range")

    def read_byte(self, addr: int) -> int:
        """Read one byte; unwritten memory reads as zero."""
        self._check(addr, 1, "read")
        return self._bytes.get(addr, 0)

    def write_byte(self, addr: int, value: int) -> None:
        """Write one byte (value truncated to 8 bits)."""
        self._check(addr, 1, "write")
        self._bytes[addr] = value & 0xFF

    def read_word(self, addr: int) -> int:
        """Read a little-endian :data:`WORD_SIZE`-byte word."""
        self._check(addr, WORD_SIZE, "read")
        get = self._bytes.get
        value = 0
        for i in range(WORD_SIZE):
            value |= get(addr + i, 0) << (8 * i)
        return value

    def write_word(self, addr: int, value: int) -> None:
        """Write a little-endian :data:`WORD_SIZE`-byte word."""
        self._check(addr, WORD_SIZE, "write")
        value &= WORD_MASK
        for i in range(WORD_SIZE):
            self._bytes[addr + i] = (value >> (8 * i)) & 0xFF

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Read ``length`` raw bytes."""
        self._check(addr, length, "read")
        return bytes(map(self._bytes.get, range(addr, addr + length),
                         repeat(0)))

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write raw bytes starting at ``addr``."""
        self._check(addr, len(data), "write")
        for i, b in enumerate(data):
            self._bytes[addr + i] = b

    def clear_range(self, addr: int, length: int) -> None:
        """Zero a range (used by SMART's attestation-trace cleanup)."""
        self._check(addr, length, "write")
        for i in range(length):
            self._bytes.pop(addr + i, None)

    def footprint(self) -> int:
        """Number of bytes ever written (for tests/diagnostics)."""
        return len(self._bytes)
