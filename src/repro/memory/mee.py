"""Memory Encryption Engine (MEE) — the SGX-style bus transform.

SGX "encrypts all enclave code and data leaving the CPU".  The MEE models
that boundary: writes from CPU masters into the protected physical range
are stored as ciphertext, reads by CPU masters are transparently decrypted
and integrity-checked, and *every other master* (DMA, debug probes) is
denied — so a DMA attack or a cold-boot style raw dump of
:class:`~repro.memory.phys.PhysicalMemory` observes only ciphertext.

The per-line keystream uses a splitmix64-based PRF.  A real MEE uses an
AES-CTR derivative; cryptographic strength is irrelevant to the simulated
threat model — what matters is that ciphertext is key- and line-dependent
and useless without the CPU-internal key, and that tampering with stored
ciphertext is detected on the next read (drop-and-lock integrity).
"""

from __future__ import annotations

from repro.errors import AccessFault, SecurityViolation
from repro.memory.bus import BusTransaction
from repro.memory.regions import MemoryRegion

_LINE = 64
_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 mixing function."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _keystream(key: int, line_addr: int, length: int) -> bytes:
    """Deterministic per-(key, line) keystream of ``length`` bytes."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        word = _splitmix64(key ^ _splitmix64(line_addr ^ counter))
        out.extend(word.to_bytes(8, "little"))
        counter += 1
    return bytes(out[:length])


def _tag(key: int, line_addr: int, data: bytes) -> int:
    """64-bit integrity tag over one line's ciphertext."""
    acc = _splitmix64(key ^ ~line_addr & _MASK64)
    for i in range(0, len(data), 8):
        chunk = int.from_bytes(data[i:i + 8], "little")
        acc = _splitmix64(acc ^ chunk)
    return acc


class MemoryEncryptionEngine:
    """Transparent encryption + integrity for one protected physical range.

    Install on the bus **both** as a transform (``add_transform``) and as an
    access controller (``add_controller``): the transform handles the
    CPU-side encrypt/decrypt, the controller aborts non-CPU masters the way
    SGX aborts DMA into the EPC.
    """

    def __init__(self, base: int, size: int, key: int) -> None:
        self.base = base
        self.size = size
        self._key = key & _MASK64
        self._tags: dict[int, int] = {}
        self.encrypted_writes = 0
        self.decrypted_reads = 0
        self.integrity_failures = 0

    @property
    def end(self) -> int:
        return self.base + self.size

    def _protected(self, txn: BusTransaction) -> bool:
        return self.base <= txn.addr and txn.end <= self.end

    def _crosses(self, txn: BusTransaction) -> bool:
        return txn.addr < self.end and self.base < txn.end \
            and not self._protected(txn)

    def _apply_keystream(self, addr: int, data: bytes) -> bytes:
        """XOR ``data`` with the line-relative keystream at ``addr``."""
        out = bytearray()
        offset = 0
        while offset < len(data):
            line_addr = (addr + offset) & ~(_LINE - 1)
            in_line = (addr + offset) - line_addr
            take = min(_LINE - in_line, len(data) - offset)
            stream = _keystream(self._key, line_addr, _LINE)
            chunk = data[offset:offset + take]
            out.extend(b ^ s for b, s in
                       zip(chunk, stream[in_line:in_line + take]))
            offset += take
        return bytes(out)

    # -- access controller hook ------------------------------------------------

    def check(self, txn: BusTransaction, region: MemoryRegion | None) -> None:
        """Abort any non-CPU master touching the protected range."""
        if txn.master.kind == "cpu":
            return
        if self._protected(txn) or self._crosses(txn):
            raise AccessFault(txn.addr, txn.access,
                              "MEE: non-CPU access to protected memory aborted")

    # -- transform hooks ---------------------------------------------------------

    def _check_alignment(self, txn: BusTransaction) -> None:
        if txn.addr % 8 or txn.size % 8:
            raise SecurityViolation(
                "MEE requires word-aligned access to protected memory")

    def on_write(self, txn: BusTransaction, data: bytes) -> bytes:
        """Encrypt CPU writes into the protected range; tag each word.

        Tags are word-granular: the bus interface is word-based, so every
        protected write covers whole words and partial-coverage hazards
        (a line tag computed from a fragment) cannot arise.
        """
        if not self._protected(txn):
            return data
        self._check_alignment(txn)
        ciphertext = self._apply_keystream(txn.addr, data)
        for offset in range(0, len(ciphertext), 8):
            word_addr = txn.addr + offset
            span = ciphertext[offset:offset + 8]
            self._tags[word_addr] = _tag(self._key, word_addr, span)
        self.encrypted_writes += 1
        return ciphertext

    def on_read(self, txn: BusTransaction, data: bytes) -> bytes:
        """Decrypt CPU reads from the protected range; verify word tags."""
        if not self._protected(txn):
            return data
        self._check_alignment(txn)
        for offset in range(0, len(data), 8):
            word_addr = txn.addr + offset
            expected = self._tags.get(word_addr)
            if expected is None:
                continue  # never written through the MEE; nothing to verify
            span = data[offset:offset + 8]
            if _tag(self._key, word_addr, span) != expected:
                self.integrity_failures += 1
                raise SecurityViolation(
                    f"MEE integrity failure on word {word_addr:#x}")
        self.decrypted_reads += 1
        return self._apply_keystream(txn.addr, data)
