"""DRAM disturbance (Rowhammer-class) physics model (paper ref [18]).

The paper's outlook cites SPOILER, whose punchline is that speculative
leaks "boost Rowhammer": once an attacker knows physical adjacency,
repeated activations of one DRAM row flip bits in its neighbours.  This
module models that physics so the *consequences per architecture* can be
measured:

* against **Sanctum** (no memory encryption/integrity) a flip in enclave
  memory is silent corruption;
* against **SGX** the MEE's integrity tag turns the same flip into a
  detected violation on the next read — corruption becomes (at worst)
  denial of service.

Install a :class:`DisturbanceModel` on the bus as a snooper; it counts
row activations and, past the threshold, flips a pseudo-random bit in an
adjacent row.  The model is deterministic under its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import XorShiftRNG
from repro.memory.bus import BusTransaction
from repro.memory.phys import PhysicalMemory

#: DRAM row size (8 KiB: typical x8 DDR3/DDR4 row).
ROW_SIZE = 8192


@dataclass
class FlipEvent:
    """One induced bit flip (for diagnostics and grading)."""

    victim_row: int
    addr: int
    bit: int
    aggressor_row: int


class DisturbanceModel:
    """Counts activations per row; flips bits in neighbours past threshold.

    ``threshold`` is the activation count per refresh window after which
    each further batch of ``threshold`` activations induces one flip in a
    randomly chosen neighbour row.  Real thresholds are ~50-140K; the
    default is scaled down so simulated hammer loops stay fast — the
    *shape* (hammer long enough and a neighbour bit flips) is what the
    experiments consume.
    """

    def __init__(self, memory: PhysicalMemory, dram_base: int,
                 dram_size: int, threshold: int = 2000,
                 rng: XorShiftRNG | None = None) -> None:
        self.memory = memory
        self.dram_base = dram_base
        self.dram_size = dram_size
        self.threshold = threshold
        self.rng = rng or XorShiftRNG(0x20BB)
        self.activations: dict[int, int] = {}
        self.flips: list[FlipEvent] = []

    def row_of(self, addr: int) -> int:
        return (addr - self.dram_base) // ROW_SIZE

    def row_base(self, row: int) -> int:
        return self.dram_base + row * ROW_SIZE

    # -- bus snooper ----------------------------------------------------------

    def on_transaction(self, txn: BusTransaction) -> None:
        """Count one activation per read transaction into DRAM."""
        if txn.access != "read":
            return
        if not self.dram_base <= txn.addr < self.dram_base + self.dram_size:
            return
        row = self.row_of(txn.addr)
        count = self.activations.get(row, 0) + 1
        self.activations[row] = count
        if count % self.threshold == 0:
            self._disturb(row)

    def _disturb(self, aggressor_row: int) -> None:
        """Flip one bit in a neighbour of the hammered row."""
        last_row = (self.dram_size // ROW_SIZE) - 1
        neighbours = [r for r in (aggressor_row - 1, aggressor_row + 1)
                      if 0 <= r <= last_row]
        if not neighbours:
            return
        victim_row = neighbours[self.rng.next_below(len(neighbours))]
        offset = self.rng.next_below(ROW_SIZE)
        bit = self.rng.next_below(8)
        addr = self.row_base(victim_row) + offset
        value = self.memory.read_byte(addr)
        self.memory.write_byte(addr, value ^ (1 << bit))
        self.flips.append(FlipEvent(victim_row, addr, bit, aggressor_row))

    def refresh(self) -> None:
        """DRAM refresh: activation counters reset (defender's clock)."""
        self.activations.clear()
