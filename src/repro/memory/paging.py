"""Radix page tables stored in simulated physical memory.

Page tables live *in* :class:`~repro.memory.phys.PhysicalMemory`, not in a
Python-side dict, because the paper's sharpest attack — Foreshadow — exists
precisely because "the OS is in control of all page tables".  An untrusted
OS in this simulation manipulates translations the same way a real one
does: by writing page-table entry words into physical memory
(:meth:`PageTable.update_flags`, or raw writes to :meth:`PageTable.pte_addr`).

Format: 32-bit virtual addresses, 4 KiB pages, two radix levels of 10 bits
each.  A PTE is one 64-bit word::

    bits 63..12   physical page number << 12
    bit  8        GLOBAL   (survives ASID-scoped TLB flushes)
    bit  7        NONLEAF  (points at a second-level table)
    bit  6        RESERVED (must be zero; set -> terminal fault)
    bit  5        DIRTY
    bit  4        ACCESSED
    bit  3        EXECUTE
    bit  2        USER
    bit  1        WRITABLE
    bit  0        PRESENT
"""

from __future__ import annotations

import enum
from typing import Iterator

from repro.errors import ConfigurationError, MemoryFault
from repro.memory.phys import PhysicalMemory

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1
LEVEL_BITS = 10
LEVEL_ENTRIES = 1 << LEVEL_BITS
PTE_SIZE = 8
VA_BITS = PAGE_SHIFT + 2 * LEVEL_BITS  # 32
#: One table = 1024 PTEs x 8 bytes = two page frames.
TABLE_SIZE = LEVEL_ENTRIES * PTE_SIZE
TABLE_FRAMES = TABLE_SIZE // PAGE_SIZE


class PageFlags(enum.IntFlag):
    """PTE permission/status bits (see module docstring for layout)."""

    PRESENT = 1 << 0
    WRITABLE = 1 << 1
    USER = 1 << 2
    EXECUTE = 1 << 3
    ACCESSED = 1 << 4
    DIRTY = 1 << 5
    RESERVED = 1 << 6
    NONLEAF = 1 << 7
    GLOBAL = 1 << 8


_FLAGS_MASK = 0xFFF
_PPN_MASK = ~_FLAGS_MASK & ((1 << 64) - 1)


def pte_pack(paddr: int, flags: PageFlags) -> int:
    """Encode a PTE word from a (page-aligned) physical address and flags."""
    if paddr & PAGE_MASK:
        raise ValueError(f"physical address {paddr:#x} not page-aligned")
    return (paddr & _PPN_MASK) | int(flags)


def pte_unpack(pte: int) -> tuple[int, PageFlags]:
    """Decode a PTE word into (physical page address, flags)."""
    return pte & _PPN_MASK, PageFlags(pte & _FLAGS_MASK)


def vpn_split(va: int) -> tuple[int, int]:
    """Split a virtual address into (level-1 index, level-0 index)."""
    return (va >> (PAGE_SHIFT + LEVEL_BITS)) & (LEVEL_ENTRIES - 1), \
           (va >> PAGE_SHIFT) & (LEVEL_ENTRIES - 1)


class FrameAllocator:
    """Bump allocator handing out page frames from a physical range."""

    def __init__(self, base: int, frames: int) -> None:
        if base & PAGE_MASK:
            raise ConfigurationError(f"allocator base {base:#x} not aligned")
        self.base = base
        self.limit = base + frames * PAGE_SIZE
        self._next = base

    def alloc(self) -> int:
        """Return the base address of a fresh page frame."""
        if self._next >= self.limit:
            raise MemoryFault(self._next, "write", "out of page frames")
        frame = self._next
        self._next += PAGE_SIZE
        return frame

    @property
    def allocated(self) -> int:
        """Number of frames handed out so far."""
        return (self._next - self.base) // PAGE_SIZE


class PageTable:
    """One address space: a two-level radix tree rooted at ``root``.

    This class is the *software* (OS/monitor) view: it reads and writes PTE
    words directly in physical memory.  The *hardware* view — the page-table
    walker — lives in :class:`repro.memory.mmu.MMU` and goes through the bus.
    """

    def __init__(self, memory: PhysicalMemory, allocator: FrameAllocator,
                 asid: int = 0) -> None:
        self.memory = memory
        self.allocator = allocator
        self.asid = asid
        self.root = self._alloc_table()

    def _alloc_table(self) -> int:
        """Allocate one zeroed table (``TABLE_FRAMES`` consecutive frames)."""
        base = self.allocator.alloc()
        for i in range(1, TABLE_FRAMES):
            follow = self.allocator.alloc()
            if follow != base + i * PAGE_SIZE:
                raise ConfigurationError(
                    "frame allocator did not yield consecutive frames "
                    "for a page table")
        self.memory.clear_range(base, TABLE_SIZE)
        return base

    # -- internal ------------------------------------------------------------

    def _l1_pte_addr(self, va: int) -> int:
        idx1, _ = vpn_split(va)
        return self.root + idx1 * PTE_SIZE

    def _leaf_table(self, va: int, create: bool) -> int | None:
        pte = self.memory.read_word(self._l1_pte_addr(va))
        paddr, flags = pte_unpack(pte)
        if flags & PageFlags.PRESENT and flags & PageFlags.NONLEAF:
            return paddr
        if not create:
            return None
        table = self._alloc_table()
        self.memory.write_word(
            self._l1_pte_addr(va),
            pte_pack(table, PageFlags.PRESENT | PageFlags.NONLEAF))
        return table

    # -- OS-facing API ---------------------------------------------------------

    def pte_addr(self, va: int, create: bool = False) -> int:
        """Physical address of the *leaf* PTE covering ``va``.

        With ``create=True`` intermediate tables are allocated.  Exposing
        this address is deliberate: a malicious OS writes here directly to
        stage Foreshadow (clear PRESENT) or remap pages under an enclave.
        """
        table = self._leaf_table(va, create)
        if table is None:
            raise MemoryFault(va, "read", "unmapped")
        _, idx0 = vpn_split(va)
        return table + idx0 * PTE_SIZE

    def map(self, va: int, pa: int, flags: PageFlags) -> None:
        """Install a leaf translation ``va -> pa`` with ``flags``."""
        if va & PAGE_MASK or pa & PAGE_MASK:
            raise ValueError(f"map({va:#x}, {pa:#x}): addresses must be aligned")
        if va >> VA_BITS:
            raise ValueError(f"virtual address {va:#x} exceeds {VA_BITS} bits")
        addr = self.pte_addr(va, create=True)
        self.memory.write_word(addr, pte_pack(pa, flags))

    def map_range(self, va: int, pa: int, size: int, flags: PageFlags) -> None:
        """Map a contiguous range of whole pages."""
        if size <= 0:
            raise ValueError("size must be positive")
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        for i in range(pages):
            self.map(va + i * PAGE_SIZE, pa + i * PAGE_SIZE, flags)

    def unmap(self, va: int) -> None:
        """Clear the leaf PTE for ``va`` (no-op if the range was never mapped)."""
        table = self._leaf_table(va, create=False)
        if table is None:
            return
        _, idx0 = vpn_split(va)
        self.memory.write_word(table + idx0 * PTE_SIZE, 0)

    def lookup(self, va: int) -> tuple[int, PageFlags] | None:
        """Raw software walk: (physical page address, flags) or None.

        Performs **no** permission checking — this is the OS reading its own
        tables, not a hardware translation.
        """
        table = self._leaf_table(va, create=False)
        if table is None:
            return None
        _, idx0 = vpn_split(va)
        pte = self.memory.read_word(table + idx0 * PTE_SIZE)
        if pte == 0:
            return None  # empty slot: never mapped, or unmapped
        paddr, flags = pte_unpack(pte)
        if flags & PageFlags.NONLEAF:
            return None
        return paddr, flags

    def update_flags(self, va: int, *, set_flags: PageFlags = PageFlags(0),
                     clear_flags: PageFlags = PageFlags(0)) -> PageFlags:
        """Set/clear flag bits on the leaf PTE for ``va``; returns new flags.

        ``update_flags(va, clear_flags=PageFlags.PRESENT)`` is the exact
        OS-level primitive Foreshadow/L1TF abuses.
        """
        addr = self.pte_addr(va)
        paddr, flags = pte_unpack(self.memory.read_word(addr))
        flags = PageFlags((flags | set_flags) & ~clear_flags)
        self.memory.write_word(addr, pte_pack(paddr, flags))
        return flags

    def remap(self, va: int, new_pa: int) -> None:
        """Point the existing leaf PTE for ``va`` at ``new_pa``, keeping flags."""
        if new_pa & PAGE_MASK:
            raise ValueError(f"physical address {new_pa:#x} not aligned")
        addr = self.pte_addr(va)
        _, flags = pte_unpack(self.memory.read_word(addr))
        self.memory.write_word(addr, pte_pack(new_pa, flags))

    def mappings(self) -> Iterator[tuple[int, int, PageFlags]]:
        """Yield every installed leaf mapping as (va, pa, flags)."""
        for idx1 in range(LEVEL_ENTRIES):
            pte1 = self.memory.read_word(self.root + idx1 * PTE_SIZE)
            table, flags1 = pte_unpack(pte1)
            if not (flags1 & PageFlags.PRESENT and flags1 & PageFlags.NONLEAF):
                continue
            for idx0 in range(LEVEL_ENTRIES):
                pte0 = self.memory.read_word(table + idx0 * PTE_SIZE)
                if pte0 == 0:
                    continue
                paddr, flags0 = pte_unpack(pte0)
                if flags0 & PageFlags.NONLEAF:
                    continue
                va = (idx1 << (PAGE_SHIFT + LEVEL_BITS)) | (idx0 << PAGE_SHIFT)
                yield va, paddr, flags0
