"""System bus: routes master transactions through access control to memory.

The bus is the chokepoint where hardware-assisted security is enforced in
real SoCs, and it is modelled the same way here:

* *access controllers* (TZASC, Sanctum's DMA filter, SMART's key vault
  gate, TrustLite's EA-MPU) veto transactions before they reach memory;
* *transforms* (SGX's memory encryption engine) rewrite data on its way
  in/out of protected physical ranges;
* *snoopers* observe every transaction — this is how a physical bus-probing
  adversary (and the test suite) sees what actually crossed the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.errors import AccessFault, ConfigurationError, MemoryFault
from repro.memory.phys import PhysicalMemory, WORD_SIZE
from repro.memory.regions import MemoryRegion, RegionMap


@dataclass(frozen=True)
class BusMaster:
    """A component that can initiate bus transactions.

    ``kind`` distinguishes CPUs from DMA-capable peripherals: several
    access-control units (e.g. Sanctum's DMA filter) discriminate on it.
    """

    name: str
    kind: str = "cpu"  # "cpu" | "dma" | "debug"
    secure_capable: bool = False


@dataclass(frozen=True)
class BusTransaction:
    """One read or write request travelling over the bus."""

    master: BusMaster
    addr: int
    access: str  # "read" | "write"
    size: int = WORD_SIZE
    secure: bool = False  # TrustZone NS-bit analogue (True = secure world)
    pc: int | None = None  # program counter of the issuing core, if any
    context: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def end(self) -> int:
        return self.addr + self.size


class AccessController(Protocol):
    """Vetoes transactions; raise :class:`AccessFault` to deny."""

    def check(self, txn: BusTransaction, region: MemoryRegion | None) -> None:
        """Raise :class:`AccessFault` if ``txn`` must not proceed."""


class BusTransform(Protocol):
    """Rewrites data crossing the bus (e.g. memory encryption)."""

    def on_write(self, txn: BusTransaction, data: bytes) -> bytes:
        """Return the bytes actually stored for ``txn``."""

    def on_read(self, txn: BusTransaction, data: bytes) -> bytes:
        """Return the bytes actually delivered to the master for ``txn``."""


Snooper = Callable[[BusTransaction], None]


class SystemBus:
    """The SoC interconnect.

    All CPU cache refills, DMA transfers, and page-table walks go through
    :meth:`read` / :meth:`write`, making this the single place where an
    architecture's bus-level protections act on *every* path — which is
    exactly why DMA attacks work against architectures that forgot to put
    a check here (SMART, TrustLite) and fail against those that did not
    (Sanctum, TrustZone with TZASC).
    """

    def __init__(self, memory: PhysicalMemory, regions: RegionMap) -> None:
        self.memory = memory
        self.regions = regions
        self._controllers: list[tuple[str, AccessController]] = []
        self._transforms: list[tuple[str, BusTransform]] = []
        self._snoopers: list[Snooper] = []
        self._devices: dict[str, object] = {}
        self.transaction_count = 0
        self.denied_count = 0

    # -- configuration -----------------------------------------------------

    def add_controller(self, name: str, controller: AccessController) -> None:
        """Install an access-control unit; checks run in insertion order."""
        if any(existing == name for existing, _ in self._controllers):
            raise ConfigurationError(f"duplicate controller {name!r}")
        self._controllers.append((name, controller))

    def remove_controller(self, name: str) -> None:
        """Uninstall a named access-control unit."""
        before = len(self._controllers)
        self._controllers = [(n, c) for n, c in self._controllers if n != name]
        if len(self._controllers) == before:
            raise KeyError(name)

    def controller_names(self) -> list[str]:
        """Installed controller names, in check order."""
        return [name for name, _ in self._controllers]

    def add_transform(self, name: str, transform: BusTransform) -> None:
        """Install a data transform (applied innermost-last on writes)."""
        if any(existing == name for existing, _ in self._transforms):
            raise ConfigurationError(f"duplicate transform {name!r}")
        self._transforms.append((name, transform))

    def add_snooper(self, snooper: Snooper) -> None:
        """Attach a transaction observer (bus-probing adversary, stats)."""
        self._snoopers.append(snooper)

    def attach_device(self, region_name: str, device: object) -> None:
        """Map a device model over an existing MMIO region."""
        region = self.regions.get(region_name)
        if not region.device:
            raise ConfigurationError(
                f"region {region_name!r} is not a device region")
        self._devices[region_name] = device

    # -- transaction path ---------------------------------------------------

    def _route(self, txn: BusTransaction) -> MemoryRegion | None:
        self.transaction_count += 1
        for snooper in self._snoopers:
            snooper(txn)
        region = self.regions.find(txn.addr)
        try:
            for _, controller in self._controllers:
                controller.check(txn, region)
        except AccessFault:
            self.denied_count += 1
            raise
        return region

    def read(self, txn: BusTransaction) -> bytes:
        """Perform a read transaction; returns ``txn.size`` bytes."""
        if txn.access != "read":
            raise ValueError("read() requires a read transaction")
        region = self._route(txn)
        if region is None:
            raise MemoryFault(txn.addr, "read",
                              "bus decode error: no region at address")
        if region.device:
            device = self._devices.get(region.name)
            if device is None:
                raise MemoryFault(txn.addr, "read", "no device mapped")
            data = device.mmio_read(txn.addr - region.base, txn.size)
        else:
            data = self.memory.read_bytes(txn.addr, txn.size)
        for _, transform in reversed(self._transforms):
            data = transform.on_read(txn, data)
        return data

    def write(self, txn: BusTransaction, data: bytes) -> None:
        """Perform a write transaction with payload ``data``."""
        if txn.access != "write":
            raise ValueError("write() requires a write transaction")
        if len(data) != txn.size:
            raise ValueError(f"payload is {len(data)} bytes, txn.size={txn.size}")
        region = self._route(txn)
        if region is None:
            raise MemoryFault(txn.addr, "write",
                              "bus decode error: no region at address")
        if not region.perms.write:
            raise AccessFault(txn.addr, "write",
                              f"region {region.name!r} is read-only")
        for _, transform in self._transforms:
            data = transform.on_write(txn, data)
        if region.device:
            device = self._devices.get(region.name)
            if device is None:
                raise MemoryFault(txn.addr, "write", "no device mapped")
            device.mmio_write(txn.addr - region.base, data)
        else:
            self.memory.write_bytes(txn.addr, data)

    # -- convenience word interface ------------------------------------------

    def read_word(self, master: BusMaster, addr: int, *, secure: bool = False,
                  pc: int | None = None) -> int:
        """Read one little-endian word as ``master``."""
        if not self._controllers and not self._snoopers \
                and not self._transforms:
            # Nothing on the bus can observe or veto this transaction, so
            # skip building one (same accounting and routing outcome).
            region = self.regions.find(addr)
            if region is not None and not region.device:
                self.transaction_count += 1
                return int.from_bytes(
                    self.memory.read_bytes(addr, WORD_SIZE), "little")
        txn = BusTransaction(master, addr, "read", WORD_SIZE,
                             secure=secure, pc=pc)
        return int.from_bytes(self.read(txn), "little")

    def write_word(self, master: BusMaster, addr: int, value: int, *,
                   secure: bool = False, pc: int | None = None) -> None:
        """Write one little-endian word as ``master``."""
        txn = BusTransaction(master, addr, "write", WORD_SIZE,
                             secure=secure, pc=pc)
        self.write(txn, (value & ((1 << 64) - 1)).to_bytes(WORD_SIZE, "little"))
