"""DMA engine: a non-CPU bus master.

DMA is the classic blind spot of CPU-centric protection — the paper notes
SMART and TrustLite "do not consider DMA attacks" while SGX (memory
encryption), Sanctum (memory-controller filter) and TrustZone (TZASC)
each close the hole differently.  :class:`DMAEngine` issues transactions
with ``master.kind == "dma"``; whatever access control the architecture
installed on the bus decides what the device can reach.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AccessFault, MemoryFault
from repro.memory.bus import BusMaster, BusTransaction, SystemBus


@dataclass
class TransferRecord:
    """Outcome of one :meth:`DMAEngine.transfer` call (for diagnostics)."""

    src: int
    dst: int
    size: int
    ok: bool
    reason: str = ""


class DMAEngine:
    """A peripheral capable of reading/writing physical memory directly.

    A *malicious* peripheral (Thunderclap-style) is just this engine driven
    by attacker code; there is deliberately no "evil bit" — the bus-level
    access control either stops it or does not.
    """

    def __init__(self, bus: SystemBus, name: str = "dma0",
                 secure: bool = False) -> None:
        self.bus = bus
        self.master = BusMaster(name, kind="dma", secure_capable=secure)
        self.secure = secure
        self.history: list[TransferRecord] = []

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes of physical memory as this device."""
        txn = BusTransaction(self.master, addr, "read", size,
                             secure=self.secure)
        return self.bus.read(txn)

    def write(self, addr: int, data: bytes) -> None:
        """Write bytes into physical memory as this device."""
        txn = BusTransaction(self.master, addr, "write", len(data),
                             secure=self.secure)
        self.bus.write(txn, data)

    def transfer(self, src: int, dst: int, size: int,
                 chunk: int = 64) -> TransferRecord:
        """Copy ``size`` bytes ``src -> dst`` in ``chunk``-byte bursts.

        Returns a :class:`TransferRecord`; a denied burst aborts the
        transfer and records the denial instead of raising, mirroring how a
        real DMA controller reports a slave error in a status register.
        """
        moved = 0
        try:
            while moved < size:
                burst = min(chunk, size - moved)
                data = self.read(src + moved, burst)
                self.write(dst + moved, data)
                moved += burst
        except MemoryFault as fault:
            # Access denials *and* bus decode errors surface the same way
            # on real controllers: a slave-error bit in a status register.
            record = TransferRecord(src, dst, size, ok=False,
                                    reason=fault.reason)
            self.history.append(record)
            return record
        record = TransferRecord(src, dst, size, ok=True)
        self.history.append(record)
        return record


@dataclass
class DMAFilter:
    """Sanctum-style memory-controller filter for DMA traffic.

    Sanctum "provides a basic DMA attack protection by modifying the memory
    controller": DMA may only touch a whitelisted physical range, so enclave
    memory is unreachable by construction.
    """

    allowed_base: int
    allowed_size: int
    name: str = "dma-filter"

    def check(self, txn: BusTransaction, region) -> None:
        """Bus access-controller hook: confine DMA to the allowed window."""
        if txn.master.kind != "dma":
            return
        if self.allowed_base <= txn.addr and \
                txn.end <= self.allowed_base + self.allowed_size:
            return
        raise AccessFault(txn.addr, txn.access,
                          "DMA outside memory-controller whitelist")
