"""Differential harness: ensemble engine vs the scalar ``Core`` oracle.

Sibling of :mod:`repro.cpu.diff` one level up the stack: where that
module proves the fast scalar dispatch against the reference
interpreter, this one proves the struct-of-arrays ensemble engine
(:mod:`repro.cpu.ensemble`) against the scalar ``Core`` kept verbatim as
its oracle.  Each ensemble instance is paired with an *identically
prepared* scalar SoC; the harness runs both sides and reuses
:func:`repro.cpu.diff.compare_socs`, so the comparison bar is exactly
the one the fast-vs-reference suite sets: registers, PC, CSRs, traps,
cycles, instret, energy, per-level cache counters and resident lines,
bus counters, and the sparse physical-memory image, bit for bit.

Two modes mirror ``tests/test_differential.py``:

* :func:`run_ensemble_vs_scalar` — one batched ensemble run against one
  scalar ``core.run()`` per pair, comparing end states and trap frames;
* :func:`lockstep_ensemble` — repeated ``run(max_steps=1)`` + ``sync``
  against scalar single-stepping, comparing every pair after every
  retired instruction, so the first diverging step is named.

A trap is a compared observable, not a failure: the ensemble records
peeled instances' traps in its report, the scalar side raises, and the
harness requires the same trap frame on both sides at the same step.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.diff import Divergence, _trap_key, compare_socs
from repro.cpu.ensemble import CoreEnsemble, EnsembleReport
from repro.cpu.exceptions import Trap, TrapInfo
from repro.cpu.soc import SoC

#: One differential unit: (ensemble-side SoC, scalar-side SoC), prepared
#: identically (same program, same memory image, same knobs).
Pair = tuple[SoC, SoC]


def _scalar_step(soc: SoC, budget: int) -> TrapInfo | None:
    """Advance the scalar side by ``budget`` retired instructions."""
    try:
        soc.cores[0].run(max_steps=budget)
    except Trap as trap:
        return trap.info
    return None


def _compare_traps(i: int, step: int, ensemble_trap: TrapInfo | None,
                   scalar_trap: TrapInfo | None) -> None:
    if _trap_key(ensemble_trap) != _trap_key(scalar_trap):
        raise Divergence(
            f"step {step}: instance {i} trap outcome diverged\n"
            f"  ensemble: {_trap_key(ensemble_trap)!r}\n"
            f"  scalar:   {_trap_key(scalar_trap)!r}")


def run_ensemble_vs_scalar(pairs: list[Pair], max_steps: int = 4096,
                           window: tuple[int, int] | None = None
                           ) -> EnsembleReport:
    """Batched differential: one ensemble run vs one scalar run per pair.

    Returns the ensemble report so callers can additionally assert *how*
    instances executed (peeled or vectorized) — equality of observables
    must hold either way.
    """
    report = CoreEnsemble(
        [pair[0].cores[0] for pair in pairs], window=window
    ).run(max_steps=max_steps)
    for i, (ensemble_soc, scalar_soc) in enumerate(pairs):
        scalar_trap = _scalar_step(scalar_soc, max_steps)
        _compare_traps(i, -1, report.traps[i], scalar_trap)
        compare_socs(ensemble_soc, scalar_soc, step=i)
    return report


def lockstep_ensemble(pairs: list[Pair], max_steps: int = 4096,
                      window: tuple[int, int] | None = None) -> int:
    """Step-by-step differential; returns the number of steps compared.

    After every ``run(max_steps=1)`` the ensemble's :meth:`sync` makes
    its scalar objects authoritative, so whole-SoC comparison is exact
    at every instruction boundary.  Terminates once every pair is halted
    or pinned on a (matching) trap — a trapped core re-raises the same
    frame each step on both sides, which the comparison confirms once
    and need not iterate further.
    """
    ensemble = CoreEnsemble([pair[0].cores[0] for pair in pairs],
                            window=window)
    for step in range(max_steps):
        ensemble.run(max_steps=1)
        trapped = np.zeros(len(pairs), dtype=bool)
        for i, (ensemble_soc, scalar_soc) in enumerate(pairs):
            scalar_core = scalar_soc.cores[0]
            scalar_trap = None
            if not scalar_core.halted:
                scalar_trap = _scalar_step(scalar_soc, 1)
            _compare_traps(i, step, ensemble.traps[i], scalar_trap)
            compare_socs(ensemble_soc, scalar_soc, step=step)
            trapped[i] = scalar_trap is not None
        if all(pair[1].cores[0].halted or trapped[i]
               for i, pair in enumerate(pairs)):
            return step + 1
    return max_steps
