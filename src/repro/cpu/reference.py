"""Reference interpreter: the differential oracle for the fast engine.

This module preserves the original step-at-a-time ``if``/``elif``
interpreter exactly as it was before the predecoded-dispatch engine
replaced it in :class:`repro.cpu.core.Core`.  It exists for one purpose:
the differential harness (:mod:`repro.cpu.diff`,
``tests/test_differential.py``) runs it in lockstep against the fast
engine over randomly generated programs and asserts that *every*
architecturally or microarchitecturally visible quantity — registers,
memory, traps, ``cycles``, ``energy_pj``, cache fill/eviction counts —
is bit-identical.  Because the leakage *is* the product in this
reproduction, an optimisation that changed any observable would silently
change attack results; the oracle is what makes the fast path an
observation-equivalent optimisation rather than a hopeful one.

Keep this interpreter boring.  It should never be optimised; it should
only change when the ISA itself changes semantics.
"""

from __future__ import annotations

from repro.cpu.core import Core
from repro.cpu.exceptions import TrapCause, TrapInfo
from repro.cpu.speculative import SpeculativeCore
from repro.errors import PageFault
from repro.isa.instructions import (
    INSTR_SIZE,
    Instruction,
    InstrKind,
    WORD_MASK,
)


class ReferenceExecutionMixin:
    """Serial fetch/decode/execute loop, one ``if``/``elif`` arm per kind.

    Mixed in *before* a core class so its ``run``/``_execute`` shadow the
    fast engine's.  Everything else — memory path, traps, CSRs, branch
    hooks — is inherited, so the two engines differ only in dispatch and
    batching, which is exactly the surface the differential tests probe.
    """

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until halt or ``max_steps``; returns elapsed cycles."""
        start = self.cycles
        for _ in range(max_steps):
            if not self.step():
                break
        return self.cycles - start

    def _execute(self, instr: Instruction) -> None:
        k = instr.kind
        next_pc = self.pc + INSTR_SIZE

        if k is InstrKind.NOP:
            self.pc = next_pc
        elif k is InstrKind.HALT:
            self.halted = True
        elif k is InstrKind.LI:
            self.set_reg(instr.rd, instr.imm)
            self.pc = next_pc
        elif k is InstrKind.ADDI:
            self.set_reg(instr.rd, self.get_reg(instr.rs1) + instr.imm)
            self.pc = next_pc
        elif k in (InstrKind.ADD, InstrKind.SUB, InstrKind.AND, InstrKind.OR,
                   InstrKind.XOR, InstrKind.SHL, InstrKind.SHR, InstrKind.MUL):
            self.set_reg(instr.rd, self._alu(k, self.get_reg(instr.rs1),
                                             self.get_reg(instr.rs2)))
            self.pc = next_pc
        elif k is InstrKind.LOAD:
            addr = (self.get_reg(instr.rs1) + instr.imm) & WORD_MASK
            self.set_reg(instr.rd, self.read_mem(addr))
            self.pc = next_pc
        elif k is InstrKind.STORE:
            addr = (self.get_reg(instr.rs1) + instr.imm) & WORD_MASK
            self.write_mem(addr, self.get_reg(instr.rs2))
            self.pc = next_pc
        elif k is InstrKind.FLUSH:
            addr = (self.get_reg(instr.rs1) + instr.imm) & WORD_MASK
            self.flush_line(addr)
            self.pc = next_pc
        elif k is InstrKind.FENCE:
            self.pc = next_pc  # meaningful only to the speculative core
        elif instr.is_branch:
            taken = self._branch_taken(instr)
            if self.cflow_collector is not None:
                self.cflow_collector.append(("br", self.pc, int(taken)))
            self._execute_branch(instr, taken)
        elif k is InstrKind.JMP:
            target = self._resolve_target(instr)
            if self.cflow_collector is not None:
                self.cflow_collector.append(("jmp", self.pc, target))
            self.pc = target
        elif k is InstrKind.JAL:
            target = self._resolve_target(instr)
            if self.cflow_collector is not None:
                self.cflow_collector.append(("call", self.pc, target))
            self.set_reg(15, next_pc)
            self._note_call(next_pc)
            self.pc = target
        elif k is InstrKind.RET:
            target = self.get_reg(15)
            if self.cflow_collector is not None:
                self.cflow_collector.append(("ret", self.pc, target))
            self._execute_ret(target)
        elif k is InstrKind.ECALL:
            if self.syscall_handler is not None:
                self.pc = next_pc
                self.syscall_handler(self, instr.imm)
            else:
                self._trap(TrapInfo(TrapCause.ECALL, self.pc, value=instr.imm))
        elif k is InstrKind.CSRR:
            self._csr_read(instr)
            self.pc = next_pc
        elif k is InstrKind.CSRW:
            self._csr_write(instr)
            self.pc = next_pc
        elif k is InstrKind.RDCYCLE:
            self.set_reg(instr.rd, self.cycles)
            self.pc = next_pc
        else:  # pragma: no cover - vocabulary is closed
            self._trap(TrapInfo(TrapCause.ILLEGAL_INSTRUCTION, self.pc))


class ReferenceCore(ReferenceExecutionMixin, Core):
    """In-order core driven by the reference interpreter."""


class ReferenceSpeculativeCore(ReferenceExecutionMixin, SpeculativeCore):
    """Speculative core driven by the reference interpreter.

    Reproduces the pre-dispatch-engine structure: a LOAD special case (the
    Meltdown/Foreshadow forwarding window) wrapped around the plain chain.
    The transient machinery itself is inherited unchanged.
    """

    def _execute(self, instr: Instruction) -> None:
        if instr.kind is not InstrKind.LOAD:
            ReferenceExecutionMixin._execute(self, instr)
            return
        addr = (self.get_reg(instr.rs1) + instr.imm) & WORD_MASK
        next_pc = self.pc + INSTR_SIZE
        try:
            value = self.read_mem(addr)
        except PageFault as fault:
            forwarded = self._forwarded_value(fault)
            if forwarded is not None:
                self._run_transient(next_pc, preload={instr.rd: forwarded})
            raise
        self.set_reg(instr.rd, value)
        self.pc = next_pc
