"""Dynamic Voltage and Frequency Scaling — and its abuse (CLKSCREW).

CLKSCREW (paper ref [37]) "forces a processor to operate beyond its DVFS
limits in order to leak cryptographic keys".  The enabling design flaws it
documented on real SoCs, all modelled here:

* regulators are **software-controllable** from kernel code;
* regulator limits are **not bounded in hardware** (no interlock between
  the requested frequency and the voltage-dependent maximum);
* the regulator domain is **shared across security boundaries** — the
  normal-world kernel can change the clock of the core executing
  secure-world code.

When a domain runs past its timing margin, each "critical operation"
(modelled per crypto round) suffers a bit-fault with a probability that
grows with the violation — the raw material of differential fault analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SecurityViolation


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS setting."""

    freq_mhz: float
    voltage_mv: float

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0 or self.voltage_mv <= 0:
            raise ValueError("frequency and voltage must be positive")


@dataclass
class VoltageDomain:
    """One regulator domain (a cluster of cores).

    The critical-path model is the standard linear approximation: the
    maximum stable frequency scales with the overdrive voltage,
    ``f_max = k * (V - V_th)``.
    """

    name: str
    point: OperatingPoint
    k_mhz_per_mv: float = 4.0
    v_threshold_mv: float = 500.0
    hardware_limit_mhz: float | None = None  # None = no hardware interlock
    #: Core names whose execution is clocked by this domain.
    cores: list[str] = field(default_factory=list)

    def max_stable_freq(self, voltage_mv: float | None = None) -> float:
        """Highest frequency the critical path meets at ``voltage_mv``."""
        v = self.point.voltage_mv if voltage_mv is None else voltage_mv
        return max(self.k_mhz_per_mv * (v - self.v_threshold_mv), 0.0)

    def timing_margin(self) -> float:
        """Positive = safe slack (MHz); negative = margin violated."""
        return self.max_stable_freq() - self.point.freq_mhz

    def glitch_probability(self) -> float:
        """Per-critical-operation bit-fault probability at this point.

        Zero inside the margin; ramps toward ~1 as the violation reaches
        ~25% of the stable frequency.  The ramp shape is a modelling
        choice; CLKSCREW's empirical curves are similarly steep.
        """
        margin = self.timing_margin()
        if margin >= 0:
            return 0.0
        stable = max(self.max_stable_freq(), 1e-9)
        violation = -margin / stable
        return min(violation * 4.0, 1.0)


class DVFSController:
    """The SoC's power-management unit.

    ``secure_world_gated`` is the mitigation knob: when True, requests
    from the normal world targeting a domain that clocks a secure-world
    core are rejected — exactly the missing check CLKSCREW exploited.
    """

    def __init__(self, software_controllable: bool = True,
                 secure_world_gated: bool = False) -> None:
        self.software_controllable = software_controllable
        self.secure_world_gated = secure_world_gated
        self._domains: dict[str, VoltageDomain] = {}
        #: Names of cores currently executing secure-world code; maintained
        #: by the TrustZone monitor model.
        self.secure_active_cores: set[str] = set()

    def add_domain(self, domain: VoltageDomain) -> None:
        if domain.name in self._domains:
            raise ValueError(f"duplicate DVFS domain {domain.name!r}")
        self._domains[domain.name] = domain

    def domain(self, name: str) -> VoltageDomain:
        return self._domains[name]

    def domains(self) -> list[VoltageDomain]:
        return list(self._domains.values())

    def domain_of_core(self, core_name: str) -> VoltageDomain | None:
        for domain in self._domains.values():
            if core_name in domain.cores:
                return domain
        return None

    def _domain_clocks_secure_core(self, domain: VoltageDomain) -> bool:
        return any(core in self.secure_active_cores for core in domain.cores)

    def set_point(self, name: str, point: OperatingPoint, *,
                  from_secure_world: bool = False) -> None:
        """Software request to retune a domain.

        Raises :class:`SecurityViolation` when regulators are hardware-only
        or the secure-world gate rejects a cross-boundary change; raises
        ``ValueError`` when a hardware frequency interlock exists and the
        request exceeds it.
        """
        if not self.software_controllable:
            raise SecurityViolation("DVFS regulators are not software-controllable")
        domain = self._domains[name]
        if (self.secure_world_gated and not from_secure_world
                and self._domain_clocks_secure_core(domain)):
            raise SecurityViolation(
                f"domain {name!r} clocks secure-world code; "
                "normal-world retune rejected")
        if domain.hardware_limit_mhz is not None \
                and point.freq_mhz > domain.hardware_limit_mhz:
            raise ValueError(
                f"requested {point.freq_mhz} MHz exceeds hardware limit "
                f"{domain.hardware_limit_mhz} MHz")
        domain.point = point

    def glitch_probability_for_core(self, core_name: str) -> float:
        """Fault probability currently imposed on ``core_name``'s domain."""
        domain = self.domain_of_core(core_name)
        return 0.0 if domain is None else domain.glitch_probability()
