"""Trap model: causes, trap frames, and the Python-visible Trap exception."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ReproError


class TrapCause(enum.Enum):
    """Why a core trapped."""

    PAGE_FAULT = "page-fault"
    ACCESS_FAULT = "access-fault"
    ILLEGAL_INSTRUCTION = "illegal-instruction"
    ECALL = "ecall"
    BREAKPOINT = "breakpoint"
    INTERRUPT = "interrupt"
    HARDWARE_FAULT = "hardware-fault"  # injected glitch corrupted state


@dataclass(frozen=True)
class TrapInfo:
    """Architectural trap frame.

    ``detail`` carries the memory-fault reason (``"not-present"``, ...)
    when the cause is a memory fault — handlers and attack code key on it.
    """

    cause: TrapCause
    pc: int
    value: int = 0  # faulting address or ecall code
    detail: str = ""


class Trap(ReproError):
    """Raised to the Python caller when no in-simulation handler exists."""

    def __init__(self, info: TrapInfo) -> None:
        super().__init__(
            f"unhandled trap {info.cause.value} at pc={info.pc:#x} "
            f"value={info.value:#x} {info.detail}")
        self.info = info
