"""Lockstep differential harness: fast engine vs reference interpreter.

The contract of the fast-path execution engine is *observation
equivalence*: for any program, the predecoded-dispatch core and the
retained reference interpreter (:mod:`repro.cpu.reference`) must agree on
every architecturally visible quantity **and** every side-channel-visible
one — registers, memory, trap streams, ``cycles``, ``energy_pj``, and
per-level cache hit/miss/eviction/flush counts.  This module provides the
machinery the hypothesis suite (``tests/test_differential.py``) drives:

* :func:`reference_twin` — build the reference-interpreter twin of a SoC;
* :func:`lockstep` — step two cores instruction by instruction, comparing
  full state after every step and raising :class:`Divergence` at the
  first mismatch (with the step index and field in the message);
* :func:`compare_socs` — whole-system comparison (memory images, cache
  stats, bus counters) after both sides ran to completion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.cpu.core import Core
from repro.cpu.exceptions import Trap, TrapInfo
from repro.cpu.soc import SoC


class Divergence(AssertionError):
    """The two engines disagreed on an observable."""


@dataclass(frozen=True)
class CoreState:
    """Everything a single core exposes that the engines must agree on."""

    pc: int
    regs: tuple[int, ...]
    halted: bool
    privilege: Any
    world: Any
    cycles: int
    instret: int
    energy_pj: float
    csrs: tuple[tuple[int, int], ...]
    trap_count: int
    last_trap: tuple | None


def _trap_key(info: TrapInfo | None) -> tuple | None:
    if info is None:
        return None
    return (info.cause, info.pc, info.value, info.detail)


def core_state(core: Core) -> CoreState:
    """Snapshot a core's architectural + accounting state."""
    return CoreState(
        pc=core.pc,
        regs=tuple(core.regs),
        halted=core.halted,
        privilege=core.privilege,
        world=core.world,
        cycles=core.cycles,
        instret=core.instret,
        energy_pj=core.energy_pj,
        csrs=tuple(sorted(core.csr.items())),
        trap_count=len(core.trap_log),
        last_trap=_trap_key(core.last_trap),
    )


def cache_observables(soc: SoC) -> dict[str, tuple]:
    """Per-level cache counters plus resident-line sets and bus counts."""
    obs: dict[str, tuple] = {}
    caches = list(soc.hierarchy.l1s) + [soc.hierarchy.l2]
    for cache in caches:
        stats = cache.stats
        obs[cache.name] = (stats.hits, stats.misses, stats.evictions,
                           stats.flushes, tuple(sorted(cache.resident_lines())))
    obs["bus"] = (soc.bus.transaction_count, soc.bus.denied_count)
    return obs


def reference_twin(soc: SoC) -> SoC:
    """A freshly built SoC identical to ``soc`` but running the oracle."""
    return SoC(replace(soc.config, interpreter="reference"))


def _compare(step: int, field: str, fast: Any, ref: Any) -> None:
    if fast != ref:
        raise Divergence(
            f"step {step}: {field} diverged\n  fast: {fast!r}\n  ref:  {ref!r}")


def compare_cores(fast: Core, ref: Core, step: int = -1) -> None:
    """Field-by-field core comparison; raises :class:`Divergence`."""
    fs, rs = core_state(fast), core_state(ref)
    for name in CoreState.__dataclass_fields__:
        _compare(step, f"core.{name}", getattr(fs, name), getattr(rs, name))


def compare_socs(fast: SoC, ref: SoC, step: int = -1) -> None:
    """Whole-system comparison: cores, caches, bus, physical memory."""
    for fast_core, ref_core in zip(fast.cores, ref.cores):
        compare_cores(fast_core, ref_core, step)
    _compare(step, "caches", cache_observables(fast), cache_observables(ref))
    _compare(step, "memory", fast.memory._bytes, ref.memory._bytes)


def lockstep(fast: Core, ref: Core, max_steps: int = 4096,
             fast_soc: SoC | None = None, ref_soc: SoC | None = None) -> int:
    """Step both cores together, comparing after every instruction.

    When the SoCs are supplied, memory and cache observables are compared
    each step as well.  A trap escaping to Python must escape on *both*
    sides, at the same step, with the same trap frame.  Returns the number
    of steps executed.
    """
    for step in range(max_steps):
        fast_trap = ref_trap = None
        fast_more = ref_more = False
        try:
            fast_more = fast.step()
        except Trap as trap:
            fast_trap = trap.info
        try:
            ref_more = ref.step()
        except Trap as trap:
            ref_trap = trap.info
        _compare(step, "escaped trap", _trap_key(fast_trap),
                 _trap_key(ref_trap))
        compare_cores(fast, ref, step)
        if fast_soc is not None and ref_soc is not None:
            compare_socs(fast_soc, ref_soc, step)
        _compare(step, "step() continue flag", fast_more, ref_more)
        if fast_trap is not None or not fast_more:
            return step + 1
    return max_steps
