"""CPU cores and SoC composition.

Two core types span the paper's spectrum:

* :class:`Core` — in-order, no speculation: the embedded/IoT design point.
  "IoT devices ... do not incorporate the performance enhancements found
  in high-end CPUs.  Hence, they are less likely to be susceptible to
  microarchitectural attacks."
* :class:`SpeculativeCore` — adds branch prediction with transient
  execution and (configurably) retirement-time fault delivery and L1
  terminal-fault forwarding: the server/desktop design point, carrying
  exactly the flaws Spectre, Meltdown and Foreshadow exploit.

:class:`SoC` composes cores with the memory and cache substrates;
:func:`make_server_soc` / :func:`make_mobile_soc` / :func:`make_embedded_soc`
build the paper's three platform classes.
"""

from repro.cpu.exceptions import Trap, TrapCause, TrapInfo
from repro.cpu.predictor import BranchPredictor, PredictorConfig
from repro.cpu.core import Core, CoreConfig
from repro.cpu.speculative import SpeculativeCore, SpeculativeConfig
from repro.cpu.dvfs import DVFSController, OperatingPoint, VoltageDomain
from repro.cpu.soc import (
    SoC,
    SoCConfig,
    make_embedded_soc,
    make_mobile_soc,
    make_server_soc,
    soc_factory_for,
)

__all__ = [
    "BranchPredictor",
    "Core",
    "CoreConfig",
    "DVFSController",
    "OperatingPoint",
    "PredictorConfig",
    "SoC",
    "SoCConfig",
    "SpeculativeConfig",
    "SpeculativeCore",
    "Trap",
    "TrapCause",
    "TrapInfo",
    "VoltageDomain",
    "make_embedded_soc",
    "make_mobile_soc",
    "make_server_soc",
    "soc_factory_for",
]
