"""In-order core: the interpreter for :mod:`repro.isa` programs.

The in-order core is the *safe* end of the paper's spectrum — no
speculation, no out-of-order window, faults delivered at issue.  It is the
design point of the embedded platforms (SMART, TrustLite hosts), and the
baseline against which :class:`repro.cpu.speculative.SpeculativeCore`
demonstrates what performance enhancements cost in security.

Memory accesses take the full path: MMU translation (with TLB charge),
bus transaction (where TZASC / MPU / key-vault / MEE checks act, tagged
with the current PC and world), and cache-hierarchy timing.  The cycle
counter is architecturally readable (``rdcycle``), which is all an
attacker needs for every timing channel in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common import PrivilegeLevel, World
from repro.cpu.exceptions import Trap, TrapCause, TrapInfo
from repro.errors import MemoryFault, PageFault
from repro.isa.instructions import (
    INSTR_SIZE,
    OPCODES,
    Instruction,
    InstrKind,
    WORD_MASK,
)
from repro.isa.program import Program
from repro.memory.bus import BusMaster, SystemBus

# Architectural CSR numbers.
CSR_CYCLE = 0xC00
CSR_EPC = 0x341
CSR_CAUSE = 0x342
CSR_TVAL = 0x343
CSR_IE = 0x304  # interrupt enable (bit 0)
CSR_DVFS_FREQ = 0x800
CSR_DVFS_VOLT = 0x801

#: CSRs a user-mode program may read.
_USER_READABLE = frozenset({CSR_CYCLE})


@dataclass
class CoreConfig:
    """Per-core identity and cost model."""

    core_id: int = 0
    name: str = "core0"
    mispredict_penalty: int = 12
    energy_per_instr_pj: float = 10.0
    energy_per_mem_pj: float = 25.0
    #: Check execute permission on instruction fetch when the MMU is on.
    fetch_checks: bool = True


class Core:
    """One in-order hardware thread.

    Execution uses a predecoded dispatch table: every
    :class:`~repro.isa.program.Program` resolves each instruction to a
    dense opcode at build time, and the core resolves each opcode to a
    *bound handler method* once at construction.  Subclasses (the
    speculative core) override only the handlers whose semantics they
    change; :class:`repro.cpu.reference.ReferenceCore` retains the
    original ``if``/``elif`` interpreter as the differential oracle.
    """

    def __init__(self, config: CoreConfig, bus: SystemBus, hierarchy,
                 mmu) -> None:
        self.config = config
        self.bus = bus
        self.hierarchy = hierarchy
        self.mmu = mmu
        self.master = BusMaster(config.name, kind="cpu", secure_capable=True)
        #: Opcode-indexed dispatch table of bound handlers; ``getattr``
        #: here is what lets a subclass swap semantics per-opcode.
        self._handlers = tuple(
            getattr(self, name) for name in self._HANDLER_NAMES)

        self.regs = [0] * 16
        self.pc = 0
        self.privilege = PrivilegeLevel.KERNEL
        self.world = World.NORMAL
        self.domain: str | None = None  # cache security-domain label
        self.csr: dict[int, int] = {CSR_IE: 1}
        self.program: Program | None = None
        self.halted = False
        self.cycles = 0
        self.instret = 0
        self.energy_pj = 0.0
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`.  ``None``
        #: (the default) keeps :meth:`run` free of any metrics work; when
        #: set, counters are flushed *once per run*, as deltas against
        #: the marks below, never per retired instruction.
        self.metrics = None
        self._m_instret0 = 0
        self._m_cycles0 = 0
        self._m_energy0 = 0.0

        #: OS service entry point: handler(core, code) -> None.
        self.syscall_handler: Callable[["Core", int], None] | None = None
        #: Signal-handler analogue: on a fault, resume here instead of
        #: trapping to Python (used by attack loops that expect faults).
        self.fault_resume: int | None = None
        #: Most recent trap delivered via fault_resume (attacker inspects it).
        self.last_trap: TrapInfo | None = None
        #: Pending asynchronous interrupts: list of Python ISRs.
        self._pending_interrupts: list[Callable[["Core"], None]] = []
        #: Where interrupts vector to.  Delivery moves the PC here for the
        #: ISR's duration — so PC-gated windows (SMART's key vault) close
        #: the moment an interrupt fires, exactly as on real hardware.
        self.interrupt_vector: int | None = None
        #: Hooks run when a CSR is written: csr -> hook(core, value).
        self.csr_write_hooks: dict[int, Callable[["Core", int], None]] = {}
        #: Audit log of traps taken (diagnostics).
        self.trap_log: list[TrapInfo] = []
        #: When set to a list, every *architectural* control-flow event is
        #: appended as (kind, pc, target) — the raw material of C-FLAT
        #: style control-flow attestation.  Transient (squashed) control
        #: flow is never recorded.
        self.cflow_collector: list | None = None

    # -- register access --------------------------------------------------------

    def get_reg(self, idx: int) -> int:
        return 0 if idx == 0 else self.regs[idx]

    def set_reg(self, idx: int, value: int) -> None:
        if idx != 0:
            self.regs[idx] = value & WORD_MASK

    # -- interrupts --------------------------------------------------------------

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self.csr.get(CSR_IE, 1) & 1)

    def disable_interrupts(self) -> None:
        self.csr[CSR_IE] = 0

    def enable_interrupts(self) -> None:
        self.csr[CSR_IE] = 1

    def pend_interrupt(self, isr: Callable[["Core"], None]) -> None:
        """Queue an asynchronous interrupt; delivered at the next poll."""
        self._pending_interrupts.append(isr)

    def poll_interrupts(self) -> bool:
        """Deliver pending interrupts if enabled; True if any ran."""
        if not self.interrupts_enabled or not self._pending_interrupts:
            return False
        pending, self._pending_interrupts = self._pending_interrupts, []
        saved_pc = self.pc
        if self.interrupt_vector is not None:
            self.pc = self.interrupt_vector
        try:
            for isr in pending:
                isr(self)
        finally:
            self.pc = saved_pc
        return True

    # -- memory path --------------------------------------------------------------

    def _charge(self, cycles: int, mem_ops: int = 0) -> None:
        self.cycles += cycles
        self.energy_pj += mem_ops * self.config.energy_per_mem_pj

    def _translate(self, va: int, access: str):
        walks_before = self.mmu.walk_count
        result = self.mmu.translate(va, access, self.privilege,
                                    secure=self.world.is_secure)
        if self.mmu.tlb is not None:
            hit = self.mmu.walk_count == walks_before
            self._charge(self.mmu.tlb.access_latency(hit))
        return result

    def read_mem(self, va: int) -> int:
        """Architectural word load at virtual address ``va``."""
        tr = self._translate(va, "read")
        value = self.bus.read_word(self.master, tr.paddr,
                                   secure=self.world.is_secure, pc=self.pc)
        access = self.hierarchy.access(self.config.core_id, tr.paddr,
                                       is_write=False, domain=self.domain,
                                       cacheable=tr.cacheable)
        self._charge(access.latency, mem_ops=1)
        self._note_l1_fill(tr.paddr, value)
        return value

    def write_mem(self, va: int, value: int) -> None:
        """Architectural word store at virtual address ``va``."""
        tr = self._translate(va, "write")
        self.bus.write_word(self.master, tr.paddr, value,
                            secure=self.world.is_secure, pc=self.pc)
        access = self.hierarchy.access(self.config.core_id, tr.paddr,
                                       is_write=True, domain=self.domain,
                                       cacheable=tr.cacheable)
        self._charge(access.latency, mem_ops=1)
        self._note_l1_fill(tr.paddr, value & WORD_MASK)

    def flush_line(self, va: int) -> None:
        """clflush: evict the line containing ``va`` from every level."""
        tr = self._translate(va, "read")
        self.hierarchy.flush_line(tr.paddr)
        self._charge(self.hierarchy.config.l2_latency)

    def _note_l1_fill(self, paddr: int, value: int) -> None:
        """Hook for the speculative core's L1 data view; no-op here."""

    # -- program control ------------------------------------------------------------

    def load_program(self, program: Program, entry: str | None = None) -> None:
        """Install a program and point the PC at its entry."""
        self.program = program
        self.pc = program.address_of(entry) if entry else program.base
        self.halted = False

    def _fetch(self) -> Instruction:
        if self.program is None:
            raise Trap(TrapInfo(TrapCause.ILLEGAL_INSTRUCTION, self.pc,
                                detail="no program loaded"))
        if self.config.fetch_checks and self.mmu.root is not None:
            self._translate(self.pc, "execute")
        instr = self.program.fetch(self.pc)
        if instr is None:
            self._trap(TrapInfo(TrapCause.ILLEGAL_INSTRUCTION, self.pc,
                                detail="fetch from unmapped address"))
            # _trap either raised or redirected pc; refetch next step.
            return Instruction(InstrKind.NOP)
        return instr

    # -- trap delivery ----------------------------------------------------------------

    def _trap(self, info: TrapInfo) -> None:
        self.trap_log.append(info)
        self.csr[CSR_EPC] = info.pc
        self.csr[CSR_TVAL] = info.value
        self.last_trap = info
        if self.fault_resume is not None and info.cause in (
                TrapCause.PAGE_FAULT, TrapCause.ACCESS_FAULT):
            self.pc = self.fault_resume
            self._charge(self.config.mispredict_penalty)  # pipeline flush
            return
        raise Trap(info)

    def _fault_to_trap(self, fault: MemoryFault) -> TrapInfo:
        cause = TrapCause.PAGE_FAULT if isinstance(fault, PageFault) \
            else TrapCause.ACCESS_FAULT
        return TrapInfo(cause, self.pc, value=fault.addr, detail=fault.reason)

    # -- execution ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute one instruction; returns False once halted."""
        if self.halted:
            return False
        self.poll_interrupts()
        try:
            instr = self._fetch()
        except MemoryFault as fault:
            self._trap(self._fault_to_trap(fault))
            return not self.halted
        try:
            self._execute(instr)
        except MemoryFault as fault:
            self._trap(self._fault_to_trap(fault))
        self.instret += 1
        self._charge(1)
        self.energy_pj += self.config.energy_per_instr_pj
        return not self.halted

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until halt or ``max_steps``; returns elapsed cycles.

        This is the batched fast path: interrupt polling, program-swap
        detection and cycle/energy accounting are inlined so straight-line
        blocks amortise the per-step bookkeeping, while trap delivery and
        off-program fetches fall back to :meth:`step`.  Observables
        (``cycles``, ``energy_pj``, trap order, cache state) are
        bit-identical to stepping the reference interpreter.
        """
        start = self.cycles
        energy_per_instr = self.config.energy_per_instr_pj
        fetch_checks = self.config.fetch_checks
        mmu = self.mmu
        handlers = self._handlers
        program = self.program
        decoded = program._decoded if program is not None else None
        steps = 0
        while steps < max_steps:
            if self.halted:
                break
            steps += 1
            if self._pending_interrupts:
                self.poll_interrupts()
            if self.program is not program:  # ISR/syscall swapped programs
                program = self.program
                decoded = program._decoded if program is not None else None
            entry = decoded.get(self.pc) if decoded is not None else None
            if entry is None:
                # No program, or fetch from an unmapped address: step()
                # owns the trap delivery for these rare cases.
                if not self.step():
                    break
                continue
            if fetch_checks and mmu.root is not None:
                try:
                    self._translate(self.pc, "execute")
                except MemoryFault as fault:
                    self._trap(self._fault_to_trap(fault))
                    continue  # a fetch fault retires nothing (as in step())
            try:
                handlers[entry[0]](entry[1], entry[2])
            except MemoryFault as fault:
                self._trap(self._fault_to_trap(fault))
            self.instret += 1
            self.cycles += 1
            self.energy_pj += energy_per_instr
        if self.metrics is not None:
            self.flush_metrics()
        return self.cycles - start

    def flush_metrics(self) -> None:
        """Flush retire/cycle/energy deltas into ``self.metrics``.

        Deltas (not absolutes) so repeated runs of one core accumulate
        correctly into the counters; marks advance so a flush is
        idempotent when nothing executed in between.
        """
        registry = self.metrics
        if registry is None:
            return
        name = self.config.name
        d_instret = self.instret - self._m_instret0
        d_cycles = self.cycles - self._m_cycles0
        d_energy = self.energy_pj - self._m_energy0
        if d_instret:
            registry.counter(
                "repro_core_instructions_total",
                "Instructions retired per core").inc(d_instret, core=name)
        if d_cycles:
            registry.counter(
                "repro_core_cycles_total",
                "Simulated cycles elapsed per core").inc(d_cycles, core=name)
        if d_energy:
            registry.counter(
                "repro_core_energy_picojoules_total",
                "Modelled energy spent per core").inc(d_energy, core=name)
        self._m_instret0 = self.instret
        self._m_cycles0 = self.cycles
        self._m_energy0 = self.energy_pj

    def _branch_taken(self, instr: Instruction) -> bool:
        a = self.get_reg(instr.rs1)
        b = self.get_reg(instr.rs2)
        if instr.kind is InstrKind.BEQ:
            return a == b
        if instr.kind is InstrKind.BNE:
            return a != b
        if instr.kind is InstrKind.BLT:
            return a < b
        return a >= b  # BGE

    def _resolve_target(self, instr: Instruction) -> int:
        assert self.program is not None
        return self.program.target_of(instr)

    def _execute_branch(self, instr: Instruction, taken: bool,
                        target: int | None = None) -> None:
        """Redirect the PC; the speculative core overrides for prediction.

        ``target`` is the predecoded destination when statically known;
        ``None`` falls back to lazy label resolution (only consulted when
        the branch is taken, as before).
        """
        if taken:
            self.pc = target if target is not None \
                else self._resolve_target(instr)
        else:
            self.pc += INSTR_SIZE

    def _execute_ret(self, target: int) -> None:
        self.pc = target

    def _execute(self, instr: Instruction) -> None:
        """Dispatch one instruction through the opcode handler table.

        Kept as the single-instruction entry point for :meth:`step` and
        external callers; :meth:`run` indexes the table directly with
        predecoded entries.
        """
        self._handlers[OPCODES[instr.kind]](instr, None)

    # -- opcode handlers ----------------------------------------------------
    #
    # One method per InstrKind, bound into ``self._handlers`` (indexed by
    # the dense opcode from repro.isa.instructions.OPCODES).  ``target`` is
    # the predecoded control-flow destination (None when unused or when a
    # label could not be statically resolved).  Register accesses are
    # inlined — r0 reads as zero and is never written, exactly as
    # get_reg/set_reg enforce.

    def _op_alu_result(self, instr: Instruction, value: int) -> None:
        rd = instr.rd
        if rd:
            self.regs[rd] = value & WORD_MASK
        self.pc += INSTR_SIZE

    def _op_add(self, instr: Instruction, target: int | None) -> None:
        regs = self.regs
        rs1, rs2 = instr.rs1, instr.rs2
        self._op_alu_result(instr, (regs[rs1] if rs1 else 0)
                            + (regs[rs2] if rs2 else 0))

    def _op_sub(self, instr: Instruction, target: int | None) -> None:
        regs = self.regs
        rs1, rs2 = instr.rs1, instr.rs2
        self._op_alu_result(instr, (regs[rs1] if rs1 else 0)
                            - (regs[rs2] if rs2 else 0))

    def _op_and(self, instr: Instruction, target: int | None) -> None:
        regs = self.regs
        rs1, rs2 = instr.rs1, instr.rs2
        self._op_alu_result(instr, (regs[rs1] if rs1 else 0)
                            & (regs[rs2] if rs2 else 0))

    def _op_or(self, instr: Instruction, target: int | None) -> None:
        regs = self.regs
        rs1, rs2 = instr.rs1, instr.rs2
        self._op_alu_result(instr, (regs[rs1] if rs1 else 0)
                            | (regs[rs2] if rs2 else 0))

    def _op_xor(self, instr: Instruction, target: int | None) -> None:
        regs = self.regs
        rs1, rs2 = instr.rs1, instr.rs2
        self._op_alu_result(instr, (regs[rs1] if rs1 else 0)
                            ^ (regs[rs2] if rs2 else 0))

    def _op_shl(self, instr: Instruction, target: int | None) -> None:
        regs = self.regs
        rs1, rs2 = instr.rs1, instr.rs2
        self._op_alu_result(instr, (regs[rs1] if rs1 else 0)
                            << ((regs[rs2] if rs2 else 0) & 63))

    def _op_shr(self, instr: Instruction, target: int | None) -> None:
        regs = self.regs
        rs1, rs2 = instr.rs1, instr.rs2
        self._op_alu_result(instr, (regs[rs1] if rs1 else 0)
                            >> ((regs[rs2] if rs2 else 0) & 63))

    def _op_mul(self, instr: Instruction, target: int | None) -> None:
        regs = self.regs
        rs1, rs2 = instr.rs1, instr.rs2
        self._op_alu_result(instr, (regs[rs1] if rs1 else 0)
                            * (regs[rs2] if rs2 else 0))

    def _op_addi(self, instr: Instruction, target: int | None) -> None:
        rs1 = instr.rs1
        self._op_alu_result(instr, (self.regs[rs1] if rs1 else 0)
                            + instr.imm)

    def _op_li(self, instr: Instruction, target: int | None) -> None:
        self._op_alu_result(instr, instr.imm)

    def _op_load(self, instr: Instruction, target: int | None) -> None:
        rs1 = instr.rs1
        addr = ((self.regs[rs1] if rs1 else 0) + instr.imm) & WORD_MASK
        value = self.read_mem(addr)
        rd = instr.rd
        if rd:
            self.regs[rd] = value & WORD_MASK
        self.pc += INSTR_SIZE

    def _op_store(self, instr: Instruction, target: int | None) -> None:
        regs = self.regs
        rs1, rs2 = instr.rs1, instr.rs2
        addr = ((regs[rs1] if rs1 else 0) + instr.imm) & WORD_MASK
        self.write_mem(addr, regs[rs2] if rs2 else 0)
        self.pc += INSTR_SIZE

    def _op_flush(self, instr: Instruction, target: int | None) -> None:
        rs1 = instr.rs1
        addr = ((self.regs[rs1] if rs1 else 0) + instr.imm) & WORD_MASK
        self.flush_line(addr)
        self.pc += INSTR_SIZE

    def _op_fence(self, instr: Instruction, target: int | None) -> None:
        self.pc += INSTR_SIZE  # meaningful only to the speculative core

    def _op_beq(self, instr: Instruction, target: int | None) -> None:
        taken = self.get_reg(instr.rs1) == self.get_reg(instr.rs2)
        if self.cflow_collector is not None:
            self.cflow_collector.append(("br", self.pc, int(taken)))
        self._execute_branch(instr, taken, target)

    def _op_bne(self, instr: Instruction, target: int | None) -> None:
        taken = self.get_reg(instr.rs1) != self.get_reg(instr.rs2)
        if self.cflow_collector is not None:
            self.cflow_collector.append(("br", self.pc, int(taken)))
        self._execute_branch(instr, taken, target)

    def _op_blt(self, instr: Instruction, target: int | None) -> None:
        taken = self.get_reg(instr.rs1) < self.get_reg(instr.rs2)
        if self.cflow_collector is not None:
            self.cflow_collector.append(("br", self.pc, int(taken)))
        self._execute_branch(instr, taken, target)

    def _op_bge(self, instr: Instruction, target: int | None) -> None:
        taken = self.get_reg(instr.rs1) >= self.get_reg(instr.rs2)
        if self.cflow_collector is not None:
            self.cflow_collector.append(("br", self.pc, int(taken)))
        self._execute_branch(instr, taken, target)

    def _op_jmp(self, instr: Instruction, target: int | None) -> None:
        if target is None:
            target = self._resolve_target(instr)
        if self.cflow_collector is not None:
            self.cflow_collector.append(("jmp", self.pc, target))
        self.pc = target

    def _op_jal(self, instr: Instruction, target: int | None) -> None:
        if target is None:
            target = self._resolve_target(instr)
        next_pc = self.pc + INSTR_SIZE
        if self.cflow_collector is not None:
            self.cflow_collector.append(("call", self.pc, target))
        self.set_reg(15, next_pc)
        self._note_call(next_pc)
        self.pc = target

    def _op_ret(self, instr: Instruction, target: int | None) -> None:
        target = self.get_reg(15)  # always dynamic: the link register
        if self.cflow_collector is not None:
            self.cflow_collector.append(("ret", self.pc, target))
        self._execute_ret(target)

    def _op_ecall(self, instr: Instruction, target: int | None) -> None:
        if self.syscall_handler is not None:
            self.pc += INSTR_SIZE
            self.syscall_handler(self, instr.imm)
        else:
            self._trap(TrapInfo(TrapCause.ECALL, self.pc, value=instr.imm))

    def _op_csrr(self, instr: Instruction, target: int | None) -> None:
        self._csr_read(instr)
        self.pc += INSTR_SIZE

    def _op_csrw(self, instr: Instruction, target: int | None) -> None:
        next_pc = self.pc + INSTR_SIZE
        self._csr_write(instr)
        self.pc = next_pc  # a CSR hook must not redirect the PC (as before)

    def _op_rdcycle(self, instr: Instruction, target: int | None) -> None:
        rd = instr.rd
        if rd:
            self.regs[rd] = self.cycles & WORD_MASK
        self.pc += INSTR_SIZE

    def _op_nop(self, instr: Instruction, target: int | None) -> None:
        self.pc += INSTR_SIZE

    def _op_halt(self, instr: Instruction, target: int | None) -> None:
        self.halted = True

    #: Opcode-ordered handler names; resolved to bound methods per core
    #: instance so subclass overrides take effect automatically.
    _HANDLER_NAMES = tuple(
        "_op_" + kind.name.lower() for kind in InstrKind)

    @staticmethod
    def _alu(kind: InstrKind, a: int, b: int) -> int:
        if kind is InstrKind.ADD:
            return a + b
        if kind is InstrKind.SUB:
            return a - b
        if kind is InstrKind.AND:
            return a & b
        if kind is InstrKind.OR:
            return a | b
        if kind is InstrKind.XOR:
            return a ^ b
        if kind is InstrKind.SHL:
            return a << (b & 63)
        if kind is InstrKind.SHR:
            return a >> (b & 63)
        return a * b  # MUL

    def _note_call(self, return_addr: int) -> None:
        """Hook for the speculative core's RSB; no-op in order."""

    def _csr_read(self, instr: Instruction) -> None:
        csr = instr.imm
        if self.privilege == PrivilegeLevel.USER and csr not in _USER_READABLE:
            self._trap(TrapInfo(TrapCause.ILLEGAL_INSTRUCTION, self.pc,
                                value=csr, detail="privileged CSR"))
            return
        if csr == CSR_CYCLE:
            self.set_reg(instr.rd, self.cycles)
        else:
            self.set_reg(instr.rd, self.csr.get(csr, 0))

    def _csr_write(self, instr: Instruction) -> None:
        csr = instr.imm
        if self.privilege == PrivilegeLevel.USER:
            self._trap(TrapInfo(TrapCause.ILLEGAL_INSTRUCTION, self.pc,
                                value=csr, detail="privileged CSR"))
            return
        value = self.get_reg(instr.rs1)
        self.csr[csr] = value
        hook = self.csr_write_hooks.get(csr)
        if hook is not None:
            hook(self, value)

    # -- firmware execution ------------------------------------------------------------

    def execute_firmware(self, rom_pc: int, routine: Callable[["Core"], object]):
        """Run a Python-level firmware routine "from" ROM address ``rom_pc``.

        The routine's memory accesses go through :meth:`read_mem` /
        :meth:`write_mem` with the PC pinned inside the ROM gate, so
        PC-gated key vaults and execution-aware MPUs judge it as ROM code.
        This is the altitude at which SMART/TrustLite firmware is modelled:
        real enforcement on every access, Python for the arithmetic.
        """
        saved_pc = self.pc
        self.pc = rom_pc
        try:
            return routine(self)
        finally:
            self.pc = saved_pc
