"""SoC composition and the three platform classes of Figure 1.

A :class:`SoC` wires physical memory, the bus, the cache hierarchy,
per-core MMUs/TLBs and cores into one object that security architectures
(:mod:`repro.arch`) then configure.  The factory functions build the
paper's platform classes with representative microarchitectures and
energy budgets:

=================  ==========================  =======================
factory            cores                       security-relevant traits
=================  ==========================  =======================
make_server_soc    4 speculative, deep window  MMU, big shared LLC, high
                                               energy budget
make_mobile_soc    2 speculative, shallower    TrustZone world state,
                                               software DVFS shared across
                                               worlds (CLKSCREW surface)
make_embedded_soc  1 in-order                  no MMU (identity), MPU-
                                               class protection, tiny
                                               caches, tight energy budget
=================  ==========================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.tlb import TLB
from repro.common import PlatformClass, World
from repro.cpu.core import (
    CSR_DVFS_FREQ,
    CSR_DVFS_VOLT,
    Core,
    CoreConfig,
)
from repro.cpu.dvfs import DVFSController, OperatingPoint, VoltageDomain
from repro.cpu.speculative import SpeculativeConfig, SpeculativeCore
from repro.memory.bus import SystemBus
from repro.memory.dma import DMAEngine
from repro.memory.mmu import MMU
from repro.memory.paging import FrameAllocator, PAGE_SIZE, PageTable
from repro.memory.phys import PhysicalMemory
from repro.memory.regions import RegionMap, standard_layout
from repro.memory.tzasc import WorldState


@dataclass
class SoCConfig:
    """Everything needed to build a platform instance."""

    name: str
    platform: PlatformClass
    num_cores: int = 2
    speculative: bool = True
    #: "fast" = predecoded dispatch engine; "reference" = the retained
    #: step-at-a-time oracle interpreter (repro.cpu.reference), used by the
    #: differential equivalence harness.
    interpreter: str = "fast"
    spec: SpeculativeConfig = field(default_factory=SpeculativeConfig)
    hierarchy: HierarchyConfig | None = None
    has_mmu: bool = True
    tlb_sets: int = 16
    tlb_ways: int = 4
    shared_tlb: bool = False  # SMT-style sharing between cores 0 and 1
    dram_size: int = 1 << 28
    freq_mhz: float = 1000.0
    energy_per_instr_pj: float = 10.0
    energy_per_mem_pj: float = 25.0
    dvfs_software_controllable: bool = True
    dvfs_secure_world_gated: bool = False
    dvfs_hardware_limit_mhz: float | None = None


class SoC:
    """A complete simulated system-on-chip."""

    def __init__(self, config: SoCConfig) -> None:
        self.config = config
        self.memory = PhysicalMemory(size=1 << 40)
        self.regions: RegionMap = standard_layout(config.dram_size)
        self.bus = SystemBus(self.memory, self.regions)
        self.hierarchy = CacheHierarchy(
            config.hierarchy or HierarchyConfig(num_cores=config.num_cores))
        if self.hierarchy.config.num_cores < config.num_cores:
            raise ValueError("hierarchy has fewer L1s than cores")
        self.world_state = WorldState()
        self.dma_engines: dict[str, DMAEngine] = {}

        # Page-table frames live at the top of DRAM.
        dram = self.regions.get("dram")
        pt_frames = 256
        self.pt_allocator = FrameAllocator(
            dram.end - pt_frames * PAGE_SIZE, pt_frames)

        self.dvfs = DVFSController(
            software_controllable=config.dvfs_software_controllable,
            secure_world_gated=config.dvfs_secure_world_gated)

        self.tlbs: list[TLB | None] = []
        self.mmus: list[MMU] = []
        self.cores: list[Core] = []
        shared_tlb = TLB(config.tlb_sets, config.tlb_ways) \
            if config.shared_tlb else None
        for i in range(config.num_cores):
            if config.has_mmu:
                tlb = shared_tlb if config.shared_tlb and i < 2 else \
                    TLB(config.tlb_sets, config.tlb_ways)
            else:
                tlb = None
            self.tlbs.append(tlb)
            mmu = MMU(self.bus, core_name=f"core{i}", tlb=tlb)
            self.mmus.append(mmu)
            core_cfg = CoreConfig(
                core_id=i, name=f"core{i}",
                energy_per_instr_pj=config.energy_per_instr_pj,
                energy_per_mem_pj=config.energy_per_mem_pj)
            if config.interpreter == "reference":
                from repro.cpu.reference import (
                    ReferenceCore,
                    ReferenceSpeculativeCore,
                )
                spec_cls, plain_cls = ReferenceSpeculativeCore, ReferenceCore
            elif config.interpreter == "fast":
                spec_cls, plain_cls = SpeculativeCore, Core
            else:
                raise ValueError(
                    f"unknown interpreter {config.interpreter!r}")
            if config.speculative:
                core = spec_cls(core_cfg, self.bus, self.hierarchy,
                                mmu, spec=config.spec)
            else:
                core = plain_cls(core_cfg, self.bus, self.hierarchy, mmu)
            self._wire_dvfs_csrs(core)
            self.cores.append(core)

        self.dvfs.add_domain(VoltageDomain(
            name="cluster0",
            point=OperatingPoint(config.freq_mhz, 900.0),
            hardware_limit_mhz=config.dvfs_hardware_limit_mhz,
            cores=[core.config.name for core in self.cores]))

    # -- helpers -----------------------------------------------------------

    def _wire_dvfs_csrs(self, core: Core) -> None:
        def write_freq(c: Core, value: int) -> None:
            domain = self.dvfs.domain_of_core(c.config.name)
            if domain is None:
                return
            self.dvfs.set_point(
                domain.name,
                OperatingPoint(float(value), domain.point.voltage_mv),
                from_secure_world=c.world.is_secure)

        def write_volt(c: Core, value: int) -> None:
            domain = self.dvfs.domain_of_core(c.config.name)
            if domain is None:
                return
            self.dvfs.set_point(
                domain.name,
                OperatingPoint(domain.point.freq_mhz, float(value)),
                from_secure_world=c.world.is_secure)

        core.csr_write_hooks[CSR_DVFS_FREQ] = write_freq
        core.csr_write_hooks[CSR_DVFS_VOLT] = write_volt

    def add_dma_engine(self, name: str = "dma0",
                       secure: bool = False) -> DMAEngine:
        """Attach a DMA-capable peripheral to the bus."""
        engine = DMAEngine(self.bus, name=name, secure=secure)
        self.dma_engines[name] = engine
        return engine

    def make_page_table(self, asid: int = 0) -> PageTable:
        """Allocate a fresh address space rooted in reserved DRAM."""
        return PageTable(self.memory, self.pt_allocator, asid=asid)

    def set_world(self, core_id: int, world: World) -> None:
        """Monitor-level world switch for one core (TrustZone model)."""
        core = self.cores[core_id]
        core.world = world
        self.world_state.set_world(core.config.name, world)
        if world.is_secure:
            self.dvfs.secure_active_cores.add(core.config.name)
        else:
            self.dvfs.secure_active_cores.discard(core.config.name)

    # -- aggregate accounting (Figure 1 bottom rows) ---------------------------

    @property
    def total_cycles(self) -> int:
        return sum(core.cycles for core in self.cores)

    @property
    def total_energy_pj(self) -> float:
        return sum(core.energy_pj for core in self.cores)

    def wall_time_us(self) -> float:
        """Elapsed time of the busiest core at the current clock."""
        domain = self.dvfs.domains()[0]
        busiest = max((core.cycles for core in self.cores), default=0)
        return busiest / domain.point.freq_mhz

    @property
    def dram_base(self) -> int:
        return self.regions.get("dram").base


def make_server_soc(num_cores: int = 4) -> SoC:
    """Stationary high-performance platform (SGX/Sanctum host)."""
    return SoC(SoCConfig(
        name="server", platform=PlatformClass.SERVER_DESKTOP,
        num_cores=num_cores, speculative=True,
        spec=SpeculativeConfig(transient_window=128),
        hierarchy=HierarchyConfig(num_cores=num_cores, l1_sets=64, l1_ways=8,
                                  l2_sets=1024, l2_ways=16),
        has_mmu=True, shared_tlb=True, freq_mhz=3000.0,
        energy_per_instr_pj=40.0, energy_per_mem_pj=100.0,
        dvfs_software_controllable=True))


def make_mobile_soc(num_cores: int = 2) -> SoC:
    """Mobile high-performance platform (TrustZone/Sanctuary host)."""
    return SoC(SoCConfig(
        name="mobile", platform=PlatformClass.MOBILE,
        num_cores=num_cores, speculative=True,
        spec=SpeculativeConfig(transient_window=32),
        hierarchy=HierarchyConfig(num_cores=num_cores, l1_sets=64, l1_ways=4,
                                  l2_sets=512, l2_ways=8),
        has_mmu=True, freq_mhz=2000.0,
        energy_per_instr_pj=8.0, energy_per_mem_pj=20.0,
        dvfs_software_controllable=True, dvfs_secure_world_gated=False))


def make_embedded_soc() -> SoC:
    """Low-energy embedded platform (SMART/TrustLite host).

    In-order, MMU-less, near-cacheless: microarchitectural attacks find no
    purchase here, but neither do MMU-based isolation architectures — the
    design tension Section 3.3 describes.
    """
    return SoC(SoCConfig(
        name="embedded", platform=PlatformClass.EMBEDDED,
        num_cores=1, speculative=False,
        hierarchy=HierarchyConfig(num_cores=1, l1_sets=4, l1_ways=1,
                                  l2_sets=8, l2_ways=1,
                                  l1_latency=1, l2_latency=2,
                                  dram_latency=10),
        has_mmu=False, dram_size=1 << 24, freq_mhz=50.0,
        energy_per_instr_pj=1.0, energy_per_mem_pj=2.0,
        dvfs_software_controllable=False))


#: Standard factory per platform class.  Worker processes rebuild a
#: platform's SoC from this registry, so entries must stay module-level
#: functions (resolvable by reference in any interpreter).
SOC_FACTORIES = {
    PlatformClass.SERVER_DESKTOP: make_server_soc,
    PlatformClass.MOBILE: make_mobile_soc,
    PlatformClass.EMBEDDED: make_embedded_soc,
}


def soc_factory_for(platform: PlatformClass):
    """The registered SoC factory for ``platform``."""
    try:
        return SOC_FACTORIES[platform]
    except KeyError:
        raise KeyError(f"no SoC factory registered for {platform!r}") \
            from None
