"""Ensemble execution engine: N scalar cores advanced in lockstep arrays.

The evaluation matrix spends its time advancing many *independent*
``(seed, config)`` SoC instances through the same small programs, one
scalar interpreter at a time.  This module refactors the hot
architectural state of those instances — register file, PC, cycle and
retirement counters, energy accumulator, cache hierarchy (via
:class:`repro.cache.ensemble.HierarchyEnsemble`) and a bounded memory
window — into struct-of-arrays form and advances all of them with one
vectorized step: group the live instances by the opcode their PC
predecodes to, gather the per-instance operands for each group, apply
the group's numpy handler, scatter the results.  Control-flow divergence
is tolerated by construction (grouping is by *opcode*, not by PC), and
the predecoded dispatch tuples built by :class:`repro.isa.program.Program`
are the substrate: the per-program ``_decoded`` table is flattened once
into dense opcode/operand/target arrays shared by every instance running
that program.

**Peel-off.**  The scalar :class:`~repro.cpu.core.Core` stays the
reference oracle, and anything the arrays cannot reproduce bit for bit
peels off to it automatically: speculation (any ``Core`` subclass), MMU
page tables or TLB timing, metrics or control-flow collectors, pending
interrupts, ECALL/CSR instructions, jumps to statically unknown targets,
fetches that leave the program, and memory traffic outside the window or
over a non-trivial bus.  Peeling is *permanent* for the run: the
instance's array state is scattered back into its scalar objects and
``core.run()`` finishes the remaining step budget, so the observable
outcome is exactly the scalar outcome by construction.  A peeled
instance that traps has its :class:`~repro.cpu.exceptions.TrapInfo`
recorded in the report rather than aborting the siblings — the one
documented deviation from calling ``core.run()`` yourself.

**Bit-identity contract.**  For instances that never peel, every
observable compared by :func:`repro.cpu.diff.compare_socs` — registers,
PC, CSRs, traps, cycles, instret, energy (same IEEE accumulation order),
per-level cache counters and resident lines, bus transaction counts,
and sparse physical-memory contents (stores scatter exactly the bytes a
scalar store would have written) — matches the scalar run bit for bit.
``tests/test_ensemble_differential.py`` enforces this with the same
hypothesis program generator the fast-vs-reference suite uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.ensemble import HierarchyEnsemble
from repro.common import PrivilegeLevel, World
from repro.cpu.core import Core
from repro.cpu.exceptions import Trap, TrapInfo
from repro.isa.instructions import OPCODES, InstrKind, WORD_MASK
from repro.isa.program import Program

_U64 = np.uint64

_OP_LOAD = OPCODES[InstrKind.LOAD]
_OP_STORE = OPCODES[InstrKind.STORE]
_OP_FLUSH = OPCODES[InstrKind.FLUSH]
_OP_JMP = OPCODES[InstrKind.JMP]
_OP_JAL = OPCODES[InstrKind.JAL]
_OP_RET = OPCODES[InstrKind.RET]
_OP_RDCYCLE = OPCODES[InstrKind.RDCYCLE]
_OP_HALT = OPCODES[InstrKind.HALT]
_ALU_OPS = {OPCODES[k]: k for k in (
    InstrKind.ADD, InstrKind.SUB, InstrKind.AND, InstrKind.OR,
    InstrKind.XOR, InstrKind.SHL, InstrKind.SHR, InstrKind.MUL)}
_BRANCH_OPS = {OPCODES[k]: k for k in (
    InstrKind.BEQ, InstrKind.BNE, InstrKind.BLT, InstrKind.BGE)}
_PC_REL_OPS = tuple(OPCODES[k] for k in (
    InstrKind.NOP, InstrKind.FENCE))

#: Slot-count ceiling for one flattened program (guards against merged
#: programs whose address span dwarfs their instruction count).
_MAX_SLOTS = 1 << 16


@dataclass
class EnsembleReport:
    """Outcome of one :meth:`CoreEnsemble.run` call."""

    #: Vectorized steps executed (== the per-instance retirement budget
    #: consumed by instances that stayed on the array path throughout).
    steps: int
    #: Per instance: True once it left the array path for good.
    peeled: list[bool]
    #: Why each peeled instance left (None while on the array path).
    peel_reasons: list[str | None]
    #: Trap raised by a peeled instance's scalar run, if any.  Unlike a
    #: direct ``core.run()`` the ensemble does not propagate it — one
    #: instance's fault must not abort its siblings.
    traps: list[TrapInfo | None]
    #: Per-instance cycle delta over this call (scalar-visible cycles).
    cycles: list[int]


def _static_blocker(core: Core) -> str | None:
    """Why ``core`` must run scalar from the start (``None`` = vector-ok)."""
    if type(core) is not Core:
        return f"core subclass {type(core).__name__} (speculation)"
    if core.mmu.root is not None:
        return "MMU page tables active"
    if core.mmu.tlb is not None:
        return "TLB timing model active"
    if core.metrics is not None:
        return "metrics registry attached"
    if core.cflow_collector is not None:
        return "control-flow collector attached"
    if core.domain is not None:
        return "cache security domain set"
    if core.privilege is not PrivilegeLevel.KERNEL:
        return "non-kernel privilege"
    if core.world is not World.NORMAL:
        return "non-normal world"
    return None


def _flatten_program(program: Program | None):
    """Dense ``(op, rd, rs1, rs2, imm, target)`` arrays over the program's
    address span, or ``None`` when the span cannot be flattened (the
    owning instances then peel at their first fetch, which reproduces the
    scalar trap/step path exactly)."""
    if program is None:
        return None
    decoded = program._decoded
    if not decoded:
        return None
    base = min(decoded)
    span = max(decoded) - base + 4
    if span % 4 or any((addr - base) % 4 for addr in decoded):
        return None
    nslots = span // 4
    if nslots > max(_MAX_SLOTS, 8 * len(decoded)):
        return None
    op = np.full(nslots, -1, dtype=np.int64)
    rd = np.zeros(nslots, dtype=np.int64)
    rs1 = np.zeros(nslots, dtype=np.int64)
    rs2 = np.zeros(nslots, dtype=np.int64)
    imm = np.zeros(nslots, dtype=_U64)
    tgt = np.full(nslots, -1, dtype=np.int64)
    for addr, (opcode, instr, target) in decoded.items():
        slot = (addr - base) // 4
        op[slot] = opcode
        rd[slot] = instr.rd
        rs1[slot] = instr.rs1
        rs2[slot] = instr.rs2
        imm[slot] = instr.imm & WORD_MASK
        tgt[slot] = -1 if target is None else target
    return base, span, op, rd, rs1, rs2, imm, tgt


def _window_blocker(core: Core, window: tuple[int, int] | None) -> str | None:
    """Why loads/stores cannot use the array memory window."""
    if window is None:
        return "no memory window configured"
    base, size = window
    if size < 8:
        return "window smaller than one word"
    bus = core.bus
    if bus._controllers or bus._snoopers or bus._transforms:
        return "bus has controllers/snoopers/transforms"
    if base < 0 or base + size > bus.memory.size:
        return "window outside physical memory"
    region = bus.regions.find(base)
    if region is None or base + size > region.end:
        return "window not contained in one region"
    if region.device or not region.cacheable or not region.perms.write:
        return "window region is device/uncached/read-only"
    return None


class CoreEnsemble:
    """Advance N scalar :class:`~repro.cpu.core.Core` instances in lockstep.

    ``window=(base, size)`` optionally names one physical range per
    instance (the same range on every instance's private memory) whose
    bytes are mirrored into a ``(N, size)`` arena so loads and stores
    vectorize; traffic outside it peels.  Instances must not share
    hierarchies, buses or memories — the ensemble owns their state
    between :meth:`run` and :meth:`sync`, and cross-instance sharing
    would make the scatter order observable.
    """

    def __init__(self, cores: list[Core],
                 window: tuple[int, int] | None = None) -> None:
        self._cores = list(cores)
        n = self.n = len(self._cores)
        seen: dict[int, int] = {}
        for i, core in enumerate(self._cores):
            for obj in (core, core.hierarchy, core.bus, core.bus.memory):
                owner = seen.setdefault(id(obj), i)
                if owner != i:
                    raise ValueError(
                        f"instances {owner} and {i} share "
                        f"{type(obj).__name__} state; ensemble instances "
                        "must own their SoCs exclusively")

        self.hier = HierarchyEnsemble(
            [c.hierarchy for c in self._cores],
            [c.config.core_id for c in self._cores])

        self.regs = np.zeros((n, 16), dtype=_U64)
        self.pc = np.zeros(n, dtype=_U64)
        self.cycles = np.zeros(n, dtype=np.int64)
        self.instret = np.zeros(n, dtype=np.int64)
        self.energy = np.zeros(n, dtype=np.float64)
        self.halted = np.zeros(n, dtype=bool)
        self.peeled = np.zeros(n, dtype=bool)
        self.e_instr = np.array(
            [c.config.energy_per_instr_pj for c in self._cores])
        self.e_mem = np.array(
            [c.config.energy_per_mem_pj for c in self._cores])
        self.txn_delta = np.zeros(n, dtype=np.int64)
        self.peel_reasons: list[str | None] = [None] * n
        self.traps: list[TrapInfo | None] = [None] * n
        #: run() caches the active-row index; halting/peeling sets this
        #: so the cache is rebuilt on the next step.
        self._active_dirty = True

        # Flatten each distinct program once; share the dense arrays.
        self._programs = [c.program for c in self._cores]
        tables: dict[int, tuple[int, int, int]] = {}
        chunks = []
        offset = 0
        self.poff = np.zeros(n, dtype=_U64)
        self.pbase = np.zeros(n, dtype=_U64)
        self.plim = np.zeros(n, dtype=_U64)
        for i, program in enumerate(self._programs):
            key = id(program)
            if key not in tables:
                flat = _flatten_program(program)
                if flat is None:
                    tables[key] = (0, 0, 0)
                else:
                    base, span = flat[0], flat[1]
                    chunks.append(flat[2:])
                    tables[key] = (offset, base, span)
                    offset += span // 4
            off, base, span = tables[key]
            self.poff[i], self.pbase[i], self.plim[i] = off, base, span
        if chunks:
            self.OP, self.RD, self.RS1, self.RS2, self.IMM, self.TGT = (
                np.concatenate(parts) for parts in zip(*chunks))
        else:
            self.OP = np.empty(0, dtype=np.int64)
            self.RD = self.RS1 = self.RS2 = self.TGT = self.OP
            self.IMM = np.empty(0, dtype=_U64)
        # All instances sharing one mapped program unlocks the scalar
        # fetch fast path in run() whenever their PCs are in lockstep.
        self._prog_uniform = bool(
            n > 0 and len(tables) == 1 and int(self.plim[0]) > 0)
        self._poff0 = int(self.poff[0]) if n else 0
        self._pbase0 = int(self.pbase[0]) if n else 0
        self._plim0 = int(self.plim[0]) if n else 0

        # Memory window arena: current bytes + which bytes stores touched.
        self.window_ok = np.zeros(n, dtype=bool)
        self.arena: np.ndarray | None = None
        self.written: np.ndarray | None = None
        if window is not None:
            wbase, wsize = window
            self.wb = _U64(wbase)
            self.we8 = _U64(wbase + wsize - 8)
            self.arena = np.zeros((n, wsize), dtype=np.uint8)
            self.written = np.zeros((n, wsize), dtype=bool)
        self._AR8 = np.arange(8, dtype=np.int64)
        self._SH8 = _U64(8) * np.arange(8, dtype=_U64)
        self._POW = _U64(1) << self._SH8

        for i, core in enumerate(self._cores):
            reason = _static_blocker(core)
            if reason is None and not self.hier.managed[i]:
                reason = f"cache hierarchy: {self.hier.blockers[i]}"
            if reason is not None:
                # Scalar from step zero; arrays for i stay unused.
                self.peeled[i] = True
                self.peel_reasons[i] = reason
                continue
            self.regs[i] = core.regs
            self.pc[i] = core.pc
            self.cycles[i] = core.cycles
            self.instret[i] = core.instret
            self.energy[i] = core.energy_pj
            self.halted[i] = core.halted
            if window is not None:
                wreason = _window_blocker(core, window)
                if wreason is None:
                    self.window_ok[i] = True
                    sparse = core.bus.memory._bytes
                    if len(sparse) < window[1]:
                        # Far fewer bytes ever written than window bytes:
                        # walk the sparse dict instead of densifying the
                        # whole window through read_bytes.
                        row = self.arena[i]
                        wb, we = window[0], window[0] + window[1]
                        for a, v in sparse.items():
                            if wb <= a < we:
                                row[a - wb] = v
                    else:
                        self.arena[i] = np.frombuffer(
                            core.bus.memory.read_bytes(window[0], window[1]),
                            dtype=np.uint8)

        self._group_handlers = {}
        for op in _ALU_OPS:
            self._group_handlers[op] = self._h_alu
        for op in _BRANCH_OPS:
            self._group_handlers[op] = self._h_branch
        for op in _PC_REL_OPS:
            self._group_handlers[op] = self._h_next
        self._group_handlers[OPCODES[InstrKind.ADDI]] = self._h_addi
        self._group_handlers[OPCODES[InstrKind.LI]] = self._h_li
        self._group_handlers[_OP_LOAD] = self._h_load
        self._group_handlers[_OP_STORE] = self._h_store
        self._group_handlers[_OP_FLUSH] = self._h_flush
        self._group_handlers[_OP_JMP] = self._h_jump
        self._group_handlers[_OP_JAL] = self._h_jump
        self._group_handlers[_OP_RET] = self._h_ret
        self._group_handlers[_OP_RDCYCLE] = self._h_rdcycle
        self._group_handlers[_OP_HALT] = self._h_halt
        # ECALL / CSRR / CSRW (and decode holes, op == -1) have no vector
        # handler: their side effects (syscalls, CSR hooks, privilege
        # checks, traps) belong to the scalar oracle.

    # -- scatter -------------------------------------------------------------

    def _scatter_instance(self, i: int) -> None:
        core = self._cores[i]
        core.regs = [int(x) for x in self.regs[i]]
        core.pc = int(self.pc[i])
        core.cycles = int(self.cycles[i])
        core.instret = int(self.instret[i])
        core.energy_pj = float(self.energy[i])
        core.halted = bool(self.halted[i])
        self.hier.scatter_instance(i)
        if self.txn_delta[i]:
            core.bus.transaction_count += int(self.txn_delta[i])
            self.txn_delta[i] = 0
        if self.written is not None:
            cols = np.flatnonzero(self.written[i])
            if cols.size:
                # Exactly the bytes scalar stores would have written:
                # footprint-identical sparse memory.
                addrs = (cols + int(self.wb)).tolist()
                core.bus.memory._bytes.update(
                    zip(addrs, self.arena[i, cols].tolist()))

    def sync(self) -> None:
        """Scatter array state into the scalar objects (arrays stay
        authoritative for the next :meth:`run`; treat the SoCs as
        read-only between calls)."""
        for i in range(self.n):
            if not self.peeled[i]:
                self._scatter_instance(i)

    def _peel(self, i: int, remaining: int, reason: str) -> None:
        self.peeled[i] = True
        self._active_dirty = True
        self.peel_reasons[i] = reason
        self._scatter_instance(i)
        if remaining > 0:
            self._run_scalar(i, remaining)

    def _run_scalar(self, i: int, budget: int) -> None:
        try:
            self._cores[i].run(max_steps=budget)
        except Trap as trap:
            self.traps[i] = trap.info

    # -- group handlers ------------------------------------------------------
    #
    # Each takes (rows, slots, remaining): global instance rows executing
    # this opcode this step, their predecode slots, and the scalar budget
    # left should any of them peel.  Returning a bool mask marks which
    # rows actually retired on the array path (peeled rows re-execute the
    # instruction scalar-side, so they must not retire here).

    def _write_rd(self, rows, rd, vals) -> None:
        m = rd != 0
        if m.all():
            self.regs[rows, rd] = vals
        else:
            self.regs[rows[m], rd[m]] = vals[m]

    def _h_alu(self, rows, slots, remaining):
        a = self.regs[rows, self.RS1[slots]]
        b = self.regs[rows, self.RS2[slots]]
        kind = _ALU_OPS[int(self.OP[slots[0]])]
        if kind is InstrKind.ADD:
            v = a + b
        elif kind is InstrKind.SUB:
            v = a - b
        elif kind is InstrKind.AND:
            v = a & b
        elif kind is InstrKind.OR:
            v = a | b
        elif kind is InstrKind.XOR:
            v = a ^ b
        elif kind is InstrKind.SHL:
            v = a << (b & _U64(63))
        elif kind is InstrKind.SHR:
            v = a >> (b & _U64(63))
        else:  # MUL
            v = a * b
        self._write_rd(rows, self.RD[slots], v)
        self.pc[rows] += _U64(4)
        return None

    def _h_addi(self, rows, slots, remaining):
        v = self.regs[rows, self.RS1[slots]] + self.IMM[slots]
        self._write_rd(rows, self.RD[slots], v)
        self.pc[rows] += _U64(4)
        return None

    def _h_li(self, rows, slots, remaining):
        self._write_rd(rows, self.RD[slots], self.IMM[slots])
        self.pc[rows] += _U64(4)
        return None

    def _h_next(self, rows, slots, remaining):
        self.pc[rows] += _U64(4)
        return None

    def _h_rdcycle(self, rows, slots, remaining):
        self._write_rd(rows, self.RD[slots],
                       self.cycles[rows].astype(_U64))
        self.pc[rows] += _U64(4)
        return None

    def _h_halt(self, rows, slots, remaining):
        self.halted[rows] = True  # retires, PC stays (as scalar)
        self._active_dirty = True
        return None

    def _h_branch(self, rows, slots, remaining):
        a = self.regs[rows, self.RS1[slots]]
        b = self.regs[rows, self.RS2[slots]]
        kind = _BRANCH_OPS[int(self.OP[slots[0]])]
        if kind is InstrKind.BEQ:
            taken = a == b
        elif kind is InstrKind.BNE:
            taken = a != b
        elif kind is InstrKind.BLT:
            taken = a < b
        else:  # BGE
            taken = a >= b
        tgt = self.TGT[slots]
        # The scalar core resolves the target lazily, only when taken.
        bad = taken & (tgt < 0)
        keep = ~bad
        for i in rows[bad]:
            self._peel(int(i), remaining, "taken branch to unknown target")
        rows, taken, tgt = rows[keep], taken[keep], tgt[keep]
        self.pc[rows] = np.where(taken, tgt.astype(_U64),
                                 self.pc[rows] + _U64(4))
        return keep if bad.any() else None

    def _h_jump(self, rows, slots, remaining):
        tgt = self.TGT[slots]
        bad = tgt < 0
        keep = ~bad
        for i in rows[bad]:
            self._peel(int(i), remaining, "jump to unknown target")
        rows, slots, tgt = rows[keep], slots[keep], tgt[keep]
        if slots.size and int(self.OP[slots[0]]) == _OP_JAL:
            self.regs[rows, 15] = self.pc[rows] + _U64(4)  # link register
        self.pc[rows] = tgt.astype(_U64)
        return keep if bad.any() else None

    def _h_ret(self, rows, slots, remaining):
        self.pc[rows] = self.regs[rows, 15]
        return None

    def _h_flush(self, rows, slots, remaining):
        addr = (self.regs[rows, self.RS1[slots]] + self.IMM[slots]) \
            .astype(np.int64)
        self.hier.flush_line(rows, addr)
        self.cycles[rows] += self.hier.lat_l2[rows]
        self.pc[rows] += _U64(4)
        return None

    def _mem_window_rows(self, rows, addr, remaining, what):
        """Window eligibility per row (mask, all-eligible); peels the rest."""
        if self.arena is None:
            ok = np.zeros(rows.size, dtype=bool)
        else:
            ok = self.window_ok[rows] \
                & (addr >= self.wb) & (addr <= self.we8)
        allok = bool(ok.all())
        if not allok:
            for i in rows[~ok]:
                self._peel(int(i), remaining,
                           f"{what} outside memory window")
        return ok, allok

    def _h_load(self, rows, slots, remaining):
        addr = self.regs[rows, self.RS1[slots]] + self.IMM[slots]
        ok, allok = self._mem_window_rows(rows, addr, remaining, "load")
        if not allok:
            rows, slots, addr = rows[ok], slots[ok], addr[ok]
        if rows.size:
            off = (addr - self.wb).astype(np.int64)
            idx = off[:, None] + self._AR8
            b = self.arena[rows[:, None], idx]
            vals = (b.astype(_U64) * self._POW).sum(axis=1, dtype=_U64)
            self.txn_delta[rows] += 1
            lat = self.hier.access(rows, addr.astype(np.int64),
                                   is_write=False)
            self.cycles[rows] += lat
            self.energy[rows] += self.e_mem[rows]
            self._write_rd(rows, self.RD[slots], vals)
            self.pc[rows] += _U64(4)
        return None if allok else ok

    def _h_store(self, rows, slots, remaining):
        addr = self.regs[rows, self.RS1[slots]] + self.IMM[slots]
        ok, allok = self._mem_window_rows(rows, addr, remaining, "store")
        if not allok:
            rows, slots, addr = rows[ok], slots[ok], addr[ok]
        if rows.size:
            v = self.regs[rows, self.RS2[slots]]
            off = (addr - self.wb).astype(np.int64)
            idx = off[:, None] + self._AR8
            b = ((v[:, None] >> self._SH8) & _U64(0xFF)).astype(np.uint8)
            self.arena[rows[:, None], idx] = b
            self.written[rows[:, None], idx] = True
            self.txn_delta[rows] += 1
            lat = self.hier.access(rows, addr.astype(np.int64),
                                   is_write=True)
            self.cycles[rows] += lat
            self.energy[rows] += self.e_mem[rows]
            self.pc[rows] += _U64(4)
        return None if allok else ok

    # -- the vector step loop ------------------------------------------------

    def run(self, max_steps: int = 1_000_000) -> EnsembleReport:
        """Advance every instance by up to ``max_steps`` retired
        instructions (vector steps for array instances, ``core.run`` for
        peeled ones), then :meth:`sync`."""
        n = self.n
        start_cycles = [
            self._cores[i].cycles if self.peeled[i] else int(self.cycles[i])
            for i in range(n)]
        for i in range(n):
            if self.peeled[i] and not self._cores[i].halted:
                self._run_scalar(i, max_steps)
        for i in np.flatnonzero(~self.peeled & ~self.halted):
            core = self._cores[int(i)]
            if core._pending_interrupts:
                self._peel(int(i), max_steps, "pending interrupts")
            elif core.program is not self._programs[int(i)]:
                self._peel(int(i), max_steps, "program swapped externally")

        steps = 0
        rows = np.flatnonzero(~(self.halted | self.peeled))
        self._active_dirty = False
        while steps < max_steps:
            if self._active_dirty:
                rows = np.flatnonzero(~(self.halted | self.peeled))
                self._active_dirty = False
            if rows.size == 0:
                break
            remaining = max_steps - steps
            if self._prog_uniform:
                pc0 = self.pc[rows[0]]
                if bool((self.pc[rows] == pc0).all()):
                    # Lockstep PCs over one shared program: fetch and
                    # group classification collapse to scalar work.
                    rel0 = int(pc0) - self._pbase0
                    if 0 <= rel0 < self._plim0 and not rel0 & 3:
                        slot0 = self._poff0 + (rel0 >> 2)
                        handler = self._group_handlers.get(
                            int(self.OP[slot0]))
                        if handler is None:
                            for i in rows:
                                self._peel(int(i), remaining,
                                           "unsupported opcode "
                                           "(ecall/csr/hole)")
                            retired = rows[:0]
                        else:
                            slots = np.broadcast_to(
                                np.int64(slot0), rows.shape)
                            kept = handler(rows, slots, remaining)
                            retired = rows if kept is None else rows[kept]
                        self.instret[retired] += 1
                        self.cycles[retired] += 1
                        self.energy[retired] += self.e_instr[retired]
                        steps += 1
                        continue
            rel = self.pc[rows] - self.pbase[rows]
            infetch = (rel < self.plim[rows]) & ((rel & _U64(3)) == _U64(0))
            if not infetch.all():
                for i in rows[~infetch]:
                    self._peel(int(i), remaining, "fetch outside program")
                rows, rel = rows[infetch], rel[infetch]
                if rows.size == 0:
                    continue
            slots = (self.poff[rows] + (rel >> _U64(2))).astype(np.int64)
            ops = self.OP[slots]
            first = int(ops[0])
            if (ops == first).all():
                # Convergent ensembles spend almost every step here: one
                # opcode group, no mask bookkeeping, no np.unique.
                handler = self._group_handlers.get(first)
                if handler is None:
                    for i in rows:
                        self._peel(int(i), remaining,
                                   "unsupported opcode (ecall/csr/hole)")
                    retired = rows[:0]
                else:
                    kept = handler(rows, slots, remaining)
                    retired = rows if kept is None else rows[kept]
            else:
                keep = np.ones(rows.size, dtype=bool)
                for op in np.unique(ops):
                    sel = ops == op
                    handler = self._group_handlers.get(int(op))
                    if handler is None:
                        for i in rows[sel]:
                            self._peel(int(i), remaining,
                                       "unsupported opcode (ecall/csr/hole)")
                        keep[sel] = False
                        continue
                    kept = handler(rows[sel], slots[sel], remaining)
                    if kept is not None:
                        keep[sel] &= kept
                retired = rows[keep]
            self.instret[retired] += 1
            self.cycles[retired] += 1
            self.energy[retired] += self.e_instr[retired]
            steps += 1

        self.sync()
        return EnsembleReport(
            steps=steps,
            peeled=[bool(p) for p in self.peeled],
            peel_reasons=list(self.peel_reasons),
            traps=list(self.traps),
            cycles=[self._cores[i].cycles - start_cycles[i]
                    for i in range(n)])


def ensemble_run(cores: list[Core], max_steps: int = 1_000_000,
                 window: tuple[int, int] | None = None) -> EnsembleReport:
    """One-shot convenience: build a :class:`CoreEnsemble`, run, sync."""
    ensemble = CoreEnsemble(cores, window=window)
    return ensemble.run(max_steps=max_steps)
