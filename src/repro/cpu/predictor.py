"""Branch direction and target prediction.

Direction prediction uses a gshare-style pattern history table of 2-bit
saturating counters.  Target prediction for indirect control flow (``ret``)
uses the :class:`~repro.cache.btb.BranchTargetBuffer` and, optionally, a
return stack buffer.

Design knobs map one-to-one onto attacks from Section 4.2:

* PHT mistrainable from the same address space → Spectre-PHT (v1);
* BTB "indexed using virtual addresses of the branch instructions" with no
  domain tag → cross-address-space Spectre-BTB (v2);
* RSB underflow falling back to the BTB → ret2spec-style variants [27].
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.btb import BranchTargetBuffer


@dataclass
class PredictorConfig:
    """Predictor sizing and mitigation toggles."""

    pht_entries: int = 1024
    history_bits: int = 8
    btb_sets: int = 64
    btb_ways: int = 4
    btb_tag_bits: int = 8
    btb_tag_with_asid: bool = False  # True = mitigated (per-context tags)
    rsb_depth: int = 8
    use_rsb: bool = True
    flush_on_context_switch: bool = False  # IBPB-style barrier


class BranchPredictor:
    """gshare PHT + BTB + RSB."""

    def __init__(self, config: PredictorConfig | None = None) -> None:
        self.config = config or PredictorConfig()
        cfg = self.config
        if cfg.pht_entries & (cfg.pht_entries - 1):
            raise ValueError("pht_entries must be a power of two")
        self._pht = [2] * cfg.pht_entries  # weakly-taken start
        self._history = 0
        self.btb = BranchTargetBuffer(
            cfg.btb_sets, cfg.btb_ways, cfg.btb_tag_bits,
            tag_with_asid=cfg.btb_tag_with_asid)
        self._rsb: list[int] = []
        self.predictions = 0
        self.mispredictions = 0

    # -- direction ---------------------------------------------------------

    def _pht_index(self, pc: int) -> int:
        mask = self.config.pht_entries - 1
        history = self._history & ((1 << self.config.history_bits) - 1)
        return ((pc >> 2) ^ history) & mask

    def predict_taken(self, pc: int) -> bool:
        """Predicted direction for the conditional branch at ``pc``."""
        return self._pht[self._pht_index(pc)] >= 2

    def update_direction(self, pc: int, taken: bool) -> None:
        """Train the PHT with the resolved direction."""
        idx = self._pht_index(pc)
        counter = self._pht[idx]
        self._pht[idx] = min(counter + 1, 3) if taken else max(counter - 1, 0)
        self._history = ((self._history << 1) | int(taken)) & \
            ((1 << self.config.history_bits) - 1)

    # -- targets --------------------------------------------------------------

    def predict_target(self, pc: int, asid: int = 0) -> int | None:
        """Predicted target for an indirect branch at ``pc``."""
        return self.btb.predict(pc, asid)

    def update_target(self, pc: int, target: int, asid: int = 0) -> None:
        """Train the BTB with the resolved indirect target."""
        self.btb.update(pc, target, asid)

    # -- return stack -----------------------------------------------------------

    def push_return(self, addr: int) -> None:
        """Record a call's return address."""
        self._rsb.append(addr)
        if len(self._rsb) > self.config.rsb_depth:
            self._rsb.pop(0)

    def predict_return(self, pc: int, asid: int = 0) -> int | None:
        """Predicted target for ``ret``; RSB first, BTB on underflow."""
        if self.config.use_rsb and self._rsb:
            return self._rsb.pop()
        return self.btb.predict(pc, asid)

    # -- bookkeeping -------------------------------------------------------------

    def record_outcome(self, correct: bool) -> None:
        self.predictions += 1
        if not correct:
            self.mispredictions += 1

    def context_switch(self) -> None:
        """Apply the configured context-switch hygiene."""
        if self.config.flush_on_context_switch:
            self.btb.flush()
            self._pht = [2] * self.config.pht_entries
            self._rsb.clear()
            self._history = 0

    @property
    def misprediction_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
