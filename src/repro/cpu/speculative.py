"""Speculative core: branch prediction, transient execution, late faults.

This core implements the three performance enhancements whose security
consequences Section 4.2 of the paper surveys, each behind a config knob
so the benches can sweep the design space:

* **Branch prediction with transient execution** — on a misprediction the
  core executes up to ``transient_window`` instructions down the wrong
  path.  Register writes are squashed; *cache fills are not*.  That
  asymmetry is the entire transmission channel of Spectre.
* **Fault delivery at retirement** (``fault_at_retirement``) — a load that
  fails the *privilege* check still forwards its data to dependent
  transient instructions during "the time window between the cause of an
  exception and its actual raise at retirement".  Meltdown.
* **L1 terminal-fault forwarding** (``l1tf_forwarding``) — a load whose
  translation aborts on a cleared present/reserved bit forwards whatever
  the L1 holds for the *stale physical address in the PTE*.  Foreshadow.

Setting all three knobs off (or using :class:`repro.cpu.core.Core`)
reproduces the in-order embedded design the paper calls "less likely to be
susceptible to microarchitectural attacks".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.core import Core, CoreConfig
from repro.cpu.predictor import BranchPredictor, PredictorConfig
from repro.errors import MemoryFault, PageFault
from repro.isa.instructions import INSTR_SIZE, Instruction, InstrKind, WORD_MASK


@dataclass
class SpeculativeConfig:
    """Microarchitectural design knobs (TAB-S42 sweeps these)."""

    transient_window: int = 64
    fault_at_retirement: bool = True  # Meltdown-vulnerable when True
    l1tf_forwarding: bool = True  # Foreshadow-vulnerable when True
    predictor: PredictorConfig = field(default_factory=PredictorConfig)


class SpeculativeCore(Core):
    """Out-of-order-flavoured core built on the in-order interpreter.

    The simulator stays in-order architecturally; speculation is modelled
    as an explicit *transient excursion* at every misprediction or late
    fault, which reproduces the attacker-visible effects (cache state,
    timing) without a full OoO pipeline model.
    """

    def __init__(self, config: CoreConfig, bus, hierarchy, mmu,
                 spec: SpeculativeConfig | None = None) -> None:
        super().__init__(config, bus, hierarchy, mmu)
        self.spec = spec or SpeculativeConfig()
        self.predictor = BranchPredictor(self.spec.predictor)
        self.transient_runs = 0
        self.transient_instrs = 0
        #: Optional :class:`repro.spec.explorer.SpeculationExplorer` (or its
        #: memoized subclass — the hook contract is on_branch/on_ret/
        #: on_late_fault and both variants satisfy it).  When attached,
        #: every branch, return and late-faulting load reports its fork
        #: site to the explorer instead of running the predictor-driven
        #: single-path excursion — the explorer walks *both* paths itself,
        #: so the architectural walk is independent of the transient window
        #: (the invariant the memoized engine's cross-grid sharing rests
        #: on).  ``None`` (the default) keeps behaviour bit-identical to
        #: the retained reference oracle.
        self.explorer = None
        #: Word-granular plaintext view of recently CPU-touched data; the
        #: model of "what the L1 data array holds".  Consulted only when the
        #: tag check (hierarchy L1 presence) also passes.
        self._l1_view: dict[int, int] = {}

    # -- L1 data view -------------------------------------------------------

    def _note_l1_fill(self, paddr: int, value: int) -> None:
        self._l1_view[paddr] = value
        if len(self._l1_view) > 65536:
            # Crude bound; correctness is guarded by the L1 tag check.
            self._l1_view.clear()

    def _l1_data(self, paddr: int) -> int:
        """What a terminal-faulting load sees: L1 data or zeros."""
        if self.hierarchy.present_in_l1(self.config.core_id, paddr):
            return self._l1_view.get(paddr, 0)
        return 0

    # -- control flow with prediction ------------------------------------------

    @property
    def _asid(self) -> int:
        return getattr(self.mmu, "asid", 0)

    def _execute_branch(self, instr: Instruction, taken: bool,
                        target: int | None = None) -> None:
        branch_pc = self.pc
        if target is None:
            target = self._resolve_target(instr)
        fallthrough = branch_pc + INSTR_SIZE
        if self.explorer is not None:
            # Multi-path analysis: the explorer forks down the non-taken
            # direction itself (both directions are covered because the
            # architectural walk continues down the taken one).  The
            # predictor is bypassed so the exploration is independent of
            # training history — every branch is a potential mispredict.
            self.explorer.on_branch(self, instr, branch_pc, taken,
                                    target, fallthrough)
            self.pc = target if taken else fallthrough
            return
        predicted = self.predictor.predict_taken(branch_pc)
        self.predictor.update_direction(branch_pc, taken)
        self.predictor.record_outcome(predicted == taken)
        if predicted != taken:
            wrong_path = target if predicted else fallthrough
            self._run_transient(wrong_path)
            self._charge(self.config.mispredict_penalty)
        self.pc = target if taken else fallthrough

    def _execute_ret(self, target: int) -> None:
        ret_pc = self.pc
        if self.explorer is not None:
            # The explorer models indirect-predictor injection (Spectre v2)
            # from attacker-designated targets; RSB/BTB state is bypassed.
            self.explorer.on_ret(self, ret_pc, target)
            self.pc = target
            return
        predicted = self.predictor.predict_return(ret_pc, self._asid)
        if predicted is not None:
            self.predictor.record_outcome(predicted == target)
            if predicted != target:
                self._run_transient(predicted)
                self._charge(self.config.mispredict_penalty)
        self.predictor.update_target(ret_pc, target, self._asid)
        self.pc = target

    def _note_call(self, return_addr: int) -> None:
        self.predictor.push_return(return_addr)

    # -- faulting loads (Meltdown / Foreshadow windows) ----------------------------

    def _forwarded_value(self, fault: PageFault) -> int | None:
        """Data a faulting load transiently forwards, or None (no window)."""
        paddr = getattr(fault, "paddr", None)
        if paddr is None:
            return None
        if fault.reason == "privilege" and self.spec.fault_at_retirement:
            # Meltdown: permission checked at retirement; until then the
            # load pipes physical-memory data to dependents.
            return self.bus.memory.read_word(paddr)
        if fault.reason in ("not-present", "reserved") \
                and self.spec.l1tf_forwarding:
            # L1TF: translation aborted, but the stale PTE address is
            # matched against L1 tags; a hit forwards the L1 *data*.
            return self._l1_data(paddr)
        return None

    def _op_load(self, instr: Instruction, target: int | None) -> None:
        # Overrides only the LOAD handler slot in the dispatch table; every
        # other opcode keeps the in-order core's semantics.
        addr = (self.get_reg(instr.rs1) + instr.imm) & WORD_MASK
        next_pc = self.pc + INSTR_SIZE
        try:
            value = self.read_mem(addr)
        except PageFault as fault:
            if self.explorer is not None:
                self.explorer.on_late_fault(self, instr, fault, next_pc)
                raise
            forwarded = self._forwarded_value(fault)
            if forwarded is not None:
                self._run_transient(next_pc, preload={instr.rd: forwarded})
            raise
        self.set_reg(instr.rd, value)
        self.pc = next_pc

    # -- the transient excursion -----------------------------------------------------

    def _run_transient(self, start_pc: int,
                       preload: dict[int, int] | None = None) -> int:
        """Execute wrong-path/late-fault instructions; squash registers.

        Returns the number of transient instructions executed.  Cache and
        TLB state changes made by transient loads are permanent — that is
        the microarchitectural side channel.
        """
        if self.program is None or self.spec.transient_window <= 0:
            return 0
        self.transient_runs += 1
        shadow = list(self.regs)
        for reg, value in (preload or {}).items():
            if reg != 0:
                shadow[reg] = value & WORD_MASK
        pc = start_pc
        executed = 0

        def get(reg: int) -> int:
            return 0 if reg == 0 else shadow[reg]

        def put(reg: int, value: int) -> None:
            if reg != 0:
                shadow[reg] = value & WORD_MASK

        while executed < self.spec.transient_window:
            instr = self.program.fetch(pc)
            if instr is None:
                break
            k = instr.kind
            executed += 1
            next_pc = pc + INSTR_SIZE
            if k is InstrKind.FENCE or k in (
                    InstrKind.ECALL, InstrKind.HALT, InstrKind.CSRW):
                break
            if k is InstrKind.NOP or k is InstrKind.STORE \
                    or k is InstrKind.FLUSH:
                # Stores are buffered and squashed; clflush is serialising
                # enough that we conservatively skip its effect.
                pc = next_pc
                continue
            if k is InstrKind.LI:
                put(instr.rd, instr.imm)
            elif k is InstrKind.ADDI:
                put(instr.rd, get(instr.rs1) + instr.imm)
            elif k in (InstrKind.ADD, InstrKind.SUB, InstrKind.AND,
                       InstrKind.OR, InstrKind.XOR, InstrKind.SHL,
                       InstrKind.SHR, InstrKind.MUL):
                put(instr.rd, self._alu(k, get(instr.rs1), get(instr.rs2)))
            elif k is InstrKind.LOAD:
                value = self._transient_load(
                    (get(instr.rs1) + instr.imm) & WORD_MASK)
                if value is None:
                    break
                put(instr.rd, value)
            elif k in (InstrKind.CSRR, InstrKind.RDCYCLE):
                put(instr.rd, self.cycles)
            elif instr.is_branch:
                a, b = get(instr.rs1), get(instr.rs2)
                if k is InstrKind.BEQ:
                    taken = a == b
                elif k is InstrKind.BNE:
                    taken = a != b
                elif k is InstrKind.BLT:
                    taken = a < b
                else:
                    taken = a >= b
                pc = self._resolve_target(instr) if taken else next_pc
                continue
            elif k is InstrKind.JMP:
                pc = self._resolve_target(instr)
                continue
            elif k is InstrKind.JAL:
                put(15, next_pc)
                pc = self._resolve_target(instr)
                continue
            elif k is InstrKind.RET:
                pc = get(15)
                continue
            pc = next_pc

        self.transient_instrs += executed
        return executed

    def _transient_load(self, va: int) -> int | None:
        """A load on the wrong path: real cache fill, squashable value."""
        try:
            tr = self.mmu.translate(va, "read", self.privilege,
                                    secure=self.world.is_secure)
        except PageFault as fault:
            # A *nested* faulting load inside the window can itself forward
            # (Meltdown gadgets chain this way).
            return self._forwarded_value(fault)
        try:
            value = self.bus.read_word(self.master, tr.paddr,
                                       secure=self.world.is_secure,
                                       pc=self.pc)
        except MemoryFault:
            return None  # bus-level denial: no fill, excursion ends
        self.hierarchy.access(self.config.core_id, tr.paddr, is_write=False,
                              domain=self.domain, cacheable=tr.cacheable)
        self._note_l1_fill(tr.paddr, value)
        return value
