"""Serialisers for the observability artefacts.

Three output formats, all dependency-free:

* **JSONL** — one tracer record per line, the raw machine-readable form
  (grep-able, stream-appendable, diffable after dropping timestamps);
* **Chrome ``trace_event`` JSON** — loads directly in
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_: spans
  become complete (``"ph": "X"``) events, tracer scopes become named
  threads so each cell renders as its own track;
* **Prometheus text exposition** — ``# HELP`` / ``# TYPE`` headed
  samples, histograms with cumulative ``le`` buckets, ``_sum`` and
  ``_count``, parseable by any Prometheus scraper or ``promtool``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _cumulative,
)

# -- tracer records ---------------------------------------------------------


def records_to_jsonl(records: list[dict]) -> str:
    """One compact JSON object per line, in record order."""
    return "\n".join(
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records) + ("\n" if records else "")


def _scope_tids(records: list[dict]) -> dict[str, int]:
    """Stable thread id per scope, in first-appearance order."""
    tids: dict[str, int] = {}
    for record in records:
        scope = record.get("scope", "run")
        if scope not in tids:
            tids[scope] = len(tids)
    return tids


def records_to_chrome(records: list[dict],
                      process_name: str = "repro") -> dict:
    """Chrome ``trace_event`` document (the JSON Object Format)."""
    tids = _scope_tids(records)
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for scope, tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": tid, "args": {"name": scope}})
    for record in records:
        tid = tids[record.get("scope", "run")]
        event = {
            "name": record["name"],
            "cat": record.get("cat", "obs"),
            "pid": 0,
            "tid": tid,
            "ts": record.get("ts_us", 0),
            "args": dict(record.get("args", {}),
                         id=record.get("id"),
                         parent=record.get("parent")),
        }
        if record.get("kind") == "event":
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = record.get("dur_us", 0)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(records: list[dict], path: str | Path,
                process_name: str = "repro") -> Path:
    """Write the Chrome trace to ``path`` and the JSONL next to it.

    ``trace.json`` gets ``trace.jsonl`` as a sibling (a ``.jsonl`` path
    inverts the pairing), so one flag yields both serialisations.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        jsonl_path, chrome_path = path, path.with_suffix(".json")
    else:
        jsonl_path, chrome_path = path.with_suffix(".jsonl"), path
    chrome_path.write_text(
        json.dumps(records_to_chrome(records, process_name), indent=1,
                   sort_keys=True) + "\n", encoding="utf-8")
    jsonl_path.write_text(records_to_jsonl(records), encoding="utf-8")
    return chrome_path


# -- metrics ----------------------------------------------------------------


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(labels: tuple[tuple[str, str], ...],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    escaped = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in pairs)
    return "{" + escaped + "}"


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format 0.0.4 of the whole registry."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, (Counter, Gauge)):
            for labels, value in sorted(family.children.items()):
                lines.append(f"{family.name}{_format_labels(labels)} "
                             f"{_format_value(value)}")
        elif isinstance(family, Histogram):
            for labels, child in sorted(family.children.items()):
                bounds = [*(repr(b) if not float(b).is_integer()
                            else f"{b:.1f}" for b in family.buckets), "+Inf"]
                for bound, count in zip(bounds,
                                        _cumulative(child.counts)):
                    label_str = _format_labels(labels, (("le", bound),))
                    lines.append(f"{family.name}_bucket{label_str} {count}")
                lines.append(f"{family.name}_sum{_format_labels(labels)} "
                             f"{_format_value(child.total)}")
                lines.append(f"{family.name}_count{_format_labels(labels)} "
                             f"{child.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write the registry to ``path``: Prometheus text, or JSON when the
    path ends in ``.json``."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(json.dumps(registry.to_json(), indent=2,
                                   sort_keys=True) + "\n", encoding="utf-8")
    else:
        path.write_text(metrics_to_prometheus(registry), encoding="utf-8")
    return path
