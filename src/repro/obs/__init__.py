"""``repro.obs``: zero-dependency structured observability.

The paper's artefacts are *comparisons*; their value rests on being able
to explain why a cell scored what it scored.  This package makes every
run emit inspectable, machine-readable evidence:

* :mod:`repro.obs.tracer` — in-process span/event recording with
  deterministic IDs derived from cell seeds;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms in a :class:`MetricsRegistry`;
* :mod:`repro.obs.export` — JSONL, Chrome ``trace_event`` (opens in
  ``chrome://tracing`` / Perfetto) and Prometheus text serialisation;
* :mod:`repro.obs.manifest` — the per-run :class:`RunManifest`, making
  any two runs diffable artifacts;
* :mod:`repro.obs.observer` — the :class:`RunObserver` hook surface the
  runner drives (no-op by default) and :class:`Observability`, the full
  telemetry sink behind ``--trace`` / ``--metrics`` / ``--manifest``.

**Instrumentation API.**  Library code (attacks, the power instrument)
marks phases through the module-level :func:`span` / :func:`event`
helpers below.  They consult a process-global current tracer; when none
is active — the default — they cost one global read and return a shared
null context, so instrumented code paths stay at fast-path speed.  The
runner's workers activate a per-cell tracer only when an observer asked
for cell telemetry.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext

from repro.obs.export import (
    metrics_to_prometheus,
    records_to_chrome,
    records_to_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.manifest import RunManifest, host_platform
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import (
    CELL_METRICS_KEY,
    NULL_OBSERVER,
    SPANS_KEY,
    Observability,
    RunObserver,
)
from repro.obs.tracer import Tracer, derive_span_id

#: The process-global tracer consulted by :func:`span` / :func:`event`.
_CURRENT: Tracer | None = None

#: Shared reusable no-op context manager (``nullcontext`` is reentrant).
_NULL_SPAN = nullcontext()


def current_tracer() -> Tracer | None:
    """The tracer :func:`span` / :func:`event` currently report to."""
    return _CURRENT


@contextmanager
def activate(tracer: Tracer | None):
    """Make ``tracer`` the process-global tracer for the ``with`` body."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer
    try:
        yield tracer
    finally:
        _CURRENT = previous


def span(name: str, cat: str = "obs", **args: object):
    """Open a span on the active tracer, or a shared no-op context."""
    tracer = _CURRENT
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat=cat, **args)


def event(name: str, cat: str = "obs", **args: object) -> dict | None:
    """Record an instant event on the active tracer, if any."""
    tracer = _CURRENT
    if tracer is None:
        return None
    return tracer.event(name, cat=cat, **args)


__all__ = [
    "CELL_METRICS_KEY",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "Observability",
    "RunManifest",
    "RunObserver",
    "SPANS_KEY",
    "Tracer",
    "activate",
    "current_tracer",
    "derive_span_id",
    "event",
    "host_platform",
    "metrics_to_prometheus",
    "records_to_chrome",
    "records_to_jsonl",
    "span",
    "write_metrics",
    "write_trace",
]
