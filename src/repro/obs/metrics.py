"""In-process metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` owns named metric *families*; a family owns
one child per label set.  The model mirrors the Prometheus exposition
format (which :mod:`repro.obs.export` emits) without importing anything:
counters are monotonic sums, gauges are last-write-wins, histograms
bucket observations against *fixed* boundaries chosen at declaration
time, so two runs' histograms are structurally identical and diffable.

Everything is plain Python and allocation-light; the hot paths the
simulator cares about only touch a registry at run *end* (see
``Core.run``), never per instruction.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default wall-time bucket boundaries (seconds): spans cell runtimes
#: from sub-millisecond cache hits to the full-matrix minutes scale.
DEFAULT_TIME_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                        10.0, 30.0, 60.0, 120.0)

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic sum, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help_: str = "") -> None:
        self.name = name
        self.help = help_
        self.children: dict[LabelSet, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labelset(labels)
        self.children[key] = self.children.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self.children.get(_labelset(labels), 0)


class Gauge:
    """Last-write-wins value, optionally per label set."""

    kind = "gauge"

    def __init__(self, name: str, help_: str = "") -> None:
        self.name = name
        self.help = help_
        self.children: dict[LabelSet, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self.children[_labelset(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = _labelset(labels)
        self.children[key] = self.children.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self.children.get(_labelset(labels), 0)


class _HistogramChild:
    __slots__ = ("counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * (num_buckets + 1)  # +1 for the +Inf bucket
        self.total = 0.0
        self.count = 0


class Histogram:
    """Fixed-boundary histogram (cumulative buckets at export time)."""

    kind = "histogram"

    def __init__(self, name: str, help_: str = "",
                 buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.help = help_
        self.buckets = tuple(float(b) for b in buckets)
        self.children: dict[LabelSet, _HistogramChild] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _labelset(labels)
        child = self.children.get(key)
        if child is None:
            child = self.children[key] = _HistogramChild(len(self.buckets))
        child.counts[bisect_left(self.buckets, value)] += 1
        child.total += value
        child.count += 1


class MetricsRegistry:
    """Named metric families; the unit of export and snapshotting."""

    def __init__(self) -> None:
        self._families: dict[str, Counter | Gauge | Histogram] = {}

    def _declare(self, cls, name: str, help_: str, **kwargs):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = cls(name, help_, **kwargs)
        elif not isinstance(family, cls):
            raise ValueError(
                f"metric {name!r} already declared as {family.kind}")
        return family

    def counter(self, name: str, help_: str = "") -> Counter:
        return self._declare(Counter, name, help_)

    def gauge(self, name: str, help_: str = "") -> Gauge:
        return self._declare(Gauge, name, help_)

    def histogram(self, name: str, help_: str = "",
                  buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
                  ) -> Histogram:
        return self._declare(Histogram, name, help_, buckets=buckets)

    def families(self) -> list:
        """Declaration-independent stable order: sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    # -- snapshots ---------------------------------------------------------

    def to_json(self) -> dict:
        """Nested plain-dict snapshot (manifest material, diffable)."""
        out: dict[str, dict] = {}
        for family in self.families():
            if isinstance(family, Histogram):
                children = {}
                for labels, child in sorted(family.children.items()):
                    children[_label_key(labels)] = {
                        "buckets": dict(zip(
                            [str(b) for b in family.buckets] + ["+Inf"],
                            _cumulative(child.counts))),
                        "sum": child.total,
                        "count": child.count,
                    }
            else:
                children = {_label_key(labels): value
                            for labels, value in sorted(
                                family.children.items())}
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "values": children}
        return out

    def merge_json(self, snapshot: dict, **extra_labels: object) -> None:
        """Fold a worker-side :meth:`to_json` snapshot into this registry.

        Counters add, gauges overwrite, histograms are re-binned from
        their cumulative bucket counts (boundaries must match — they do,
        both sides declare the same families).  ``extra_labels`` are
        appended to every child so per-cell snapshots stay attributable.
        """
        for name, family_snap in snapshot.items():
            kind = family_snap.get("kind")
            for label_key, value in family_snap.get("values", {}).items():
                labels = dict(_parse_label_key(label_key), **{
                    k: str(v) for k, v in extra_labels.items()})
                if kind == "counter":
                    self.counter(name, family_snap.get("help", "")).inc(
                        value, **labels)
                elif kind == "gauge":
                    self.gauge(name, family_snap.get("help", "")).set(
                        value, **labels)
                elif kind == "histogram":
                    buckets = tuple(
                        float(b) for b in value["buckets"] if b != "+Inf")
                    hist = self.histogram(name, family_snap.get("help", ""),
                                          buckets=buckets)
                    key = _labelset(labels)
                    child = hist.children.get(key)
                    if child is None:
                        child = hist.children[key] = _HistogramChild(
                            len(hist.buckets))
                    cumulative = list(value["buckets"].values())
                    previous = 0
                    for i, total in enumerate(cumulative):
                        child.counts[i] += total - previous
                        previous = total
                    child.total += value["sum"]
                    child.count += value["count"]


def _cumulative(counts: list[int]) -> list[int]:
    out, running = [], 0
    for c in counts:
        running += c
        out.append(running)
    return out


def _label_key(labels: LabelSet) -> str:
    """Canonical string form of a label set (JSON map key)."""
    if not labels:
        return ""
    return ",".join(f"{k}={v}" for k, v in labels)


def _parse_label_key(key: str) -> dict[str, str]:
    if not key:
        return {}
    return dict(part.split("=", 1) for part in key.split(","))
