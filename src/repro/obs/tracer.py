"""Structured, deterministic-ID span/event tracing.

A :class:`Tracer` is an append-only in-process recorder: spans (timed
phases with nesting) and events (instants) accumulate as plain dicts in
:attr:`Tracer.records`.  There are no locks — under CPython's GIL a
``list.append`` is atomic, and the runner's design keeps one tracer per
process anyway ("lock-free-ish" by construction, not by CAS heroics).

Span *identifiers* are deterministic: each is the SHA-256 of the
tracer's scope (derived from the run or cell seed), the span name, and
the span's per-name occurrence index.  Wall-clock fields (``ts_us``,
``dur_us``) obviously vary between runs, but under serial execution two
runs of the same seed produce the same records in the same order with
the same IDs — the property ``tests/test_obs.py`` locks in, and what
makes traces from two runs diffable after stripping timestamps.

Serialisation (JSONL and Chrome ``trace_event`` JSON) lives in
:mod:`repro.obs.export`; the tracer only builds records.
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable

#: Fields that vary between identical reruns (stripped for determinism
#: comparisons; everything else in a record is a pure function of the
#: execution's seed under serial execution).
VOLATILE_FIELDS = ("ts_us", "dur_us")


def derive_span_id(*parts: object) -> str:
    """16-hex-digit stable identifier over the joined parts."""
    material = "|".join(str(p) for p in parts)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


class _Span:
    """Context manager for one open span; records on exit."""

    __slots__ = ("_tracer", "_record", "_start")

    def __init__(self, tracer: "Tracer", record: dict,
                 start: float) -> None:
        self._tracer = tracer
        self._record = record
        self._start = start

    @property
    def span_id(self) -> str:
        return self._record["id"]

    def add_args(self, **args: object) -> None:
        """Attach result-side arguments before the span closes."""
        self._record["args"].update(args)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._finish(self._record, self._start,
                             failed=exc_info[0] is not None)


class Tracer:
    """Seeded span/event recorder for one process (or one cell).

    ``scope`` seeds the ID derivation — the runner passes the run seed,
    workers pass their cell coordinates — and also labels the Chrome
    track the records land on.  ``clock`` is injectable so golden-file
    tests can use a fake monotonic clock.
    """

    def __init__(self, scope: str = "run", seed: int = 0,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.scope = scope
        self.seed = seed
        self._clock = clock
        self._t0 = clock()
        #: Closed records, in completion order (spans) / emit order
        #: (events); each is a JSON-safe dict.
        self.records: list[dict] = []
        self._seq = 0
        self._name_counts: dict[str, int] = {}
        self._stack: list[str] = []

    # -- recording ---------------------------------------------------------

    def _now_us(self) -> int:
        return int((self._clock() - self._t0) * 1e6)

    def _next_id(self, name: str) -> str:
        index = self._name_counts.get(name, 0)
        self._name_counts[name] = index + 1
        return derive_span_id(self.seed, self.scope, name, index)

    def span(self, name: str, cat: str = "obs", **args: object) -> _Span:
        """Open a span; use as ``with tracer.span("phase"): ...``."""
        start = self._clock()
        record = {
            "kind": "span",
            "name": name,
            "cat": cat,
            "id": self._next_id(name),
            "parent": self._stack[-1] if self._stack else None,
            "scope": self.scope,
            "seq": self._seq,
            "ts_us": int((start - self._t0) * 1e6),
            "dur_us": 0,
            "args": dict(args),
        }
        self._seq += 1
        self._stack.append(record["id"])
        return _Span(self, record, start)

    def _finish(self, record: dict, start: float, failed: bool) -> None:
        record["dur_us"] = max(int((self._clock() - start) * 1e6), 0)
        if failed:
            record["args"]["failed"] = True
        if self._stack and self._stack[-1] == record["id"]:
            self._stack.pop()
        self.records.append(record)

    def event(self, name: str, cat: str = "obs", **args: object) -> dict:
        """Record an instant event; returns the record."""
        record = {
            "kind": "event",
            "name": name,
            "cat": cat,
            "id": self._next_id(name),
            "parent": self._stack[-1] if self._stack else None,
            "scope": self.scope,
            "seq": self._seq,
            "ts_us": self._now_us(),
            "dur_us": 0,
            "args": dict(args),
        }
        self._seq += 1
        self.records.append(record)
        return record

    # -- aggregation -------------------------------------------------------

    def ingest(self, records: list[dict], scope: str | None = None) -> None:
        """Adopt records collected elsewhere (a worker's cell tracer).

        Records keep their own deterministic IDs; ``scope`` overrides
        their track label so each cell renders as its own Chrome thread.
        """
        for record in records:
            adopted = dict(record)
            if scope is not None:
                adopted["scope"] = scope
            self.records.append(adopted)

    def export_records(self) -> list[dict]:
        """JSON-safe copies of every record (for payload shipping)."""
        return [dict(record) for record in self.records]

    def deterministic_view(self) -> list[tuple]:
        """Records minus volatile fields — the determinism contract."""
        view = []
        for record in self.records:
            stable = {k: v for k, v in sorted(record.items())
                      if k not in VOLATILE_FIELDS}
            view.append(tuple(sorted(stable.items(),
                                     key=lambda kv: kv[0])))
        return view
