"""Per-run manifests: everything needed to explain (and diff) a run.

A :class:`RunManifest` is the run's identity card, written alongside the
trace/metrics artefacts: package version, the exact knobs and seed, the
host platform, one outcome row per cell (status / attempts / error — the
same taxonomy :class:`~repro.runner.stats.CellOutcome` carries), the
payload fingerprint of every trustworthy cell, a metrics snapshot, and
the runner's cost summary.  Keys are emitted sorted, so two manifests
from two runs are directly ``diff``-able text artifacts, and
:meth:`RunManifest.diff` explains the interesting part — which cells
changed outcome or payload — in one list.
"""

from __future__ import annotations

import json
import platform as _platform
from dataclasses import asdict, dataclass, field
from pathlib import Path

SCHEMA = "repro-run-manifest/1"


def host_platform() -> dict[str, str]:
    """The measurement host, as recorded in every manifest."""
    return {
        "python": _platform.python_version(),
        "implementation": _platform.python_implementation(),
        "machine": _platform.machine(),
        "system": _platform.system(),
    }


@dataclass
class RunManifest:
    """One run's inputs, outcomes, and evidence pointers.

    ``outcomes`` and ``fingerprints`` are keyed ``"platform/category"``;
    an outcome row is ``{"status", "attempts", "error"}``.  ``metrics``
    is a :meth:`~repro.obs.metrics.MetricsRegistry.to_json` snapshot and
    ``runner`` the cost summary (mode, jobs, cache hits, wall time).
    """

    version: str
    command: str = ""
    seed: int | None = None
    knobs: dict = field(default_factory=dict)
    host: dict = field(default_factory=host_platform)
    outcomes: dict[str, dict] = field(default_factory=dict)
    fingerprints: dict[str, str] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    runner: dict = field(default_factory=dict)
    schema: str = SCHEMA

    # -- construction ------------------------------------------------------

    @classmethod
    def from_stats(cls, version: str, stats, *, command: str = "",
                   seed: int | None = None, knobs: dict | None = None,
                   fingerprints: dict[str, str] | None = None,
                   metrics: dict | None = None) -> "RunManifest":
        """Build from a :class:`~repro.runner.stats.RunnerStats`."""
        outcomes = {
            f"{platform}/{category}": {
                "status": outcome.status,
                "attempts": outcome.attempts,
                "error": outcome.error,
            }
            for (platform, category), outcome in sorted(
                stats.outcomes.items())
        }
        return cls(
            version=version, command=command, seed=seed,
            knobs=dict(knobs or {}), outcomes=outcomes,
            fingerprints=dict(sorted((fingerprints or {}).items())),
            metrics=metrics or {},
            runner={
                "mode": stats.mode,
                "jobs": stats.jobs,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "corrupt_entries": stats.corrupt_entries,
                "pool_rebuilds": stats.pool_rebuilds,
                "retries_total": stats.retries_total,
                "cells_failed": stats.cells_failed,
                "wall_time_s": round(stats.wall_time_s, 6),
            })

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} document: {data.get('schema')!r}")
        fields_ = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in fields_})

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n", encoding="utf-8")
        return path

    @classmethod
    def read(cls, path: str | Path) -> "RunManifest":
        return cls.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8")))

    # -- comparison --------------------------------------------------------

    def diff(self, other: "RunManifest") -> list[str]:
        """Human-readable differences that matter for reproducibility:
        version/seed/knob drift, outcome changes, payload divergence."""
        notes: list[str] = []
        for attr in ("version", "seed", "knobs"):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            if mine != theirs:
                notes.append(f"{attr}: {mine!r} != {theirs!r}")
        cells = sorted(set(self.outcomes) | set(other.outcomes))
        for cell in cells:
            mine = (self.outcomes.get(cell) or {}).get("status")
            theirs = (other.outcomes.get(cell) or {}).get("status")
            if mine != theirs:
                notes.append(f"outcome {cell}: {mine} != {theirs}")
        cells = sorted(set(self.fingerprints) | set(other.fingerprints))
        for cell in cells:
            mine = self.fingerprints.get(cell)
            theirs = other.fingerprints.get(cell)
            if mine != theirs:
                notes.append(
                    f"payload {cell}: "
                    f"{(mine or 'absent')[:12]} != {(theirs or 'absent')[:12]}")
        return notes
