"""Runner observation: the no-op default and the full telemetry sink.

:class:`RunObserver` is the hook surface
(:class:`~repro.runner.engine.ExperimentRunner` calls it at every
lifecycle edge); every method is a no-op so the default costs one
attribute lookup and a call per edge — edges are per *cell*, never per
instruction, so the fast path is untouched (the bench suite asserts
the bound).  :class:`Observability` is the real implementation: it owns
a :class:`~repro.obs.tracer.Tracer` and a
:class:`~repro.obs.metrics.MetricsRegistry`, turns runner edges into
spans and metric samples, adopts the per-cell records workers ship back
inside payloads, and can distil everything into a
:class:`~repro.obs.manifest.RunManifest` plus on-disk artefacts.

This module deliberately does not import :mod:`repro.runner` — specs,
outcomes and stats arrive duck-typed — so the dependency arrow points
runner → obs only.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.export import write_metrics, write_trace
from repro.obs.manifest import RunManifest
from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.obs.tracer import Tracer

#: Payload keys carrying worker-side telemetry (excluded from integrity
#: digests by the engine: deterministic in content for spans' IDs but
#: not their timestamps, and only present when an observer asked).
SPANS_KEY = "cell_spans"
CELL_METRICS_KEY = "cell_metrics"


class RunObserver:
    """No-op observer: the hook surface and the default behaviour.

    ``wants_cell_spans`` tells the runner whether workers should collect
    in-cell telemetry (span records, core/cache metric snapshots) into
    their payloads; leaving it ``False`` keeps worker payloads and the
    execution fast path byte-for-byte at their unobserved behaviour.
    """

    wants_cell_spans = False

    def on_run_start(self, specs: list) -> None:
        """A runner run began with these cell specs."""

    def on_cache_hit(self, spec) -> None:
        """A cell was served from the result cache."""

    def on_cache_miss(self, spec) -> None:
        """A cell must execute (no trustworthy cache entry)."""

    def on_cache_quarantine(self, key: str) -> None:
        """A cache entry was discarded as corrupt."""

    def on_cell_start(self, spec, attempt: int) -> None:
        """One execution attempt of one cell began (submit or in-process)."""

    def on_cell_end(self, spec, status: str, attempts: int,
                    payload: dict | None) -> None:
        """A cell reached a terminal outcome; payload is None on failure."""

    def on_retry(self, spec, attempt: int, cause: str,
                 delay_s: float) -> None:
        """A failed attempt was requeued with backoff."""

    def on_pool_rebuild(self, reason: str) -> None:
        """The worker pool was torn down and will be rebuilt."""

    def on_queue_depth(self, queued: int, in_flight: int) -> None:
        """Supervisor queue state changed (sampled, not exhaustive)."""

    def on_run_end(self, stats) -> None:
        """The run finished; ``stats`` is the final RunnerStats."""


#: Shared default instance (stateless, safe to reuse everywhere).
NULL_OBSERVER = RunObserver()


class Observability(RunObserver):
    """Tracer + metrics + manifest, fed by runner lifecycle edges."""

    wants_cell_spans = True

    def __init__(self, run_seed: int = 0, command: str = "",
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer(
            scope="runner", seed=run_seed)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.command = command
        self.run_seed = run_seed
        self.fingerprints: dict[str, str] = {}
        self.knobs: dict = {}
        self._run_span = None
        self._cell_spans: dict = {}
        self._last_stats = None

        m = self.metrics
        self._m_outcomes = m.counter(
            "repro_runner_cell_outcomes_total",
            "Terminal cell outcomes by status")
        self._m_attempts = m.counter(
            "repro_runner_attempts_total",
            "Cell execution attempts started")
        self._m_retries = m.counter(
            "repro_runner_retries_total",
            "Attempts requeued after a failure, by cause")
        self._m_cache = m.counter(
            "repro_runner_cache_events_total",
            "Result-cache hits / misses / quarantines")
        self._m_rebuilds = m.counter(
            "repro_runner_pool_rebuilds_total",
            "Worker pools torn down and rebuilt")
        self._m_queue = m.gauge(
            "repro_runner_queue_depth",
            "Cells waiting for a worker slot")
        self._m_inflight = m.gauge(
            "repro_runner_in_flight",
            "Cells currently executing in workers")
        self._m_cell_wall = m.histogram(
            "repro_runner_cell_wall_seconds",
            "In-worker wall time per executed cell",
            buckets=DEFAULT_TIME_BUCKETS)
        self._m_cell_span = m.histogram(
            "repro_runner_cell_span_seconds",
            "Queue-to-outcome duration per cell (includes retries)",
            buckets=DEFAULT_TIME_BUCKETS)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _coords(spec) -> str:
        return f"{spec.platform}/{spec.category}"

    # -- runner edges ------------------------------------------------------

    def on_run_start(self, specs: list) -> None:
        self._run_span = self.tracer.span("runner.run", cat="runner",
                                          cells=len(specs))
        self._run_span.__enter__()
        if specs:
            self.knobs = dict(getattr(specs[0], "knobs", ()) or ())

    def on_cache_hit(self, spec) -> None:
        self._m_cache.inc(event="hit")
        self.tracer.event("cache.hit", cat="cache",
                          cell=self._coords(spec))

    def on_cache_miss(self, spec) -> None:
        self._m_cache.inc(event="miss")

    def on_cache_quarantine(self, key: str) -> None:
        self._m_cache.inc(event="quarantine")
        self.tracer.event("cache.quarantine", cat="cache", key=key)

    def on_cell_start(self, spec, attempt: int) -> None:
        coords = self._coords(spec)
        self._m_attempts.inc(cell=coords)
        if coords not in self._cell_spans:
            span = self.tracer.span(f"cell:{coords}", cat="cell",
                                    seed=spec.seed)
            span.__enter__()
            self._cell_spans[coords] = span
        self.tracer.event("attempt", cat="cell", cell=coords,
                          attempt=attempt)

    def on_cell_end(self, spec, status: str, attempts: int,
                    payload: dict | None) -> None:
        coords = self._coords(spec)
        self._m_outcomes.inc(status=status)
        span = self._cell_spans.pop(coords, None)
        if span is not None:
            span.add_args(status=status, attempts=attempts)
            span.__exit__(None, None, None)
        if payload is None:
            return
        self.fingerprints[coords] = payload.get("payload_sha256", "")
        wall = payload.get("cell_wall_time_s")
        if wall is not None:
            self._m_cell_wall.observe(wall, cell=coords)
        records = payload.get(SPANS_KEY)
        if records:
            self.tracer.ingest(records, scope=coords)
        snapshot = payload.get(CELL_METRICS_KEY)
        if snapshot:
            self.metrics.merge_json(snapshot, cell=coords)

    def on_retry(self, spec, attempt: int, cause: str,
                 delay_s: float) -> None:
        self._m_retries.inc(cause=cause)
        self.tracer.event("retry", cat="runner", cell=self._coords(spec),
                          attempt=attempt, cause=cause,
                          delay_s=round(delay_s, 4))

    def on_pool_rebuild(self, reason: str) -> None:
        self._m_rebuilds.inc(reason=reason)
        self.tracer.event("pool.rebuild", cat="runner", reason=reason)

    def on_queue_depth(self, queued: int, in_flight: int) -> None:
        self._m_queue.set(queued)
        self._m_inflight.set(in_flight)

    def on_run_end(self, stats) -> None:
        self._last_stats = stats
        # Close any cell span left open by a fail-fast abort.
        for span in list(self._cell_spans.values()):
            span.add_args(status="aborted")
            span.__exit__(None, None, None)
        self._cell_spans.clear()
        for (platform, category), seconds in stats.cell_spans.items():
            self._m_cell_span.observe(seconds,
                                      cell=f"{platform}/{category}")
        if self._run_span is not None:
            self._run_span.add_args(
                mode=stats.mode, cache_hits=stats.cache_hits,
                cells_failed=stats.cells_failed)
            self._run_span.__exit__(None, None, None)
            self._run_span = None

    # -- artefacts ---------------------------------------------------------

    def manifest(self, version: str | None = None) -> RunManifest:
        """The manifest of the most recent observed run."""
        if self._last_stats is None:
            raise RuntimeError("no run observed yet")
        if version is None:
            import repro
            version = repro.__version__
        return RunManifest.from_stats(
            version, self._last_stats, command=self.command,
            seed=self.run_seed, knobs=self.knobs,
            fingerprints=self.fingerprints, metrics=self.metrics.to_json())

    def write_artifacts(self, trace: str | Path | None = None,
                        metrics: str | Path | None = None,
                        manifest: str | Path | None = None) -> list[Path]:
        """Write the requested artefact files; returns the paths written."""
        written: list[Path] = []
        if trace is not None:
            chrome = write_trace(self.tracer.records, trace,
                                 process_name=self.command or "repro")
            written += [chrome, Path(chrome).with_suffix(".jsonl")
                        if Path(trace).suffix != ".jsonl" else Path(trace)]
        if metrics is not None:
            written.append(write_metrics(self.metrics, metrics))
        if manifest is not None:
            written.append(self.manifest().write(manifest))
        return written
