"""Instruction definitions for the simulated RISC-like ISA.

Instructions are plain frozen dataclasses interpreted by
:class:`repro.cpu.core.Core`.  Every instruction occupies
:data:`INSTR_SIZE` bytes of instruction memory so programs have realistic
program-counter arithmetic (the BTB and branch-shadowing attacks rely on
branch *addresses*).

Registers are named ``r0`` .. ``r15``; ``r0`` is hard-wired to zero, ``r14``
is the conventional stack pointer (``sp``) and ``r15`` the link register
(``lr``) written by :func:`jal`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Byte size of every instruction; PC advances by this much per instruction.
INSTR_SIZE = 4

#: Number of general-purpose registers.
NUM_REGS = 16

#: 64-bit register width mask.
WORD_MASK = (1 << 64) - 1


class Reg(enum.IntEnum):
    """General-purpose register names."""

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    SP = 14
    LR = 15


class InstrKind(enum.Enum):
    """Operation selector for :class:`Instruction`."""

    # ALU register-register
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MUL = "mul"
    # ALU register-immediate
    ADDI = "addi"
    LI = "li"
    # Memory
    LOAD = "load"
    STORE = "store"
    FLUSH = "flush"  # clflush analogue: evict one line from all cache levels
    FENCE = "fence"  # serialising barrier: drains the transient window
    # Control flow
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    JAL = "jal"
    RET = "ret"
    # System
    ECALL = "ecall"  # trap into the next-higher privilege level
    CSRR = "csrr"  # read a control/status register
    CSRW = "csrw"  # write a control/status register
    RDCYCLE = "rdcycle"  # read the cycle counter (the attacker's stopwatch)
    NOP = "nop"
    HALT = "halt"


#: Dense opcode numbering used by the predecoded dispatch engine.  A
#: :class:`~repro.isa.program.Program` resolves each instruction's kind to
#: this index once at build time; :class:`repro.cpu.core.Core` indexes a
#: tuple of bound handler methods with it instead of chaining ``if``/``elif``
#: over :class:`InstrKind` members on every executed instruction.
OPCODES: dict[InstrKind, int] = {
    kind: op for op, kind in enumerate(InstrKind)
}

#: Number of distinct opcodes (length of any dispatch table).
NUM_OPCODES = len(OPCODES)

#: Kinds that may redirect control flow.
BRANCH_KINDS = frozenset(
    {InstrKind.BEQ, InstrKind.BNE, InstrKind.BLT, InstrKind.BGE}
)

#: Kinds that always redirect control flow.
JUMP_KINDS = frozenset({InstrKind.JMP, InstrKind.JAL, InstrKind.RET})

#: Kinds that access data memory through the MMU and caches.
MEMORY_KINDS = frozenset({InstrKind.LOAD, InstrKind.STORE})


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    The operand fields are interpreted per :class:`InstrKind`:

    * ALU reg-reg: ``rd = rs1 <op> rs2``
    * ``ADDI``/``LI``: ``rd = rs1 + imm`` / ``rd = imm``
    * ``LOAD``: ``rd = mem[rs1 + imm]``
    * ``STORE``: ``mem[rs1 + imm] = rs2``
    * ``FLUSH``: evict line containing ``rs1 + imm``
    * branches: compare ``rs1`` with ``rs2``, target ``imm`` (absolute) or
      ``label`` resolved by the assembler
    * ``JAL``: ``lr = pc + 4; pc = imm``
    * ``CSRR``/``CSRW``: ``rd = csr[imm]`` / ``csr[imm] = rs1``
    """

    kind: InstrKind
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    label: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        for name in ("rd", "rs1", "rs2"):
            value = getattr(self, name)
            if not 0 <= value < NUM_REGS:
                raise ValueError(
                    f"{name}={value} out of range for {self.kind.value}"
                )

    @property
    def is_branch(self) -> bool:
        """True for conditional branches."""
        return self.kind in BRANCH_KINDS

    @property
    def is_jump(self) -> bool:
        """True for unconditional control transfers."""
        return self.kind in JUMP_KINDS

    @property
    def is_memory(self) -> bool:
        """True for instructions that access data memory."""
        return self.kind in MEMORY_KINDS

    def __str__(self) -> str:
        k = self.kind
        if k in (InstrKind.ADD, InstrKind.SUB, InstrKind.AND, InstrKind.OR,
                 InstrKind.XOR, InstrKind.SHL, InstrKind.SHR, InstrKind.MUL):
            return f"{k.value} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if k is InstrKind.ADDI:
            return f"addi r{self.rd}, r{self.rs1}, {self.imm}"
        if k is InstrKind.LI:
            return f"li r{self.rd}, {self.imm}"
        if k is InstrKind.LOAD:
            return f"load r{self.rd}, {self.imm}(r{self.rs1})"
        if k is InstrKind.STORE:
            return f"store r{self.rs2}, {self.imm}(r{self.rs1})"
        if k is InstrKind.FLUSH:
            return f"flush {self.imm}(r{self.rs1})"
        if k in (InstrKind.BEQ, InstrKind.BNE, InstrKind.BLT, InstrKind.BGE):
            target = self.label if self.label is not None else hex(self.imm)
            return f"{k.value} r{self.rs1}, r{self.rs2}, {target}"
        if k in (InstrKind.JMP, InstrKind.JAL):
            target = self.label if self.label is not None else hex(self.imm)
            return f"{k.value} {target}"
        if k is InstrKind.CSRR:
            return f"csrr r{self.rd}, {self.imm}"
        if k is InstrKind.CSRW:
            return f"csrw {self.imm}, r{self.rs1}"
        if k is InstrKind.RDCYCLE:
            return f"rdcycle r{self.rd}"
        return k.value


# ---------------------------------------------------------------------------
# Constructor helpers.  These keep victim/attacker gadget code readable:
#   prog = [li(Reg.R1, 0x1000), load(Reg.R2, Reg.R1), halt()]
# ---------------------------------------------------------------------------

def add(rd: int, rs1: int, rs2: int) -> Instruction:
    """``rd = rs1 + rs2``."""
    return Instruction(InstrKind.ADD, rd=rd, rs1=rs1, rs2=rs2)


def sub(rd: int, rs1: int, rs2: int) -> Instruction:
    """``rd = rs1 - rs2``."""
    return Instruction(InstrKind.SUB, rd=rd, rs1=rs1, rs2=rs2)


def and_(rd: int, rs1: int, rs2: int) -> Instruction:
    """``rd = rs1 & rs2``."""
    return Instruction(InstrKind.AND, rd=rd, rs1=rs1, rs2=rs2)


def or_(rd: int, rs1: int, rs2: int) -> Instruction:
    """``rd = rs1 | rs2``."""
    return Instruction(InstrKind.OR, rd=rd, rs1=rs1, rs2=rs2)


def xor(rd: int, rs1: int, rs2: int) -> Instruction:
    """``rd = rs1 ^ rs2``."""
    return Instruction(InstrKind.XOR, rd=rd, rs1=rs1, rs2=rs2)


def shl(rd: int, rs1: int, rs2: int) -> Instruction:
    """``rd = rs1 << rs2``."""
    return Instruction(InstrKind.SHL, rd=rd, rs1=rs1, rs2=rs2)


def shr(rd: int, rs1: int, rs2: int) -> Instruction:
    """``rd = rs1 >> rs2``."""
    return Instruction(InstrKind.SHR, rd=rd, rs1=rs1, rs2=rs2)


def mul(rd: int, rs1: int, rs2: int) -> Instruction:
    """``rd = rs1 * rs2``."""
    return Instruction(InstrKind.MUL, rd=rd, rs1=rs1, rs2=rs2)


def addi(rd: int, rs1: int, imm: int) -> Instruction:
    """``rd = rs1 + imm``."""
    return Instruction(InstrKind.ADDI, rd=rd, rs1=rs1, imm=imm)


def li(rd: int, imm: int) -> Instruction:
    """``rd = imm``."""
    return Instruction(InstrKind.LI, rd=rd, imm=imm)


def load(rd: int, rs1: int, offset: int = 0) -> Instruction:
    """``rd = mem[rs1 + offset]`` (one 8-byte word)."""
    return Instruction(InstrKind.LOAD, rd=rd, rs1=rs1, imm=offset)


def store(rs2: int, rs1: int, offset: int = 0) -> Instruction:
    """``mem[rs1 + offset] = rs2``."""
    return Instruction(InstrKind.STORE, rs1=rs1, rs2=rs2, imm=offset)


def flush(rs1: int, offset: int = 0) -> Instruction:
    """Evict the cache line containing ``rs1 + offset`` from all levels."""
    return Instruction(InstrKind.FLUSH, rs1=rs1, imm=offset)


def fence() -> Instruction:
    """Serialising barrier; no younger instruction executes transiently past it."""
    return Instruction(InstrKind.FENCE)


def beq(rs1: int, rs2: int, label: str) -> Instruction:
    """Branch to ``label`` if ``rs1 == rs2``."""
    return Instruction(InstrKind.BEQ, rs1=rs1, rs2=rs2, label=label)


def bne(rs1: int, rs2: int, label: str) -> Instruction:
    """Branch to ``label`` if ``rs1 != rs2``."""
    return Instruction(InstrKind.BNE, rs1=rs1, rs2=rs2, label=label)


def blt(rs1: int, rs2: int, label: str) -> Instruction:
    """Branch to ``label`` if ``rs1 < rs2`` (unsigned)."""
    return Instruction(InstrKind.BLT, rs1=rs1, rs2=rs2, label=label)


def bge(rs1: int, rs2: int, label: str) -> Instruction:
    """Branch to ``label`` if ``rs1 >= rs2`` (unsigned)."""
    return Instruction(InstrKind.BGE, rs1=rs1, rs2=rs2, label=label)


def jmp(label: str) -> Instruction:
    """Unconditional jump to ``label``."""
    return Instruction(InstrKind.JMP, label=label)


def jal(label: str) -> Instruction:
    """Jump to ``label`` and save the return address in ``lr``."""
    return Instruction(InstrKind.JAL, label=label)


def ret() -> Instruction:
    """Return to the address in ``lr``."""
    return Instruction(InstrKind.RET)


def ecall(code: int = 0) -> Instruction:
    """Trap into the supervising privilege level with service ``code``."""
    return Instruction(InstrKind.ECALL, imm=code)


def csrr(rd: int, csr: int) -> Instruction:
    """Read control/status register ``csr`` into ``rd``."""
    return Instruction(InstrKind.CSRR, rd=rd, imm=csr)


def csrw(csr: int, rs1: int) -> Instruction:
    """Write ``rs1`` into control/status register ``csr``."""
    return Instruction(InstrKind.CSRW, rs1=rs1, imm=csr)


def rdcycle(rd: int) -> Instruction:
    """Read the free-running cycle counter into ``rd``."""
    return Instruction(InstrKind.RDCYCLE, rd=rd)


def nop() -> Instruction:
    """Do nothing for one cycle."""
    return Instruction(InstrKind.NOP)


def halt() -> Instruction:
    """Stop the core."""
    return Instruction(InstrKind.HALT)
