"""A small RISC-like instruction set used by the simulated cores.

The paper's attack families (cache side channels, Spectre, Meltdown,
Foreshadow) exploit architectural *concepts* — memory loads that touch
caches, branches that can be mispredicted, faulting loads whose results are
forwarded transiently — rather than any particular vendor encoding.  This
package provides the minimal instruction vocabulary needed to express both
victims and attackers for all of them: ALU operations, loads/stores that go
through the full MMU/cache path, branches, a cache-line flush (the analogue
of ``clflush``, required by Flush+Reload), fences, CSR access and traps.
"""

from repro.isa.instructions import (
    Instruction,
    InstrKind,
    Reg,
    add,
    addi,
    and_,
    beq,
    bge,
    blt,
    bne,
    csrr,
    csrw,
    ecall,
    fence,
    flush,
    halt,
    jal,
    jmp,
    li,
    load,
    mul,
    nop,
    or_,
    ret,
    shl,
    shr,
    store,
    sub,
    xor,
)
from repro.isa.program import Program
from repro.isa.assembler import AssemblyError, assemble

__all__ = [
    "AssemblyError",
    "InstrKind",
    "Instruction",
    "Program",
    "Reg",
    "add",
    "addi",
    "and_",
    "assemble",
    "beq",
    "bge",
    "blt",
    "bne",
    "csrr",
    "csrw",
    "ecall",
    "fence",
    "flush",
    "halt",
    "jal",
    "jmp",
    "li",
    "load",
    "mul",
    "nop",
    "or_",
    "ret",
    "shl",
    "shr",
    "store",
    "sub",
    "xor",
]
