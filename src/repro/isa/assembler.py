"""Two-pass assembler for the simulated ISA.

The textual syntax mirrors :meth:`Instruction.__str__`, so a program can be
round-tripped through its printed form::

    victim:
        li   r1, 0x1000      # base of the secret array
        load r2, 8(r1)       # r2 = mem[r1 + 8]
        beq  r2, r0, done
        flush 0(r1)
        jmp  victim
    done:
        halt

Comments start with ``#`` or ``;``.  Labels are identifiers followed by a
colon.  Immediates may be decimal, hex (``0x..``) or negative.
"""

from __future__ import annotations

import re

from repro.isa import instructions as ins
from repro.isa.instructions import INSTR_SIZE, Instruction, InstrKind
from repro.isa.program import Program


class AssemblyError(ValueError):
    """Raised for malformed assembly input, with line information."""

    def __init__(self, lineno: int, line: str, reason: str) -> None:
        super().__init__(f"line {lineno}: {reason}: {line.strip()!r}")
        self.lineno = lineno
        self.reason = reason


_REG_ALIASES = {"sp": 14, "lr": 15, "zero": 0}
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_MEM_RE = re.compile(r"^(-?(?:0x[0-9a-fA-F]+|\d+))\(([A-Za-z0-9]+)\)$")


def _parse_reg(token: str, lineno: int, line: str) -> int:
    token = token.lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        num = int(token[1:])
        if 0 <= num < ins.NUM_REGS:
            return num
    raise AssemblyError(lineno, line, f"bad register {token!r}")


def _parse_imm(token: str, lineno: int, line: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(lineno, line, f"bad immediate {token!r}") from None


def _parse_mem_operand(token: str, lineno: int, line: str) -> tuple[int, int]:
    """Parse ``offset(reg)`` into ``(offset, reg)``; bare ``(reg)`` means 0."""
    match = _MEM_RE.match(token)
    if match:
        return (_parse_imm(match.group(1), lineno, line),
                _parse_reg(match.group(2), lineno, line))
    if token.startswith("(") and token.endswith(")"):
        return 0, _parse_reg(token[1:-1], lineno, line)
    raise AssemblyError(lineno, line, f"bad memory operand {token!r}")


def _split_operands(rest: str) -> list[str]:
    return [part.strip() for part in rest.split(",") if part.strip()]


# Three-register ALU mnemonics share one decode path.
_ALU3 = {
    "add": InstrKind.ADD, "sub": InstrKind.SUB, "and": InstrKind.AND,
    "or": InstrKind.OR, "xor": InstrKind.XOR, "shl": InstrKind.SHL,
    "shr": InstrKind.SHR, "mul": InstrKind.MUL,
}
_BRANCHES = {
    "beq": InstrKind.BEQ, "bne": InstrKind.BNE,
    "blt": InstrKind.BLT, "bge": InstrKind.BGE,
}


def _decode(mnemonic: str, ops: list[str], lineno: int,
            line: str) -> Instruction:
    def need(count: int) -> None:
        if len(ops) != count:
            raise AssemblyError(
                lineno, line,
                f"{mnemonic} expects {count} operand(s), got {len(ops)}")

    if mnemonic in _ALU3:
        need(3)
        return Instruction(
            _ALU3[mnemonic],
            rd=_parse_reg(ops[0], lineno, line),
            rs1=_parse_reg(ops[1], lineno, line),
            rs2=_parse_reg(ops[2], lineno, line))
    if mnemonic == "addi":
        need(3)
        return ins.addi(_parse_reg(ops[0], lineno, line),
                        _parse_reg(ops[1], lineno, line),
                        _parse_imm(ops[2], lineno, line))
    if mnemonic == "li":
        need(2)
        return ins.li(_parse_reg(ops[0], lineno, line),
                      _parse_imm(ops[1], lineno, line))
    if mnemonic == "load":
        need(2)
        offset, base = _parse_mem_operand(ops[1], lineno, line)
        return ins.load(_parse_reg(ops[0], lineno, line), base, offset)
    if mnemonic == "store":
        need(2)
        offset, base = _parse_mem_operand(ops[1], lineno, line)
        return ins.store(_parse_reg(ops[0], lineno, line), base, offset)
    if mnemonic == "flush":
        need(1)
        offset, base = _parse_mem_operand(ops[0], lineno, line)
        return ins.flush(base, offset)
    if mnemonic == "fence":
        need(0)
        return ins.fence()
    if mnemonic in _BRANCHES:
        need(3)
        return Instruction(
            _BRANCHES[mnemonic],
            rs1=_parse_reg(ops[0], lineno, line),
            rs2=_parse_reg(ops[1], lineno, line),
            label=ops[2])
    if mnemonic in ("jmp", "jal"):
        need(1)
        kind = InstrKind.JMP if mnemonic == "jmp" else InstrKind.JAL
        return Instruction(kind, label=ops[0])
    if mnemonic == "ret":
        need(0)
        return ins.ret()
    if mnemonic == "ecall":
        if len(ops) > 1:
            raise AssemblyError(lineno, line, "ecall takes at most 1 operand")
        code = _parse_imm(ops[0], lineno, line) if ops else 0
        return ins.ecall(code)
    if mnemonic == "csrr":
        need(2)
        return ins.csrr(_parse_reg(ops[0], lineno, line),
                        _parse_imm(ops[1], lineno, line))
    if mnemonic == "csrw":
        need(2)
        return ins.csrw(_parse_imm(ops[0], lineno, line),
                        _parse_reg(ops[1], lineno, line))
    if mnemonic == "rdcycle":
        need(1)
        return ins.rdcycle(_parse_reg(ops[0], lineno, line))
    if mnemonic == "nop":
        need(0)
        return ins.nop()
    if mnemonic == "halt":
        need(0)
        return ins.halt()
    raise AssemblyError(lineno, line, f"unknown mnemonic {mnemonic!r}")


def assemble(text: str, base: int = 0x1000, name: str = "program",
             allow_undefined: bool = False) -> Program:
    """Assemble ``text`` into a :class:`Program` at address ``base``.

    Labels may be referenced before definition (two-pass assembly).
    Branch/jump labels are kept symbolic in the instruction so the program
    stays relocatable; undefined references raise :class:`AssemblyError`
    unless ``allow_undefined`` is set (for fragments that will be merged
    with :func:`repro.isa.program.merge_programs`, which re-resolves).
    """
    instrs: list[Instruction] = []
    labels: dict[str, int] = {}
    pending: list[tuple[int, str, str]] = []  # (lineno, line, label)

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        while line:
            match = _LABEL_RE.match(line)
            if match:
                label, line = match.group(1), match.group(2).strip()
                if label in labels:
                    raise AssemblyError(lineno, raw,
                                        f"duplicate label {label!r}")
                labels[label] = base + len(instrs) * INSTR_SIZE
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].lower()
            ops = _split_operands(parts[1]) if len(parts) > 1 else []
            instr = _decode(mnemonic, ops, lineno, raw)
            if instr.label is not None:
                pending.append((lineno, raw, instr.label))
            instrs.append(instr)
            line = ""

    if not allow_undefined:
        for lineno, raw, label in pending:
            if label not in labels:
                raise AssemblyError(lineno, raw, f"undefined label {label!r}")
    return Program(instrs, base=base, labels=labels, name=name)
