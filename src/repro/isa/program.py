"""Program container: a label-resolved instruction sequence at a base address."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.isa.instructions import (
    BRANCH_KINDS,
    INSTR_SIZE,
    JUMP_KINDS,
    OPCODES,
    Instruction,
)


@dataclass
class Program:
    """A sequence of instructions placed at ``base`` in the address space.

    Labels map symbolic names to absolute addresses; branch/jump
    instructions whose ``label`` is set are resolved lazily through
    :meth:`target_of`, so the same gadget can be relocated by changing
    ``base`` alone.
    """

    instructions: Sequence[Instruction]
    base: int = 0x1000
    labels: Mapping[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self) -> None:
        if self.base % INSTR_SIZE:
            raise ValueError(f"base {self.base:#x} not {INSTR_SIZE}-byte aligned")
        self._by_addr = {
            self.base + i * INSTR_SIZE: instr
            for i, instr in enumerate(self.instructions)
        }
        self._predecode()

    def _predecode(self) -> None:
        """Decode every instruction once: ``addr -> (opcode, instr, target)``.

        ``target`` is the statically resolved control-flow destination for
        branches/jumps (``None`` for other kinds, and for labels that are
        not resolvable yet — e.g. fragments awaiting :func:`merge_programs`
        — which fall back to lazy :meth:`target_of` resolution at execute
        time, preserving the original failure behaviour).
        """
        labels = self.labels
        decoded: dict[int, tuple[int, Instruction, int | None]] = {}
        for addr, instr in self._by_addr.items():
            kind = instr.kind
            target: int | None = None
            if kind in BRANCH_KINDS or kind in JUMP_KINDS:
                if instr.label is not None:
                    target = labels.get(instr.label)
                else:
                    target = instr.imm
            decoded[addr] = (OPCODES[kind], instr, target)
        self._decoded = decoded

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    @property
    def end(self) -> int:
        """First address past the program."""
        return self.base + len(self.instructions) * INSTR_SIZE

    def fetch(self, addr: int) -> Instruction | None:
        """Return the instruction at absolute address ``addr``, if any."""
        return self._by_addr.get(addr)

    def decoded_entry(self, addr: int) -> tuple[int, Instruction, int | None] | None:
        """The predecoded ``(opcode, instr, static_target)`` at ``addr``.

        Public accessor for analysis tools (the speculation explorer walks
        programs through this table rather than re-decoding per step).
        """
        return self._decoded.get(addr)

    def address_of(self, label: str) -> int:
        """Absolute address of ``label``.

        Raises ``KeyError`` when the label is unknown.
        """
        return self.labels[label]

    def target_of(self, instr: Instruction) -> int:
        """Resolve the control-flow target of a branch/jump instruction."""
        if instr.label is not None:
            return self.address_of(instr.label)
        return instr.imm

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls inside this program's footprint."""
        return self.base <= addr < self.end


def merge_programs(programs: Sequence[Program], name: str = "merged") -> Program:
    """Combine non-overlapping programs into one fetchable image.

    Used to lay victim and attacker gadgets into a single instruction
    address space.  Raises ``ValueError`` on footprint or label collisions.
    """
    if not programs:
        raise ValueError("need at least one program")
    ordered = sorted(programs, key=lambda p: p.base)
    for before, after in zip(ordered, ordered[1:]):
        if before.end > after.base:
            raise ValueError(
                f"programs {before.name!r} and {after.name!r} overlap at "
                f"{after.base:#x}"
            )
    labels: dict[str, int] = {}
    for prog in ordered:
        for label, addr in prog.labels.items():
            if label in labels and labels[label] != addr:
                raise ValueError(f"conflicting definitions of label {label!r}")
            labels[label] = addr

    merged = Program(ordered[0].instructions, base=ordered[0].base,
                     labels=labels, name=name)
    # Rebuild the address map to span every fragment; Program.__post_init__
    # only indexed the first fragment's instructions.
    by_addr: dict[int, Instruction] = {}
    for prog in ordered:
        for i, instr in enumerate(prog.instructions):
            by_addr[prog.base + i * INSTR_SIZE] = instr
    merged._by_addr = by_addr
    merged.instructions = [instr for _, instr in sorted(by_addr.items())]
    merged._predecode()
    return merged
