"""Platform profiles: the three Figure 1 columns.

A profile combines (a) a SoC factory producing the platform's
microarchitecture, (b) *exposure priors* — how plausible each adversary's
physical preconditions are on that platform class, and (c) a measured
performance/energy characterisation from a reference workload.

The exposure priors are the only non-measured model inputs in Figure 1's
regeneration, and they encode exactly the paper's stated reasoning:
"classical physical attacks ... are not considered a main threat in
servers and desktop computers, while they are prominent on IoT devices
that allow potential adversaries in close proximity", and
microarchitectural attacks presume co-resident attacker software, which
is the normal condition on multi-tenant servers and the exception on
single-purpose embedded nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common import PlatformClass
from repro.cpu.soc import (
    SoC,
    make_embedded_soc,
    make_mobile_soc,
    make_server_soc,
)
from repro.crypto.aes import TTableAES


@dataclass(frozen=True)
class PlatformProfile:
    """One platform class with its priors and SoC factory."""

    platform: PlatformClass
    description: str
    make_soc: Callable[[], SoC]
    #: Probability that a physical adversary can reach the device.
    physical_access_prior: float
    #: Probability that attacker software co-resides with victims.
    co_residency_prior: float

    def __post_init__(self) -> None:
        for name in ("physical_access_prior", "co_residency_prior"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")


STANDARD_PLATFORMS: tuple[PlatformProfile, ...] = (
    PlatformProfile(
        platform=PlatformClass.SERVER_DESKTOP,
        description="stationary high-performance (SGX/Sanctum hosts)",
        make_soc=make_server_soc,
        physical_access_prior=0.1,  # locked data centres / homes
        co_residency_prior=1.0),    # multi-tenancy is the business model
    PlatformProfile(
        platform=PlatformClass.MOBILE,
        description="mobile high-performance (TrustZone/Sanctuary hosts)",
        make_soc=make_mobile_soc,
        physical_access_prior=0.6,  # devices are lost, stolen, borrowed
        co_residency_prior=0.7),    # third-party apps, but sandboxed
    PlatformProfile(
        platform=PlatformClass.EMBEDDED,
        description="low-energy embedded/IoT (SMART/TrustLite hosts)",
        make_soc=make_embedded_soc,
        physical_access_prior=0.95,  # deployed in the field
        co_residency_prior=0.2),     # mostly single-purpose firmware
)


def profile_for(platform: PlatformClass) -> PlatformProfile:
    """Standard profile for a platform class."""
    for profile in STANDARD_PLATFORMS:
        if profile.platform is platform:
            return profile
    raise KeyError(platform)


@dataclass
class WorkloadResult:
    """Measured characterisation of one reference-workload run."""

    cycles: int
    instructions: int
    wall_time_us: float
    energy_pj: float

    @property
    def throughput_ops_per_s(self) -> float:
        if self.wall_time_us <= 0:
            return 0.0
        return 1e6 / self.wall_time_us

    @property
    def energy_per_op_pj(self) -> float:
        return self.energy_pj


def reference_workload(soc: SoC, blocks: int = 8) -> WorkloadResult:
    """A fixed crypto-service workload, identical across platforms.

    Encrypts ``blocks`` AES blocks with every table lookup going through
    the SoC's memory hierarchy from core 0 — cache behaviour, clock speed
    and per-operation energy all shape the outcome, which is what the
    performance/energy rows of Figure 1 summarise.
    """
    core = soc.cores[0]
    dram = soc.regions.get("dram")
    table_base = dram.base + 0x4000

    def on_lookup(table: int, index: int) -> None:
        paddr = (table_base + table * 1024 + index * 4) & ~7
        access = soc.hierarchy.access(0, paddr)
        core.cycles += access.latency
        core.energy_pj += core.config.energy_per_mem_pj

    cipher = TTableAES(bytes(range(16)), on_lookup=on_lookup)
    start_cycles = core.cycles
    start_energy = core.energy_pj
    block = bytes(16)
    for _ in range(blocks):
        block = cipher.encrypt_block(block)
        # Per-block instruction stream cost (ALU work around the loads).
        core.cycles += 600
        core.instret += 600
        core.energy_pj += 600 * core.config.energy_per_instr_pj
    cycles = core.cycles - start_cycles
    freq = soc.dvfs.domains()[0].point.freq_mhz
    return WorkloadResult(
        cycles=cycles,
        instructions=blocks * 600,
        wall_time_us=cycles / freq,
        energy_pj=core.energy_pj - start_energy)
