"""The paper's contribution: the cross-platform comparison framework.

The survey's intellectual content is a taxonomy (adversaries × platforms
× architectures) and a set of qualitative judgements (Figure 1, the
Section 3-5 comparisons).  This package *derives* those judgements from
experiment outcomes on the simulated stack instead of asserting them:

* :mod:`repro.core.taxonomy` — adversary models and importance levels;
* :mod:`repro.core.platforms` — the three platform profiles with their
  exposure priors and measured performance/energy characteristics;
* :mod:`repro.core.matrix` — runs the attack suite per platform and
  aggregates per-category scores;
* :mod:`repro.core.figure1` — regenerates Figure 1 from those scores;
* :mod:`repro.core.comparison` — regenerates the Section 3/4 architecture
  comparison tables from features + live attack outcomes;
* :mod:`repro.core.advisor` — Section 6's closing advice ("select the
  optimal security architecture given the energy and performance budget")
  as a scoring engine.
"""

from repro.core.taxonomy import (
    AdversaryModel,
    Importance,
    importance_from_score,
)
from repro.core.platforms import (
    PlatformProfile,
    STANDARD_PLATFORMS,
    reference_workload,
)
from repro.core.matrix import CellResult, EvaluationMatrix
from repro.core.figure1 import Figure1, generate_figure1
from repro.core.comparison import (
    architecture_feature_table,
    cache_defence_table,
    render_table,
    transient_applicability_table,
)
from repro.core.advisor import (
    Advice,
    Requirements,
    recommend_architecture,
)

__all__ = [
    "Advice",
    "AdversaryModel",
    "CellResult",
    "EvaluationMatrix",
    "Figure1",
    "Importance",
    "PlatformProfile",
    "Requirements",
    "STANDARD_PLATFORMS",
    "architecture_feature_table",
    "cache_defence_table",
    "generate_figure1",
    "importance_from_score",
    "recommend_architecture",
    "reference_workload",
    "render_table",
    "transient_applicability_table",
]
