"""Adversary taxonomy and importance grading (Section 2).

The paper adopts the classification of C-FLAT [1]: remote, local and
physical adversaries, with the physical class split into
microarchitectural side-channel analysis and classical physical attacks.
:class:`Importance` is the three-level shading of Figure 1.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.attacks.base import AttackCategory


class Importance(enum.IntEnum):
    """Figure 1's colour depth: the darker, the higher."""

    LOW = 0
    MEDIUM = 1
    HIGH = 2

    @property
    def shade(self) -> str:
        """ASCII rendering used by the table printers."""
        return {Importance.LOW: "░░░",
                Importance.MEDIUM: "▒▒▒",
                Importance.HIGH: "███"}[self]

    def __str__(self) -> str:
        return self.name.lower()


#: Thresholds mapping a [0, 1] aggregated score onto shading levels.
HIGH_THRESHOLD = 0.85
MEDIUM_THRESHOLD = 0.40


def importance_from_score(score: float) -> Importance:
    """Grade an aggregated attack/requirement score."""
    if score >= HIGH_THRESHOLD:
        return Importance.HIGH
    if score >= MEDIUM_THRESHOLD:
        return Importance.MEDIUM
    return Importance.LOW


@dataclass(frozen=True)
class AdversaryModel:
    """One row of Figure 1's adversary block."""

    category: AttackCategory
    description: str
    capabilities: tuple[str, ...]


ADVERSARY_MODELS = (
    AdversaryModel(
        AttackCategory.REMOTE,
        "remote adversary, capable of inserting malicious software",
        ("exploit memory-safety bugs", "deploy malicious apps",
         "drive victim services with chosen inputs")),
    AdversaryModel(
        AttackCategory.LOCAL,
        "local adversary, additionally controlling and eavesdropping on "
        "the communication",
        ("compromise the OS kernel", "attach malicious DMA peripherals",
         "man-in-the-middle device communication")),
    AdversaryModel(
        AttackCategory.MICROARCHITECTURAL,
        "software-only physical adversary exploiting microarchitectural "
        "side channels",
        ("co-reside on shared caches/TLBs/BTBs", "mistrain predictors",
         "exploit transient execution")),
    AdversaryModel(
        AttackCategory.PHYSICAL,
        "physical adversary with (non-)intrusive device access",
        ("measure power/EM side channels", "inject clock/voltage faults",
         "probe buses")),
)


def adversary_for(category: AttackCategory) -> AdversaryModel:
    """The taxonomy entry for one attack category."""
    for model in ADVERSARY_MODELS:
        if model.category is category:
            return model
    raise KeyError(category)
