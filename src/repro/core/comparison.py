"""Section 3/4 comparisons, regenerated from the models and live attacks.

The survey compares architectures in prose; here every comparison row is
materialised and, where it is a *security claim*, verified by running the
corresponding attack:

* :func:`architecture_feature_table` (TAB-S3) — feature rows from
  :meth:`features` with the DMA-protection claim verified live by a
  malicious DMA engine;
* :func:`cache_defence_table` (TAB-S41) — cache-side-channel verdicts per
  architecture from actually running Prime+Probe / Flush+Reload /
  Evict+Time against the standard AES enclave;
* :func:`transient_applicability_table` (TAB-S42) — Spectre/Meltdown/
  Foreshadow outcomes across the microarchitectural design space.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import (
    SGX,
    SMART,
    Sanctuary,
    Sanctum,
    Sancus,
    TrustLite,
    TrustZone,
    TyTAN,
)
from repro.arch.null import NullArchitecture
from repro.attacks.base import AttackerProcess
from repro.attacks.cache_sca import (
    EvictTimeAttack,
    FlushReloadAttack,
    PrimeProbeAttack,
    _CacheAttackConfig,
)
from repro.attacks.software import DMAAttack
from repro.attacks.transient_oracle import (
    ORACLE_ATTACKS,
    TRANSIENT_DESIGN_POINTS,
    design_soc_variant,
    scripted_transient_scores,
)
from repro.cpu.soc import (
    make_embedded_soc,
    make_mobile_soc,
    make_server_soc,
)
from repro.crypto.rng import XorShiftRNG
from repro.runner import derive_seed, parallel_map

#: (architecture class, SoC factory) in the paper's presentation order.
ARCH_HOSTS = (
    (SGX, make_server_soc),
    (Sanctum, make_server_soc),
    (TrustZone, make_mobile_soc),
    (Sanctuary, make_mobile_soc),
    (SMART, make_embedded_soc),
    (Sancus, make_embedded_soc),
    (TrustLite, make_embedded_soc),
    (TyTAN, make_embedded_soc),
)


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Plain ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt(cells) -> str:
        return " | ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep] + [fmt(row) for row in rows])


# -- TAB-S3 -------------------------------------------------------------------

_SECRET_WORD = 0x5EC2E7C0DE5EC2E7


def _verify_dma_claim(arch) -> str:
    """Aim a malicious DMA engine at the architecture's protected asset."""
    if isinstance(arch, (SMART, Sancus)):
        if isinstance(arch, Sancus):
            return "n/a (key never addressable)"
        # SMART's key ROM port is gate-protected even against DMA, but the
        # memory it attests — and the reports it writes — are plain RAM:
        # that is what "DMA attacks not in the threat model" costs.
        target = 0x8000_4000
        arch.soc.memory.write_bytes(target, b"attested app")
        result = DMAAttack(arch, target, expected=b"attested").run()
        return "leaked" if result.success else "blocked"
    try:
        handle = arch.create_enclave("dma-probe-target")
    except Exception:
        return "n/a"
    arch.enter_enclave(handle)
    try:
        arch.enclave_write(handle, 0, _SECRET_WORD)
    finally:
        arch.exit_enclave(handle)
    expected = _SECRET_WORD.to_bytes(8, "little")
    result = DMAAttack(arch, handle.paddr, expected=expected).run()
    if result.success:
        return "leaked plaintext"
    if result.details.get("ciphertext_only"):
        return "ciphertext only"
    return "blocked"


def architecture_feature_table() -> tuple[list[str], list[list[str]]]:
    """TAB-S3: one verified feature row per architecture."""
    headers = ["architecture", "platform", "software TCB", "enclaves",
               "mem. encryption", "cache defence", "DMA protection",
               "DMA verified", "attestation", "new HW"]
    rows: list[list[str]] = []
    for arch_cls, make_soc in ARCH_HOSTS:
        arch = arch_cls(make_soc())
        f = arch.features()
        if f.llc_partitioning:
            cache_defence = "LLC partitioning"
        elif f.cache_exclusion:
            cache_defence = "cache exclusion"
        elif f.flush_on_switch:
            cache_defence = "flush on switch"
        else:
            cache_defence = "none"
        rows.append([
            f.name, f.target_platform.value, f.software_tcb,
            f.enclave_count, "yes" if f.memory_encryption else "no",
            cache_defence, f.dma_protection, _verify_dma_claim(arch),
            f.attestation, "yes" if f.requires_new_hardware else "no"])
    return headers, rows


# -- TAB-S41 --------------------------------------------------------------------

@dataclass
class CacheDefenceRow:
    """Per-architecture cache-side-channel verdicts."""

    architecture: str
    defence: str
    prime_probe: float
    flush_reload: float
    evict_time: float | None = None

    @property
    def protected(self) -> bool:
        scores = [self.prime_probe, self.flush_reload]
        if self.evict_time is not None:
            scores.append(self.evict_time)
        return all(s < 0.5 for s in scores)


#: TAB-S41 hosts; module-level so worker processes can rebuild any row
#: by index (classes and factories pickle by reference).
_CACHE_HOSTS = (
    (NullArchitecture, make_server_soc, "none (baseline)"),
    (SGX, make_server_soc, "none (no LLC defence)"),
    (Sanctum, make_server_soc, "LLC page colouring"),
    (TrustZone, make_mobile_soc, "none (no LLC defence)"),
    (Sanctuary, make_mobile_soc, "LLC exclusion + L1 flush"),
)


def _cache_defence_row(task: tuple[int, bool, bool, int]) -> CacheDefenceRow:
    """One TAB-S41 row; pickling-safe entry point for worker processes.

    Each attack draws from its own digest-derived stream, so rows are
    independent of each other and of attack ordering within the row.
    """
    index, quick, include_evict_time, seed = task
    arch_cls, make_soc, defence = _CACHE_HOSTS[index]
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    config = _CacheAttackConfig(
        samples_per_value=8 if quick else 14,
        plaintext_values=8,
        target_bytes=(0, 5) if quick else (0, 5, 10, 15))
    arch = arch_cls(make_soc())
    victim = arch.deploy_aes_victim(key, core_id=0)

    def rng_for(attack: str) -> XorShiftRNG:
        return XorShiftRNG(derive_seed(seed, arch.NAME, attack))

    pp = PrimeProbeAttack(victim, AttackerProcess(arch, core_id=1),
                          rng_for("prime+probe"), config).run()
    fr = FlushReloadAttack(victim, AttackerProcess(arch, core_id=1),
                           rng_for("flush+reload"), config).run()
    et = None
    if include_evict_time:
        et = EvictTimeAttack(victim, AttackerProcess(arch, core_id=1),
                             rng_for("evict+time"), config).run().score
    return CacheDefenceRow(
        architecture=arch.NAME, defence=defence,
        prime_probe=pp.score, flush_reload=fr.score, evict_time=et)


def cache_defence_table(quick: bool = True, include_evict_time: bool = False,
                        seed: int = 0x41,
                        jobs: int = 1) -> list[CacheDefenceRow]:
    """TAB-S41: run the cache attacks against each enclave-capable arch.

    ``jobs > 1`` fans the architecture rows out over worker processes
    (rows are mutually independent by construction).
    """
    tasks = [(index, quick, include_evict_time, seed)
             for index in range(len(_CACHE_HOSTS))]
    rows, _ = parallel_map(_cache_defence_row, tasks, jobs)
    return rows


def render_cache_defence_table(rows: list[CacheDefenceRow]) -> str:
    headers = ["architecture", "defence", "prime+probe", "flush+reload",
               "evict+time", "protected"]
    table = []
    for row in rows:
        et = "-" if row.evict_time is None else f"{row.evict_time:.2f}"
        table.append([row.architecture, row.defence,
                      f"{row.prime_probe:.2f}", f"{row.flush_reload:.2f}",
                      et, "yes" if row.protected else "NO"])
    return render_table(headers, table)


# -- TAB-S42 -----------------------------------------------------------------------

# The design points and scripted-attack runs live in
# repro.attacks.transient_oracle so the Spectre scanner can sweep the
# same grid and the differential suite can compare against the same
# measurements; _soc_variant stays as the historical alias.
_soc_variant = design_soc_variant


def transient_applicability_table(secret: bytes = b"TRNS",
                                  seed: int = 0x42
                                  ) -> tuple[list[str], list[list[str]]]:
    """TAB-S42: transient attacks across the microarchitectural design space.

    Rows are design points; a cell shows the attack's key-recovery score.
    The paper's qualitative claims appear as the pattern: everything works
    on the commodity speculative design, each mitigation kills exactly its
    attack, and the in-order (embedded) design is immune across the board.
    """
    headers = ["design point", *ORACLE_ATTACKS]
    rows: list[list[str]] = []
    for label, _ in TRANSIENT_DESIGN_POINTS:
        # Independent digest-derived stream per (design point, attack):
        # adding a design point or attack cannot shift any other cell.
        scores = scripted_transient_scores(label, secret=secret, seed=seed)
        rows.append([label, *(f"{scores[attack]:.2f}"
                              for attack in ORACLE_ATTACKS)])
    return headers, rows
