"""Architecture selection (the paper's closing advice, Section 6).

"In general, it is important to select the optimal security architecture
given the energy and performance budget of the application."  The advisor
scores every architecture's feature row against a requirements profile
and explains each recommendation — including the honest caveat the paper
makes: no surveyed architecture stops power/EM analysis or fault
injection by itself; those need algorithmic countermeasures on top
(masking, hiding, redundant computation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.base import ArchFeatures
from repro.attacks.base import AttackCategory
from repro.common import PlatformClass
from repro.core.comparison import ARCH_HOSTS


@dataclass(frozen=True)
class Requirements:
    """What the application needs from its trust anchor."""

    platform: PlatformClass
    threats: frozenset[AttackCategory] = frozenset(
        {AttackCategory.REMOTE, AttackCategory.LOCAL})
    need_multiple_enclaves: bool = False
    need_attestation: bool = False
    need_peripheral_channel: bool = False
    need_realtime: bool = False
    allow_new_hardware: bool = True


@dataclass
class Advice:
    """One ranked recommendation."""

    architecture: str
    score: float
    satisfied: list[str] = field(default_factory=list)
    gaps: list[str] = field(default_factory=list)
    caveats: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        parts = [f"{self.architecture} (score {self.score:.2f})"]
        if self.gaps:
            parts.append("gaps: " + "; ".join(self.gaps))
        return " — ".join(parts)


_TCB_PREFERENCE = {
    # Smaller software TCB scores higher (the paper's recurring theme).
    "none": 1.0,
    "monitor": 0.7,
    "loader": 0.6,
    "world": 0.2,
    "os": 0.0,
}


def _tcb_score(software_tcb: str) -> float:
    text = software_tcb.lower()
    if "none" in text:
        return _TCB_PREFERENCE["none"]
    if "entire" in text or "os" in text.split():
        return _TCB_PREFERENCE["os"]
    if "world" in text:
        return _TCB_PREFERENCE["world"]
    if "monitor" in text:
        return _TCB_PREFERENCE["monitor"]
    if "loader" in text:
        return _TCB_PREFERENCE["loader"]
    return 0.4


def _score(features: ArchFeatures, reqs: Requirements) -> Advice | None:
    if features.target_platform is not reqs.platform:
        return None
    if not reqs.allow_new_hardware and features.requires_new_hardware:
        return None

    advice = Advice(architecture=features.name, score=0.0)
    total = 0.0
    weight = 0.0

    def criterion(name: str, satisfied: bool, w: float = 1.0) -> None:
        nonlocal total, weight
        weight += w
        if satisfied:
            total += w
            advice.satisfied.append(name)
        else:
            advice.gaps.append(name)

    if AttackCategory.REMOTE in reqs.threats:
        criterion("isolates code from remote compromise",
                  features.code_isolation, 2.0)
    if AttackCategory.LOCAL in reqs.threats:
        criterion("withstands a compromised kernel",
                  features.code_isolation, 2.0)
        criterion("blocks DMA attacks",
                  features.dma_protection != "none", 1.5)
    if AttackCategory.MICROARCHITECTURAL in reqs.threats:
        criterion("defends the shared cache side channel",
                  features.llc_partitioning or features.cache_exclusion,
                  2.0)
        criterion("flushes core-private state on switches",
                  features.flush_on_switch, 1.0)
    if AttackCategory.PHYSICAL in reqs.threats:
        criterion("hides bus contents from physical probes",
                  features.memory_encryption, 1.0)
        advice.caveats.append(
            "no surveyed architecture stops power/EM SCA or fault "
            "injection alone; pair with masking/hiding and redundant "
            "computation (Section 5)")

    if reqs.need_multiple_enclaves:
        criterion("supports multiple enclaves",
                  features.enclave_count.startswith("N"), 1.5)
    if reqs.need_attestation:
        criterion("provides attestation",
                  features.attestation not in ("none",), 1.5)
    if reqs.need_peripheral_channel:
        criterion("secure channels to peripherals",
                  features.peripheral_secure_channel, 1.0)
    if reqs.need_realtime:
        criterion("real-time capable", features.realtime_capable, 1.5)

    # Smaller software TCB as a tiebreaker.
    tcb = _tcb_score(features.software_tcb)
    total += tcb
    weight += 1.0

    advice.score = total / weight if weight else 0.0
    return advice


_FEATURE_CACHE: list[ArchFeatures] | None = None


def _all_features() -> list[ArchFeatures]:
    """Feature rows for every architecture (built once, on real SoCs)."""
    global _FEATURE_CACHE
    if _FEATURE_CACHE is None:
        _FEATURE_CACHE = [arch_cls(make_soc()).features()
                          for arch_cls, make_soc in ARCH_HOSTS]
    return _FEATURE_CACHE


def recommend_architecture(reqs: Requirements,
                           features: list[ArchFeatures] | None = None
                           ) -> list[Advice]:
    """Ranked recommendations for a requirements profile."""
    candidates = features if features is not None else _all_features()
    advice = [a for f in candidates if (a := _score(f, reqs)) is not None]
    advice.sort(key=lambda a: a.score, reverse=True)
    return advice
