"""The evaluation matrix: attacks × platforms, measured.

For each platform profile the engine builds the platform's SoC with **no
TEE installed** (Figure 1 characterises platform classes, not specific
architectures) and runs the representative attack of each adversary
category against undefended software.  Scores are aggregated per category
and weighted by the platform's exposure prior; the weighted score is what
Figure 1 shades.

Execution is delegated to :mod:`repro.runner`: every ``(platform,
category)`` cell is an independent :class:`~repro.runner.CellSpec` whose
RNG seed is ``sha256(f"{seed}:{platform}:{category}")`` — never Python's
per-process-salted ``hash()`` — so two fresh interpreters produce
byte-identical per-cell scores, cells can be fanned out over worker
processes, and results can be memoised on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.null import NullArchitecture
from repro.attacks.base import AttackCategory, AttackResult
from repro.attacks.suites import (
    MatrixKnobs,
    PRIOR_ATTRS,
    SUITES,
)
from repro.common import PlatformClass, accepts_keyword
from repro.core.platforms import (
    PlatformProfile,
    STANDARD_PLATFORMS,
    WorkloadResult,
    reference_workload,
)
from repro.core.taxonomy import Importance, importance_from_score
from repro.cpu.soc import soc_factory_for
from repro.crypto.rng import XorShiftRNG
from repro.runner import (
    WORKLOAD_CATEGORY,
    CellSpec,
    ExperimentRunner,
    derive_cell_seed,
)
from repro.runner.serialize import attack_result_from_dict, workload_from_dict

#: Backwards-compatible alias; the knobs now live with the suites.
_QuickKnobs = MatrixKnobs


@dataclass
class CellResult:
    """One (platform, adversary-category) cell.

    ``evaluated`` is ``False`` when the cell produced no trustworthy
    measurement (its every execution attempt failed under the tolerant
    runner policy); such a cell scores 0.0 but must be *rendered* as
    not-evaluated, never presented as a measured low.
    """

    platform: PlatformClass
    category: AttackCategory
    attacks: list[AttackResult] = field(default_factory=list)
    prior: float = 1.0
    evaluated: bool = True

    @property
    def raw_score(self) -> float:
        if not self.attacks:
            return 0.0
        return sum(a.score for a in self.attacks) / len(self.attacks)

    @property
    def score(self) -> float:
        return min(self.raw_score * self.prior, 1.0)

    @property
    def importance(self) -> Importance:
        return importance_from_score(self.score)


class EvaluationMatrix:
    """Runs the whole grid and holds the results.

    ``runner`` controls execution: ``None`` means a private serial,
    uncached :class:`ExperimentRunner`; pass one configured with
    ``jobs``/``cache`` to parallelise or memoise.  After
    :meth:`evaluate`, the runner's ``stats`` describe the run.

    ``ensemble`` routes each workload cell's kernel calibration sweep
    through the struct-of-arrays execution engine
    (:mod:`repro.cpu.ensemble`) instead of the scalar per-instance
    loop; ``batch`` routes the attack cells' hot attacks through the
    batched attack kernels (:mod:`repro.attacks.batch`).  Payloads are
    bit-identical either way (the differential suites prove it), so
    the knobs trade nothing but wall time; they only apply when the
    matrix builds its own runner — an explicitly passed ``runner``
    brings its own ``ensemble``/``batch`` settings.
    """

    def __init__(self, platforms: tuple[PlatformProfile, ...]
                 = STANDARD_PLATFORMS, quick: bool = True,
                 seed: int = 0x2019,
                 runner: ExperimentRunner | None = None,
                 ensemble: bool = False,
                 batch: bool = False) -> None:
        self.platforms = platforms
        self.knobs = MatrixKnobs.quick() if quick else MatrixKnobs.full()
        self.seed = seed
        self.runner = runner
        self.ensemble = bool(ensemble)
        self.batch = bool(batch)
        self.cells: dict[tuple[PlatformClass, AttackCategory], CellResult] = {}
        self.workloads: dict[PlatformClass, WorkloadResult] = {}

    # -- per-cell inputs -------------------------------------------------------

    def cell_seed(self, platform: PlatformClass,
                  category: AttackCategory) -> int:
        """The cell's RNG seed: a pure function of its coordinates."""
        return derive_cell_seed(self.seed, platform.value, category.value)

    def _prior(self, profile: PlatformProfile,
               category: AttackCategory) -> float:
        attr = PRIOR_ATTRS.get(category)
        return getattr(profile, attr) if attr else 1.0

    def _spec(self, profile: PlatformProfile, category: str) -> CellSpec:
        return CellSpec(seed=self.seed, platform=profile.platform.value,
                        category=category, knobs=self.knobs.as_key())

    def _runnable_in_worker(self, profile: PlatformProfile) -> bool:
        """Workers rebuild SoCs from the registry; a profile with a
        custom factory must run in-process instead."""
        try:
            return soc_factory_for(profile.platform) is profile.make_soc
        except KeyError:
            return False

    # -- the grid --------------------------------------------------------------

    def evaluate(self, force: bool = False
                 ) -> dict[tuple[PlatformClass, AttackCategory], CellResult]:
        """Run every cell; idempotent unless ``force`` is set."""
        if self.cells and self.workloads and not force:
            return self.cells

        runner = self.runner or ExperimentRunner(ensemble=self.ensemble,
                                                 batch=self.batch)
        remote = [p for p in self.platforms if self._runnable_in_worker(p)]
        local = [p for p in self.platforms if p not in remote]

        specs: list[CellSpec] = []
        for profile in remote:
            specs.extend(self._spec(profile, category.value)
                         for category in SUITES)
            specs.append(self._spec(profile, WORKLOAD_CATEGORY))
        payloads = runner.run(specs) if specs else {}

        for profile in remote:
            for category in SUITES:
                payload = payloads.get(self._spec(profile, category.value))
                if payload is None:
                    # Every attempt failed: an explicit not-evaluated
                    # cell, not a crash and not a fake zero measurement.
                    self.cells[(profile.platform, category)] = CellResult(
                        profile.platform, category, [],
                        self._prior(profile, category), evaluated=False)
                    continue
                attacks = [attack_result_from_dict(d)
                           for d in payload["attacks"]]
                self.cells[(profile.platform, category)] = CellResult(
                    profile.platform, category, attacks,
                    self._prior(profile, category))
            workload = payloads.get(self._spec(profile, WORKLOAD_CATEGORY))
            if workload is not None:
                self.workloads[profile.platform] = \
                    workload_from_dict(workload["workload"])

        for profile in local:
            self._evaluate_locally(profile)
        return self.cells

    def _evaluate_locally(self, profile: PlatformProfile) -> None:
        """In-process path for profiles with unregistered SoC factories
        (same seed derivation, no cache/fan-out)."""
        for category, suite in SUITES.items():
            arch = NullArchitecture(profile.make_soc(), profile.platform)
            rng = XorShiftRNG(self.cell_seed(profile.platform, category))
            if self.batch and accepts_keyword(suite, "batch"):
                results = suite(arch, rng, self.knobs, batch=True)
            else:
                results = suite(arch, rng, self.knobs)
            self.cells[(profile.platform, category)] = CellResult(
                profile.platform, category, results,
                self._prior(profile, category))
        self.workloads[profile.platform] = \
            reference_workload(profile.make_soc())

    # -- requirement rows ----------------------------------------------------------

    def not_evaluated(self) -> list[tuple[PlatformClass, AttackCategory]]:
        """Cells without a trustworthy measurement (every attempt failed)."""
        return sorted(
            (coords for coords, cell in self.cells.items()
             if not cell.evaluated),
            key=lambda coords: (coords[0].value, coords[1].value))

    def performance_scores(self) -> dict[PlatformClass, float]:
        """Relative throughput (1.0 = fastest platform).

        Evaluates the matrix lazily on first use.  Platforms whose
        reference-workload cell failed are absent from the result.
        """
        self.evaluate()
        if not self.workloads:
            return {}
        best = max(w.throughput_ops_per_s for w in self.workloads.values())
        return {p: w.throughput_ops_per_s / best
                for p, w in self.workloads.items()}

    def energy_constraint_scores(self) -> dict[PlatformClass, float]:
        """How tight each platform's energy budget is (1.0 = tightest).

        Energy budgets span orders of magnitude (mains-powered servers to
        coin-cell sensors), so the constraint level is positioned on a
        *logarithmic* scale between the loosest and tightest measured
        budget.  Evaluates the matrix lazily on first use.
        """
        import math
        self.evaluate()
        if not self.workloads:
            return {}
        energies = {p: w.energy_per_op_pj for p, w in self.workloads.items()}
        loosest = max(energies.values())
        tightest = min(energies.values())
        if loosest == tightest:
            return {p: 1.0 for p in energies}
        span = math.log(loosest / tightest)
        return {p: math.log(loosest / e) / span for p, e in energies.items()}
