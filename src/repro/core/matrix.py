"""The evaluation matrix: attacks × platforms, measured.

For each platform profile the engine builds the platform's SoC with **no
TEE installed** (Figure 1 characterises platform classes, not specific
architectures) and runs the representative attack of each adversary
category against undefended software.  Scores are aggregated per category
and weighted by the platform's exposure prior; the weighted score is what
Figure 1 shades.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.null import NullArchitecture
from repro.attacks.base import AttackCategory, AttackResult, AttackerProcess
from repro.attacks.cache_sca import (
    FlushReloadAttack,
    SharedAESService,
    _CacheAttackConfig,
)
from repro.attacks.fault_attacks import (
    BellcoreRSAAttack,
    make_glitchable_aes_victim,
    AESLastRoundDFA,
)
from repro.attacks.meltdown import MeltdownAttack
from repro.attacks.software import (
    CodeInjectionAttack,
    DMAAttack,
    KernelMemoryProbeAttack,
)
from repro.attacks.spectre import SpectreV1Attack
from repro.attacks.timing import KocherTimingAttack
from repro.common import PlatformClass
from repro.core.platforms import (
    PlatformProfile,
    STANDARD_PLATFORMS,
    WorkloadResult,
    reference_workload,
)
from repro.core.taxonomy import Importance, importance_from_score
from repro.crypto.aes import AES128
from repro.crypto.rng import XorShiftRNG
from repro.crypto.rsa import RSA, generate_rsa_key
from repro.power.instrument import capture_aes_traces
from repro.power.leakage import HammingWeightModel
from repro.attacks.dpa import cpa_recover_key, key_recovery_rate


@dataclass
class CellResult:
    """One (platform, adversary-category) cell."""

    platform: PlatformClass
    category: AttackCategory
    attacks: list[AttackResult] = field(default_factory=list)
    prior: float = 1.0

    @property
    def raw_score(self) -> float:
        if not self.attacks:
            return 0.0
        return sum(a.score for a in self.attacks) / len(self.attacks)

    @property
    def score(self) -> float:
        return min(self.raw_score * self.prior, 1.0)

    @property
    def importance(self) -> Importance:
        return importance_from_score(self.score)


@dataclass
class _QuickKnobs:
    """Attack sizing; quick mode keeps the matrix fast for tests."""

    secret_len: int = 4
    traces: int = 300
    fr_samples: int = 8
    fr_values: int = 8
    rsa_bits: int = 64
    timing_samples: int = 600
    timing_bits: int = 8


class EvaluationMatrix:
    """Runs the whole grid and holds the results."""

    def __init__(self, platforms: tuple[PlatformProfile, ...]
                 = STANDARD_PLATFORMS, quick: bool = True,
                 seed: int = 0x2019) -> None:
        self.platforms = platforms
        self.knobs = _QuickKnobs() if quick else _QuickKnobs(
            secret_len=8, traces=1000, fr_samples=12, fr_values=8,
            rsa_bits=96, timing_samples=1200, timing_bits=16)
        self.seed = seed
        self.cells: dict[tuple[PlatformClass, AttackCategory], CellResult] = {}
        self.workloads: dict[PlatformClass, WorkloadResult] = {}

    # -- category suites -----------------------------------------------------

    def _remote_suite(self, arch: NullArchitecture,
                      rng: XorShiftRNG) -> list[AttackResult]:
        return [CodeInjectionAttack(arch).run()]

    def _local_suite(self, arch: NullArchitecture,
                     rng: XorShiftRNG) -> list[AttackResult]:
        dram = arch.soc.regions.get("dram")
        secret_paddr = dram.base + dram.size // 2 - 0x8000
        secret = rng.bytes(8)
        arch.soc.memory.write_bytes(secret_paddr, secret)
        probe = KernelMemoryProbeAttack(arch, secret_paddr=secret_paddr,
                                        secret_value=secret).run()
        dma = DMAAttack(arch, secret_paddr, expected=secret).run()
        return [probe, dma]

    def _microarch_suite(self, arch: NullArchitecture,
                         rng: XorShiftRNG) -> list[AttackResult]:
        knobs = self.knobs
        soc = arch.soc
        secret = bytes(0x41 + rng.next_below(26)
                       for _ in range(knobs.secret_len))
        results = [SpectreV1Attack(soc, secret, rng=rng).run(),
                   MeltdownAttack(soc, secret).run()]
        service = SharedAESService(soc, rng.bytes(16), core_id=0)
        attacker_core = min(1, len(soc.cores) - 1)
        attacker = AttackerProcess(arch, core_id=attacker_core)
        config = _CacheAttackConfig(
            samples_per_value=knobs.fr_samples,
            plaintext_values=knobs.fr_values,
            target_bytes=(0, 5))
        results.append(FlushReloadAttack(service, attacker, rng,
                                         config).run())
        return results

    def _physical_suite(self, arch: NullArchitecture,
                        rng: XorShiftRNG) -> list[AttackResult]:
        knobs = self.knobs
        # Power: CPA on an unprotected AES running on the device.
        aes_key = rng.bytes(16)
        traces = capture_aes_traces(
            lambda leak: AES128(aes_key, leak_hook=leak), knobs.traces,
            HammingWeightModel(noise_std=1.0, rng=XorShiftRNG(rng.next_u64())),
            rng=XorShiftRNG(rng.next_u64()))
        rate = key_recovery_rate(cpa_recover_key(traces), aes_key)
        cpa_result = AttackResult(
            name="cpa-power", category=AttackCategory.PHYSICAL,
            success=rate >= 0.9, score=rate,
            details={"traces": knobs.traces})
        # Faults: Bellcore on an unprotected CRT signer.
        rsa_key = generate_rsa_key(knobs.rsa_bits,
                                   XorShiftRNG(rng.next_u64()))
        bellcore = BellcoreRSAAttack(RSA(rsa_key),
                                     rng=XorShiftRNG(rng.next_u64())).run()
        # Timing: Kocher against square-and-multiply.
        timing = KocherTimingAttack(
            RSA(rsa_key), samples=knobs.timing_samples,
            max_bits=knobs.timing_bits,
            rng=XorShiftRNG(rng.next_u64())).run()
        return [cpa_result, bellcore, timing]

    # -- the grid --------------------------------------------------------------

    def evaluate(self) -> dict[tuple[PlatformClass, AttackCategory],
                               CellResult]:
        """Run every cell; results cached on the instance."""
        suites = {
            AttackCategory.REMOTE: (self._remote_suite, None),
            AttackCategory.LOCAL: (self._local_suite, None),
            AttackCategory.MICROARCHITECTURAL:
                (self._microarch_suite, "co_residency_prior"),
            AttackCategory.PHYSICAL:
                (self._physical_suite, "physical_access_prior"),
        }
        for profile in self.platforms:
            rng = XorShiftRNG(self.seed ^ hash(profile.platform.value))
            for category, (suite, prior_name) in suites.items():
                soc = profile.make_soc()
                arch = NullArchitecture(soc, profile.platform)
                prior = getattr(profile, prior_name) if prior_name else 1.0
                cell = CellResult(profile.platform, category,
                                  suite(arch, rng), prior)
                self.cells[(profile.platform, category)] = cell
            self.workloads[profile.platform] = reference_workload(
                profile.make_soc())
        return self.cells

    # -- requirement rows ----------------------------------------------------------

    def performance_scores(self) -> dict[PlatformClass, float]:
        """Relative throughput (1.0 = fastest platform)."""
        if not self.workloads:
            raise RuntimeError("call evaluate() first")
        best = max(w.throughput_ops_per_s for w in self.workloads.values())
        return {p: w.throughput_ops_per_s / best
                for p, w in self.workloads.items()}

    def energy_constraint_scores(self) -> dict[PlatformClass, float]:
        """How tight each platform's energy budget is (1.0 = tightest).

        Energy budgets span orders of magnitude (mains-powered servers to
        coin-cell sensors), so the constraint level is positioned on a
        *logarithmic* scale between the loosest and tightest measured
        budget.
        """
        import math
        if not self.workloads:
            raise RuntimeError("call evaluate() first")
        energies = {p: w.energy_per_op_pj for p, w in self.workloads.items()}
        loosest = max(energies.values())
        tightest = min(energies.values())
        if loosest == tightest:
            return {p: 1.0 for p in energies}
        span = math.log(loosest / tightest)
        return {p: math.log(loosest / e) / span for p, e in energies.items()}
