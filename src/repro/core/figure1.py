"""Figure 1, regenerated from measurement.

The paper's only figure: a grid of adversary models and non-functional
requirements against the three platform classes, "the darker the color,
the higher the importance".  :func:`generate_figure1` derives every cell
from the evaluation matrix — attack outcomes weighted by exposure priors
for the adversary rows, measured throughput/energy for the requirement
rows — and :meth:`Figure1.render` prints the shaded grid.

:data:`PAPER_EXPECTED` records the shading as published, so the bench can
report cell-level agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.base import AttackCategory
from repro.common import PlatformClass
from repro.core.matrix import EvaluationMatrix
from repro.core.taxonomy import Importance, importance_from_score
from repro.runner import ExperimentRunner

ROW_ORDER = (
    "remote attacks",
    "local attacks",
    "classical physical attacks",
    "microarchitectural attacks",
    "performance",
    "energy budget",
)

COLUMN_ORDER = (
    PlatformClass.SERVER_DESKTOP,
    PlatformClass.MOBILE,
    PlatformClass.EMBEDDED,
)

_CATEGORY_ROWS = {
    "remote attacks": AttackCategory.REMOTE,
    "local attacks": AttackCategory.LOCAL,
    "classical physical attacks": AttackCategory.PHYSICAL,
    "microarchitectural attacks": AttackCategory.MICROARCHITECTURAL,
}

#: The shading as printed in the paper (our reading of Figure 1).
PAPER_EXPECTED: dict[tuple[str, PlatformClass], Importance] = {
    ("remote attacks", PlatformClass.SERVER_DESKTOP): Importance.HIGH,
    ("remote attacks", PlatformClass.MOBILE): Importance.HIGH,
    ("remote attacks", PlatformClass.EMBEDDED): Importance.HIGH,
    ("local attacks", PlatformClass.SERVER_DESKTOP): Importance.HIGH,
    ("local attacks", PlatformClass.MOBILE): Importance.HIGH,
    ("local attacks", PlatformClass.EMBEDDED): Importance.HIGH,
    ("classical physical attacks",
     PlatformClass.SERVER_DESKTOP): Importance.LOW,
    ("classical physical attacks", PlatformClass.MOBILE): Importance.MEDIUM,
    ("classical physical attacks", PlatformClass.EMBEDDED): Importance.HIGH,
    ("microarchitectural attacks",
     PlatformClass.SERVER_DESKTOP): Importance.HIGH,
    ("microarchitectural attacks", PlatformClass.MOBILE): Importance.MEDIUM,
    ("microarchitectural attacks", PlatformClass.EMBEDDED): Importance.LOW,
    ("performance", PlatformClass.SERVER_DESKTOP): Importance.HIGH,
    ("performance", PlatformClass.MOBILE): Importance.MEDIUM,
    ("performance", PlatformClass.EMBEDDED): Importance.LOW,
    ("energy budget", PlatformClass.SERVER_DESKTOP): Importance.LOW,
    ("energy budget", PlatformClass.MOBILE): Importance.MEDIUM,
    ("energy budget", PlatformClass.EMBEDDED): Importance.HIGH,
}


@dataclass
class Figure1:
    """The regenerated figure.

    A grid value of ``None`` marks a cell that was explicitly *not
    evaluated* — its every execution attempt failed under the tolerant
    runner policy — as opposed to a measured low-importance cell.
    """

    grid: dict[tuple[str, PlatformClass], Importance | None]
    scores: dict[tuple[str, PlatformClass], float | None]
    details: dict = field(default_factory=dict)

    def cell(self, row: str, platform: PlatformClass) -> Importance | None:
        return self.grid[(row, platform)]

    def not_evaluated(self) -> list[tuple[str, PlatformClass]]:
        """The cells rendered as ``n/e`` (no trustworthy measurement)."""
        return [key for key in self.grid if self.grid[key] is None]

    def agreement_with_paper(self) -> float:
        """Fraction of cells matching the published shading."""
        matches = sum(1 for key, expected in PAPER_EXPECTED.items()
                      if self.grid.get(key) == expected)
        return matches / len(PAPER_EXPECTED)

    def mismatches(self) -> list[tuple[str, PlatformClass,
                                       Importance, Importance]]:
        """Cells where measurement disagrees with the published figure."""
        return [(row, platform, self.grid[(row, platform)], expected)
                for (row, platform), expected in PAPER_EXPECTED.items()
                if self.grid.get((row, platform)) != expected]

    def render(self) -> str:
        """ASCII rendering in the figure's layout."""
        col_width = 18
        header = " " * 30 + "".join(
            platform.value.center(col_width) for platform in COLUMN_ORDER)
        lines = [header, "-" * len(header)]
        for row in ROW_ORDER:
            cells = []
            for platform in COLUMN_ORDER:
                level = self.grid[(row, platform)]
                score = self.scores[(row, platform)]
                if level is None or score is None:
                    cells.append("···  n/e".center(col_width))
                else:
                    cells.append(
                        f"{level.shade} {score:4.2f}".center(col_width))
            lines.append(f"{row:<30}" + "".join(cells))
        lines.append("-" * len(header))
        lines.append("shading: ███ high   ▒▒▒ medium   ░░░ low "
                     "(score in cell)   ··· not evaluated")
        return "\n".join(lines)


def generate_figure1(matrix: EvaluationMatrix | None = None,
                     quick: bool = True,
                     runner: "ExperimentRunner | None" = None) -> Figure1:
    """Run (or reuse) the evaluation matrix and shade the figure.

    ``runner`` (forwarded to :class:`EvaluationMatrix` when ``matrix`` is
    not supplied) selects parallel and/or cached execution; its ``stats``
    afterwards describe the run.
    """
    if matrix is None:
        matrix = EvaluationMatrix(quick=quick, runner=runner)
    matrix.evaluate()

    grid: dict[tuple[str, PlatformClass], Importance] = {}
    scores: dict[tuple[str, PlatformClass], float] = {}
    details: dict = {}

    for row, category in _CATEGORY_ROWS.items():
        for platform in COLUMN_ORDER:
            cell = matrix.cells.get((platform, category))
            if cell is None or not cell.evaluated:
                grid[(row, platform)] = None
                scores[(row, platform)] = None
                details[(row, platform)] = []
                continue
            grid[(row, platform)] = cell.importance
            scores[(row, platform)] = cell.score
            details[(row, platform)] = [
                (a.name, a.success, round(a.score, 3))
                for a in cell.attacks]

    for platform, score in matrix.performance_scores().items():
        grid[("performance", platform)] = importance_from_score(score)
        scores[("performance", platform)] = score
    for platform, score in matrix.energy_constraint_scores().items():
        grid[("energy budget", platform)] = importance_from_score(score)
        scores[("energy budget", platform)] = score

    # A platform whose reference workload failed has no requirement-row
    # measurements: mark those cells not-evaluated rather than KeyError.
    for row in ROW_ORDER:
        for platform in COLUMN_ORDER:
            grid.setdefault((row, platform), None)
            scores.setdefault((row, platform), None)

    return Figure1(grid=grid, scores=scores, details=details)
