"""Kernel calibration sweeps: the matrix's ensemble-execution workload.

Every workload cell of the evaluation matrix runs a *calibration sweep*:
N single-core instances of the platform's in-order calibration
configuration execute the same cache-walking kernel over seed-varied
memory images, and the cell records their per-instance cycle, energy and
cache profiles.  This is the paper's "how does the platform behave under
load" measurement scaled to many seeds — and it is embarrassingly
data-parallel, which makes it the natural consumer of the ensemble
execution engine (:mod:`repro.cpu.ensemble`): ``ensemble=True`` advances
all N instances in lockstep numpy arrays, ``ensemble=False`` runs the
retained scalar loop, and the two must produce **identical** summaries
(the checksum covers registers, cycles, instret, exact energy bits,
cache counters, bus counters and memory footprints per instance).

The calibration configuration preserves the platform's *timing and
energy identity* — its cache latency staircase, associativities, clock
and per-instruction/per-access energy costs — while scaling capacities
to the kernel's footprint and dropping speculation/MMU (which the sweep
does not exercise; the attack suites cover those).  The scalar and
ensemble paths both build the same SoCs, so the knob is observation-
equivalent by construction and proven so by the differential suite.
"""

from __future__ import annotations

import hashlib

from repro.cache.hierarchy import HierarchyConfig
from repro.common import PlatformClass
from repro.cpu.ensemble import CoreEnsemble
from repro.cpu.soc import SoC, SoCConfig
from repro.isa import assemble
from repro.isa.program import Program

#: Window geometry shared by every sweep instance: the kernel walks a
#: stride-24 cursor over a 4 KiB ring (the power-of-two mask) inside the
#: DRAM window; the window extends past the ring far enough to cover the
#: +8 store offset (max touched byte: mask-aligned cursor + 8 + 7).
WINDOW_OFFSET = 0x10000
WINDOW_SIZE = 4608
_CURSOR_MASK = 4095
#: Seed-varied bytes written at the window base per instance.
_SEED_BYTES = 256

#: Instructions per kernel loop iteration (2 of them memory ops).
_LOOP_INSTRS = 13
_PROLOGUE_INSTRS = 8


def sweep_soc_config(platform: PlatformClass) -> SoCConfig:
    """The platform's in-order, single-core calibration configuration.

    Latencies, associativity, clock and energy costs are the platform's
    own (see the factories in :mod:`repro.cpu.soc`); set counts are
    scaled to the sweep kernel's 4 KiB working set so the cache contention
    profile is meaningful rather than all-hit.
    """
    if platform is PlatformClass.EMBEDDED:
        return SoCConfig(
            name="embedded-sweep", platform=platform, num_cores=1,
            speculative=False,
            hierarchy=HierarchyConfig(num_cores=1, l1_sets=4, l1_ways=1,
                                      l2_sets=8, l2_ways=1,
                                      l1_latency=1, l2_latency=2,
                                      dram_latency=10),
            has_mmu=False, dram_size=1 << 24, freq_mhz=50.0,
            energy_per_instr_pj=1.0, energy_per_mem_pj=2.0,
            dvfs_software_controllable=False)
    if platform is PlatformClass.MOBILE:
        return SoCConfig(
            name="mobile-sweep", platform=platform, num_cores=1,
            speculative=False,
            hierarchy=HierarchyConfig(num_cores=1, l1_sets=16, l1_ways=4,
                                      l2_sets=32, l2_ways=8),
            has_mmu=False, freq_mhz=2000.0,
            energy_per_instr_pj=8.0, energy_per_mem_pj=20.0)
    if platform is PlatformClass.SERVER_DESKTOP:
        return SoCConfig(
            name="server-sweep", platform=platform, num_cores=1,
            speculative=False,
            hierarchy=HierarchyConfig(num_cores=1, l1_sets=16, l1_ways=8,
                                      l2_sets=32, l2_ways=16),
            has_mmu=False, freq_mhz=3000.0,
            energy_per_instr_pj=40.0, energy_per_mem_pj=100.0)
    raise ValueError(f"no sweep configuration for {platform!r}")


_kernel_cache: dict[tuple[int, int], Program] = {}


def sweep_kernel(window_base: int, iters: int) -> Program:
    """The calibration kernel: a convergent load/compute/store loop.

    Every instance follows the identical control-flow path (the loop
    trip count is baked in), so an ensemble executes each step as a
    single opcode group; the *data* — and therefore registers, stored
    bytes, and (via platform geometry) hit/miss behaviour — varies per
    instance through the seeded window image.
    """
    key = (window_base, iters)
    program = _kernel_cache.get(key)
    if program is None:
        program = assemble(f"""
        entry:
            li r11, {window_base}
            li r12, {_CURSOR_MASK}
            li r3, {iters}
            li r7, 7
            li r2, 0
            load r6, 0(r11)
            addi r1, r11, 0
            jmp loop
        loop:
            load r4, 0(r1)
            add r6, r6, r4
            mul r5, r6, r4
            xor r6, r6, r5
            shr r9, r6, r7
            add r6, r6, r9
            store r6, 8(r1)
            addi r2, r2, 1
            addi r1, r1, 24
            sub r10, r1, r11
            and r10, r10, r12
            add r1, r11, r10
            blt r2, r3, loop
            rdcycle r13
            flush 0(r11)
            halt
        """, base=window_base - 0x1000, name=f"sweep-kernel-{iters}")
        _kernel_cache[key] = program
    return program


def _seed_image(seed: int) -> bytes:
    """Deterministic per-instance window image (simple 64-bit LCG)."""
    state = (seed * 0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03) & ((1 << 64) - 1)
    out = bytearray()
    for _ in range(_SEED_BYTES):
        state = (state * 6364136223846793005 + 1442695040888963407) \
            & ((1 << 64) - 1)
        out.append((state >> 33) & 0xFF)
    return bytes(out)


def build_sweep_instances(platform: PlatformClass, base_seed: int,
                          instances: int, iters: int) -> list[SoC]:
    """``instances`` identically configured, seed-varied sweep SoCs."""
    config = sweep_soc_config(platform)
    socs = []
    for i in range(instances):
        soc = SoC(config)
        window_base = soc.dram_base + WINDOW_OFFSET
        soc.memory.write_bytes(window_base,
                               _seed_image(base_seed + 0x1000 * i))
        soc.cores[0].load_program(sweep_kernel(window_base, iters),
                                  entry="entry")
        socs.append(soc)
    return socs


def sweep_window(soc: SoC) -> tuple[int, int]:
    """The ``(base, size)`` memory window the kernel confines itself to."""
    return (soc.dram_base + WINDOW_OFFSET, WINDOW_SIZE)


def sweep_max_steps(iters: int) -> int:
    return iters * (_LOOP_INSTRS + 3) + _PROLOGUE_INSTRS + 64


def summarise_sweep(socs: list[SoC]) -> dict:
    """Deterministic, JSON-safe digest of per-instance final state.

    The checksum hashes everything the bit-identity contract covers —
    registers, PC, cycles, instret, the exact energy bits
    (``float.hex``), per-level cache counters, bus transaction counts
    and the memory footprint — so scalar and ensemble runs produce
    equal summaries iff they are observation-equivalent.
    """
    cycles, energy, l1_misses = [], [], []
    digest = hashlib.sha256()
    for soc in socs:
        core = soc.cores[0]
        l1 = soc.hierarchy.l1s[0].stats
        l2 = soc.hierarchy.l2.stats
        record = (
            tuple(core.regs), core.pc, core.cycles, core.instret,
            core.energy_pj.hex(), core.halted,
            l1.hits, l1.misses, l1.evictions, l1.flushes,
            l2.hits, l2.misses, l2.evictions, l2.flushes,
            soc.bus.transaction_count, soc.bus.denied_count,
            soc.memory.footprint(),
        )
        digest.update(repr(record).encode())
        cycles.append(core.cycles)
        energy.append(core.energy_pj)
        l1_misses.append(l1.misses)
    return {
        "instances": len(socs),
        "cycles": cycles,
        "energy_pj": energy,
        "l1_misses": l1_misses,
        "checksum": digest.hexdigest(),
    }


def run_kernel_sweep(platform: PlatformClass, base_seed: int,
                     instances: int, iters: int,
                     ensemble: bool = False) -> dict:
    """Build, run and summarise one platform's calibration sweep.

    ``ensemble=True`` routes execution through :class:`CoreEnsemble`
    (scalar peel-off included, though this kernel never peels);
    ``ensemble=False`` is the scalar oracle loop.  Summaries are
    bit-identical between the two — that equality is the determinism
    check the CI pipeline runs.
    """
    socs = build_sweep_instances(platform, base_seed, instances, iters)
    max_steps = sweep_max_steps(iters)
    if socs:
        if ensemble:
            CoreEnsemble([soc.cores[0] for soc in socs],
                         window=sweep_window(socs[0])).run(
                             max_steps=max_steps)
        else:
            for soc in socs:
                soc.cores[0].run(max_steps=max_steps)
    summary = summarise_sweep(socs)
    summary["platform"] = platform.value
    summary["iters"] = iters
    summary["ensemble"] = bool(ensemble)
    return summary
