"""repro: a simulation framework reproducing "In Hardware We Trust:
Gains and Pains of Hardware-assisted Security" (Batina et al., DAC 2019).

The paper is a survey; this library builds every system it surveys —
simulated SoCs spanning server/mobile/embedded platform classes, eight
hardware-assisted security architectures, and the full attack spectrum
(software, cache side-channel, transient-execution, classical physical) —
and regenerates the paper's comparisons from actual experiment outcomes.

Quick start::

    from repro.cpu import make_server_soc
    from repro.arch import SGX
    from repro.attacks import ForeshadowAttack

    sgx = SGX(make_server_soc())
    victim = sgx.deploy_aes_victim(bytes(range(16)))
    print(ForeshadowAttack(sgx, victim.handle).run())
"""

__version__ = "1.9.0"

__all__ = [
    "arch",
    "attacks",
    "attestation",
    "cache",
    "common",
    "core",
    "cpu",
    "crypto",
    "errors",
    "fault",
    "isa",
    "memory",
    "obs",
    "power",
    "runner",
    "service",
    "spec",
]
