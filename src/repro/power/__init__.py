"""Physical side-channel signal simulation (power / EM traces).

The standard SCA-research leakage abstraction: each key-dependent
intermediate byte produces one trace sample, ``L(v) = scale * HW(v) +
N(0, sigma)``.  DPA/CPA mathematics are identical on simulated and
oscilloscope-measured traces; what the simulation removes is only the
lab equipment, which is exactly the substitution DESIGN.md documents.
"""

from repro.power.leakage import (
    HammingDistanceModel,
    HammingWeightModel,
    IdentityModel,
    hamming_weight,
)
from repro.power.trace import TraceSet
from repro.power.instrument import PowerInstrument, capture_aes_traces
from repro.power.batch import BatchPowerInstrument, batch_cipher_for

__all__ = [
    "BatchPowerInstrument",
    "HammingDistanceModel",
    "HammingWeightModel",
    "IdentityModel",
    "PowerInstrument",
    "TraceSet",
    "batch_cipher_for",
    "capture_aes_traces",
    "hamming_weight",
]
