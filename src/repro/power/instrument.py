"""Trace acquisition: run a cipher under a leakage model, record traces.

Also implements the *hiding* countermeasure in its two classic forms
(paper Section 5): temporal shuffling of the S-box processing order, and
amplitude noise (a larger ``noise_std`` on the model).  Shuffling
misaligns the sample a given byte leaks into, which is what degrades
DPA — the attacker's samples no longer line up across traces.

:class:`PowerInstrument` is the *scalar reference*: deliberately boring,
never optimised, and the oracle the vectorized
:class:`~repro.power.batch.BatchPowerInstrument` is differentially
verified against (:mod:`repro.power.diff`).
"""

from __future__ import annotations

from typing import Callable

import repro.obs as obs
from repro.crypto.rng import XorShiftRNG
from repro.power.trace import TraceSet

#: Builds a cipher instance given a leak hook; lets the instrument stay
#: agnostic of which AES variant (or other primitive) is being measured.
CipherFactory = Callable[[Callable[[int, int, int], None]], object]


class PowerInstrument:
    """Simulated oscilloscope over one cipher execution point.

    Records one sample per state byte for each round in
    ``rounds_of_interest`` (default: first and last round — where the
    classic first-round DPA and last-round DFA-support analyses look).
    """

    def __init__(self, leakage_model, rounds_of_interest: tuple[int, ...] = (1,),
                 shuffle: bool = False,
                 rng: XorShiftRNG | None = None) -> None:
        self.model = leakage_model
        self.rounds = tuple(rounds_of_interest)
        self.shuffle = shuffle
        self.rng = rng or XorShiftRNG(0x5CA1E)
        self.samples_per_trace = 16 * len(self.rounds)

    def capture(self, cipher_factory: CipherFactory, plaintexts: list[bytes],
                ) -> TraceSet:
        """Encrypt each plaintext, recording one aligned trace per block."""
        with obs.span("trace-acquisition", cat="power",
                      traces=len(plaintexts),
                      samples_per_trace=self.samples_per_trace,
                      shuffle=self.shuffle):
            return self._capture(cipher_factory, plaintexts)

    def _capture(self, cipher_factory: CipherFactory,
                 plaintexts: list[bytes]) -> TraceSet:
        traces = TraceSet(self.samples_per_trace)
        round_offset = {rnd: 16 * i for i, rnd in enumerate(self.rounds)}
        for plaintext in plaintexts:
            trace = [0.0] * self.samples_per_trace
            permutation = list(range(16))
            if self.shuffle:
                self.rng.shuffle(permutation)

            def leak_hook(rnd: int, byte_index: int, value: int) -> None:
                offset = round_offset.get(rnd)
                if offset is None:
                    return
                slot = permutation[byte_index] if self.shuffle else byte_index
                trace[offset + slot] += self.model.leak(value)

            cipher = cipher_factory(leak_hook)
            ciphertext = cipher.encrypt_block(plaintext)
            traces.add(trace, plaintext, ciphertext)
        return traces


def capture_aes_traces(cipher_factory: CipherFactory, num_traces: int,
                       leakage_model, rng: XorShiftRNG | None = None,
                       rounds_of_interest: tuple[int, ...] = (1,),
                       shuffle: bool = False,
                       batch: bool = True) -> TraceSet:
    """Convenience acquisition with random plaintexts.

    With ``batch=True`` (the default) the capture runs through the
    vectorized :class:`~repro.power.batch.BatchPowerInstrument` whenever
    the cipher/model pair has a batched twin — the output is
    *bit-identical* to the scalar path (same RNG streams, same TraceSet
    matrix and metadata; see :mod:`repro.power.diff`).  Configurations
    without a batched twin (T-table ciphers, armed fault hooks, custom
    models, aliased RNG streams) silently use the scalar reference.
    """
    rng = rng or XorShiftRNG(0xACE)
    plaintexts = [rng.bytes(16) for _ in range(num_traces)]
    if batch:
        from repro.power.batch import BatchPowerInstrument, batch_cipher_for
        batch_cipher = batch_cipher_for(cipher_factory)
        if batch_cipher is not None:
            instrument = BatchPowerInstrument(
                leakage_model, rounds_of_interest, shuffle=shuffle, rng=rng)
            if instrument.can_capture(batch_cipher):
                return instrument.capture(batch_cipher, plaintexts)
    instrument = PowerInstrument(leakage_model, rounds_of_interest,
                                 shuffle=shuffle, rng=rng)
    return instrument.capture(cipher_factory, plaintexts)
