"""Trace storage: aligned power/EM samples with their plaintexts."""

from __future__ import annotations

import numpy as np


class TraceSet:
    """``n`` traces of ``m`` aligned samples plus per-trace metadata.

    Samples accumulate into a preallocated, doubling ``(capacity, m)``
    float64 matrix, so :attr:`samples` is an O(1) view instead of an O(n)
    ``vstack``, and per-byte metadata columns are cached until the next
    :meth:`add` (DPA key recovery reads each column 16 times per key
    byte).  Backing arrays are numpy so the correlation analyses in
    :mod:`repro.attacks.dpa` vectorise.
    """

    def __init__(self, num_samples: int) -> None:
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        self.num_samples = num_samples
        self._buf = np.empty((0, num_samples), dtype=np.float64)
        self._count = 0
        self._plaintexts: list[bytes] = []
        self._ciphertexts: list[bytes] = []
        self._pt_cols: dict[int, np.ndarray] = {}
        self._ct_cols: dict[int, np.ndarray] = {}

    def add(self, samples: list[float], plaintext: bytes,
            ciphertext: bytes) -> None:
        """Append one trace; sample count must match the set geometry."""
        if len(samples) != self.num_samples:
            raise ValueError(
                f"trace has {len(samples)} samples, expected {self.num_samples}")
        if self._count == self._buf.shape[0]:
            grown = np.empty((max(16, 2 * self._buf.shape[0]),
                              self.num_samples), dtype=np.float64)
            grown[:self._count] = self._buf[:self._count]
            self._buf = grown
        self._buf[self._count] = samples
        self._count += 1
        self._plaintexts.append(plaintext)
        self._ciphertexts.append(ciphertext)
        self._pt_cols.clear()
        self._ct_cols.clear()

    def __len__(self) -> int:
        return self._count

    @property
    def samples(self) -> np.ndarray:
        """(n_traces, n_samples) matrix (a view of the growth buffer)."""
        return self._buf[:self._count]

    @property
    def plaintexts(self) -> list[bytes]:
        return list(self._plaintexts)

    @property
    def ciphertexts(self) -> list[bytes]:
        return list(self._ciphertexts)

    def plaintext_bytes(self, index: int) -> np.ndarray:
        """Column vector of plaintext byte ``index`` across traces."""
        col = self._pt_cols.get(index)
        if col is None:
            col = np.fromiter((pt[index] for pt in self._plaintexts),
                              dtype=np.int64, count=self._count)
            self._pt_cols[index] = col
        return col

    def ciphertext_bytes(self, index: int) -> np.ndarray:
        """Column vector of ciphertext byte ``index`` across traces."""
        col = self._ct_cols.get(index)
        if col is None:
            col = np.fromiter((ct[index] for ct in self._ciphertexts),
                              dtype=np.int64, count=self._count)
            self._ct_cols[index] = col
        return col

    def subset(self, count: int) -> "TraceSet":
        """First ``count`` traces as a new set (trace-count sweeps)."""
        if count > len(self):
            raise ValueError(f"only {len(self)} traces available")
        out = TraceSet(self.num_samples)
        out._buf = self._buf[:count].copy()
        out._count = count
        out._plaintexts = self._plaintexts[:count]
        out._ciphertexts = self._ciphertexts[:count]
        return out
