"""Trace storage: aligned power/EM samples with their plaintexts."""

from __future__ import annotations

import numpy as np


class TraceSet:
    """``n`` traces of ``m`` aligned samples plus per-trace metadata.

    Samples accumulate into a preallocated, doubling ``(capacity, m)``
    float64 matrix, so :attr:`samples` is an O(1) view instead of an O(n)
    ``vstack``.  Metadata lives in parallel ``(capacity, 16)`` uint8
    matrices, so the batched instrument can hand a whole capture over
    zero-copy (:meth:`from_arrays`) and per-byte columns are O(1) slices;
    both the byte columns and the :attr:`plaintexts` tuples are cached
    until the next :meth:`add` (DPA key recovery reads each column 16
    times per key byte).  :meth:`subset` returns read-only *views*, so a
    trace-count sweep is O(1) in memory; appending to a subset falls back
    to copy-on-grow.
    """

    def __init__(self, num_samples: int) -> None:
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        self.num_samples = num_samples
        self._buf = np.empty((0, num_samples), dtype=np.float64)
        self._count = 0
        self._pt_buf: np.ndarray | None = None
        self._ct_buf: np.ndarray | None = None
        self._pt_cols: dict[int, np.ndarray] = {}
        self._ct_cols: dict[int, np.ndarray] = {}
        self._pt_tuple: tuple[bytes, ...] | None = None
        self._ct_tuple: tuple[bytes, ...] | None = None

    @classmethod
    def from_arrays(cls, samples: np.ndarray, plaintexts: np.ndarray,
                    ciphertexts: np.ndarray) -> "TraceSet":
        """Adopt whole-capture matrices without copying.

        ``samples`` is ``(n, m)`` float64; ``plaintexts``/``ciphertexts``
        are ``(n, width)`` uint8.  The arrays become the set's backing
        buffers — the batched acquisition path builds its matrices once
        and never pays a per-trace ``add``.
        """
        samples = np.asarray(samples, dtype=np.float64)
        plaintexts = np.asarray(plaintexts, dtype=np.uint8)
        ciphertexts = np.asarray(ciphertexts, dtype=np.uint8)
        if samples.ndim != 2:
            raise ValueError("samples must be a 2-D matrix")
        n = samples.shape[0]
        if plaintexts.shape[0] != n or ciphertexts.shape[0] != n:
            raise ValueError("metadata row count must match trace count")
        out = cls(samples.shape[1])
        out._buf = samples
        out._count = n
        out._pt_buf = plaintexts
        out._ct_buf = ciphertexts
        return out

    def _grow(self, buf: np.ndarray, width: int,
              dtype: type) -> np.ndarray:
        grown = np.empty((max(16, 2 * buf.shape[0]), width), dtype=dtype)
        grown[:self._count] = buf[:self._count]
        return grown

    def add(self, samples: list[float], plaintext: bytes,
            ciphertext: bytes) -> None:
        """Append one trace; sample count must match the set geometry."""
        if len(samples) != self.num_samples:
            raise ValueError(
                f"trace has {len(samples)} samples, expected {self.num_samples}")
        if self._pt_buf is None:
            self._pt_buf = np.empty((0, len(plaintext)), dtype=np.uint8)
            self._ct_buf = np.empty((0, len(ciphertext)), dtype=np.uint8)
        if len(plaintext) != self._pt_buf.shape[1] \
                or len(ciphertext) != self._ct_buf.shape[1]:
            raise ValueError("metadata width must match the first trace")
        if self._count == self._buf.shape[0]:
            self._buf = self._grow(self._buf, self.num_samples, np.float64)
        if self._count == self._pt_buf.shape[0]:
            self._pt_buf = self._grow(self._pt_buf, self._pt_buf.shape[1],
                                      np.uint8)
            self._ct_buf = self._grow(self._ct_buf, self._ct_buf.shape[1],
                                      np.uint8)
        self._buf[self._count] = samples
        self._pt_buf[self._count] = np.frombuffer(plaintext, dtype=np.uint8)
        self._ct_buf[self._count] = np.frombuffer(ciphertext, dtype=np.uint8)
        self._count += 1
        self._pt_cols.clear()
        self._ct_cols.clear()
        self._pt_tuple = None
        self._ct_tuple = None

    def __len__(self) -> int:
        return self._count

    @property
    def samples(self) -> np.ndarray:
        """(n_traces, n_samples) matrix (a view of the growth buffer)."""
        return self._buf[:self._count]

    @property
    def plaintexts(self) -> tuple[bytes, ...]:
        """Per-trace plaintexts (cached; rebuilt only after :meth:`add`)."""
        if self._pt_tuple is None:
            self._pt_tuple = self._materialise(self._pt_buf)
        return self._pt_tuple

    @property
    def ciphertexts(self) -> tuple[bytes, ...]:
        """Per-trace ciphertexts (cached; rebuilt only after :meth:`add`)."""
        if self._ct_tuple is None:
            self._ct_tuple = self._materialise(self._ct_buf)
        return self._ct_tuple

    def _materialise(self, buf: np.ndarray | None) -> tuple[bytes, ...]:
        if buf is None or self._count == 0:
            return ()
        return tuple(bytes(row) for row in buf[:self._count])

    def plaintext_bytes(self, index: int) -> np.ndarray:
        """Column vector of plaintext byte ``index`` across traces."""
        col = self._pt_cols.get(index)
        if col is None:
            col = self._column(self._pt_buf, index)
            self._pt_cols[index] = col
        return col

    def ciphertext_bytes(self, index: int) -> np.ndarray:
        """Column vector of ciphertext byte ``index`` across traces."""
        col = self._ct_cols.get(index)
        if col is None:
            col = self._column(self._ct_buf, index)
            self._ct_cols[index] = col
        return col

    def _column(self, buf: np.ndarray | None, index: int) -> np.ndarray:
        if buf is None:
            return np.empty(0, dtype=np.int64)
        return buf[:self._count, index].astype(np.int64)

    def subset(self, count: int) -> "TraceSet":
        """First ``count`` traces as read-only views (trace-count sweeps).

        No sample data is copied, so sweeping a 10k-trace capture costs
        O(1) memory per step.  The backing rows are append-only in the
        parent, so the views stay coherent; the subset's own column and
        tuple caches are sliced from any the parent already built.
        """
        if count > len(self):
            raise ValueError(f"only {len(self)} traces available")
        out = TraceSet(self.num_samples)
        out._buf = self._buf[:count]
        out._buf.flags.writeable = False
        out._count = count
        if self._pt_buf is not None:
            out._pt_buf = self._pt_buf[:count]
            out._pt_buf.flags.writeable = False
            out._ct_buf = self._ct_buf[:count]
            out._ct_buf.flags.writeable = False
        out._pt_cols = {i: col[:count]
                        for i, col in self._pt_cols.items()}
        out._ct_cols = {i: col[:count]
                        for i, col in self._ct_cols.items()}
        if self._pt_tuple is not None:
            out._pt_tuple = self._pt_tuple[:count]
        if self._ct_tuple is not None:
            out._ct_tuple = self._ct_tuple[:count]
        return out
