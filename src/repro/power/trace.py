"""Trace storage: aligned power/EM samples with their plaintexts."""

from __future__ import annotations

import numpy as np


class TraceSet:
    """``n`` traces of ``m`` aligned samples plus per-trace metadata.

    Backing arrays are numpy so the correlation analyses in
    :mod:`repro.attacks.dpa` vectorise.
    """

    def __init__(self, num_samples: int) -> None:
        if num_samples <= 0:
            raise ValueError("num_samples must be positive")
        self.num_samples = num_samples
        self._samples: list[np.ndarray] = []
        self._plaintexts: list[bytes] = []
        self._ciphertexts: list[bytes] = []

    def add(self, samples: list[float], plaintext: bytes,
            ciphertext: bytes) -> None:
        """Append one trace; sample count must match the set geometry."""
        if len(samples) != self.num_samples:
            raise ValueError(
                f"trace has {len(samples)} samples, expected {self.num_samples}")
        self._samples.append(np.asarray(samples, dtype=np.float64))
        self._plaintexts.append(plaintext)
        self._ciphertexts.append(ciphertext)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> np.ndarray:
        """(n_traces, n_samples) matrix."""
        if not self._samples:
            return np.empty((0, self.num_samples))
        return np.vstack(self._samples)

    @property
    def plaintexts(self) -> list[bytes]:
        return list(self._plaintexts)

    @property
    def ciphertexts(self) -> list[bytes]:
        return list(self._ciphertexts)

    def plaintext_bytes(self, index: int) -> np.ndarray:
        """Column vector of plaintext byte ``index`` across traces."""
        return np.array([pt[index] for pt in self._plaintexts], dtype=np.int64)

    def ciphertext_bytes(self, index: int) -> np.ndarray:
        """Column vector of ciphertext byte ``index`` across traces."""
        return np.array([ct[index] for ct in self._ciphertexts], dtype=np.int64)

    def subset(self, count: int) -> "TraceSet":
        """First ``count`` traces as a new set (trace-count sweeps)."""
        if count > len(self):
            raise ValueError(f"only {len(self)} traces available")
        out = TraceSet(self.num_samples)
        out._samples = self._samples[:count]
        out._plaintexts = self._plaintexts[:count]
        out._ciphertexts = self._ciphertexts[:count]
        return out
