"""Batched trace acquisition: a whole TraceSet in a handful of numpy ops.

:class:`BatchPowerInstrument` is the vectorized twin of the scalar
:class:`~repro.power.instrument.PowerInstrument` and is held to the
strictest contract this repo has: **bit-identical output**, not
approximate equality.  The scalar loop interleaves three RNG streams per
trace — the shuffle permutation (instrument RNG), the mask bytes (cipher
RNG) and the leakage noise (model RNG).  Because each stream only ever
feeds one consumer, the batched path may *pre-draw each stream as one
block* without changing any stream's internal sequence:

* shuffle permutations are re-derived trace-by-trace with the same
  Fisher–Yates draws, then applied as one batched permutation gather;
* the masked cipher pre-draws its ``18 * N`` mask bytes in scalar order
  (:class:`~repro.crypto.aes_batch.BatchMaskedAES`);
* the leakage model consumes its noise stream in C order of the
  ``(trace, round, byte)`` value tensor — exactly the order the scalar
  hook loop visits (``leak_block`` on the models).

The one configuration that breaks this reordering is *aliased* streams
(the same RNG object wired into two roles); :meth:`can_capture` detects
it and the routing layer falls back to the scalar reference.  Equality —
trace matrix, metadata, RNG end states, recovered keys — is proven by
:mod:`repro.power.diff` and the hypothesis suite driving it.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

import repro.obs as obs
from repro.crypto.aes import AES128, MaskedAES, NUM_ROUNDS, BLOCK_SIZE
from repro.crypto.aes_batch import BatchAES128, BatchMaskedAES
from repro.crypto.rng import XorShiftRNG
from repro.power.trace import TraceSet


def batch_cipher_for(cipher_factory: Callable) -> BatchAES128 | None:
    """Derive a batch cipher from a scalar cipher factory, if possible.

    The factory is probed once with a ``None`` leak hook.  Only the exact
    leak-hook-bearing classes with a known batched twin qualify — a
    subclass (T-table, constant-time) or an armed fault hook routes the
    capture back to the scalar reference.
    """
    try:
        probe = cipher_factory(None)
    except Exception:
        return None
    if getattr(probe, "fault_hook", None) is not None:
        return None
    if type(probe) is AES128:
        return BatchAES128(round_keys=probe.round_keys)
    if type(probe) is MaskedAES:
        return BatchMaskedAES(probe.rng, round_keys=probe.round_keys)
    return None


class BatchPowerInstrument:
    """Vectorized oscilloscope: one numpy pipeline per capture.

    Geometry and RNG consumption mirror
    :class:`~repro.power.instrument.PowerInstrument` exactly; see the
    module docstring for the equality argument.
    """

    def __init__(self, leakage_model, rounds_of_interest: tuple[int, ...] = (1,),
                 shuffle: bool = False,
                 rng: XorShiftRNG | None = None) -> None:
        self.model = leakage_model
        self.rounds = tuple(rounds_of_interest)
        self.shuffle = shuffle
        self.rng = rng or XorShiftRNG(0x5CA1E)
        self.samples_per_trace = 16 * len(self.rounds)

    def can_capture(self, batch_cipher: BatchAES128) -> bool:
        """True when this configuration preserves bit-identity batched."""
        if not hasattr(self.model, "leak_block"):
            return False
        streams = []
        if self.shuffle:
            streams.append(self.rng)
        if getattr(self.model, "noise_std", 0) > 0:
            model_rng = getattr(self.model, "rng", None)
            if model_rng is not None:
                streams.append(model_rng)
        if batch_cipher.rng is not None:
            streams.append(batch_cipher.rng)
        return len({id(stream) for stream in streams}) == len(streams)

    def capture(self, batch_cipher: BatchAES128,
                plaintexts: list[bytes]) -> TraceSet:
        """Encrypt every plaintext at once; return the aligned TraceSet."""
        with obs.span("trace-acquisition", cat="power",
                      traces=len(plaintexts),
                      samples_per_trace=self.samples_per_trace,
                      shuffle=self.shuffle, batch=True):
            return self._capture(batch_cipher, plaintexts)

    def _capture(self, batch_cipher: BatchAES128,
                 plaintexts: list[bytes]) -> TraceSet:
        if any(len(pt) != BLOCK_SIZE for pt in plaintexts):
            raise ValueError("plaintext block must be 16 bytes")
        n = len(plaintexts)
        pts = np.frombuffer(b"".join(plaintexts),
                            dtype=np.uint8).reshape(n, BLOCK_SIZE) \
            if n else np.zeros((0, BLOCK_SIZE), dtype=np.uint8)

        # Stream 1 — shuffle permutations, drawn with the scalar loop's
        # exact Fisher-Yates sequence, applied later as one gather.
        permutations = None
        if self.shuffle:
            permutations = np.empty((n, 16), dtype=np.intp)
            scratch = list(range(16))
            for i in range(n):
                scratch[:] = range(16)
                self.rng.shuffle(scratch)
                permutations[i] = scratch

        # Stream 2 — the cipher's own draws (masks) happen inside
        # encrypt_blocks, as one block in scalar order.
        round_offset = {rnd: 16 * i for i, rnd in enumerate(self.rounds)}
        live_rounds = sorted(rnd for rnd in round_offset
                             if 1 <= rnd <= NUM_ROUNDS)
        ciphertexts, intermediates = batch_cipher.encrypt_blocks(
            pts, tuple(live_rounds))

        # Stream 3 — the leakage model consumes its noise in C order of
        # the (trace, round, byte) tensor: the scalar hook-call order.
        values = np.stack([intermediates[rnd] for rnd in live_rounds],
                          axis=1) if live_rounds \
            else np.zeros((n, 0, 16), dtype=np.uint8)
        leaked = self.model.leak_block(values)

        samples = np.zeros((n, self.samples_per_trace), dtype=np.float64)
        rows = np.arange(n)[:, np.newaxis]
        for slot, rnd in enumerate(live_rounds):
            offset = round_offset[rnd]
            block = leaked[:, slot, :]
            if permutations is not None:
                samples[rows, offset + permutations] = block
            else:
                samples[:, offset:offset + 16] = block
        return TraceSet.from_arrays(samples, pts, ciphertexts)
