"""Leakage models mapping intermediate values to analogue samples."""

from __future__ import annotations

from typing import Protocol

from repro.crypto.rng import XorShiftRNG


def hamming_weight(value: int) -> int:
    """Number of set bits."""
    return bin(value).count("1")


class LeakageModel(Protocol):
    """Maps a processed value to one side-channel sample."""

    def leak(self, value: int) -> float:
        """Analogue sample for processing ``value``."""


class HammingWeightModel:
    """``scale * HW(v) + N(0, noise_std)`` — the CMOS power workhorse.

    ``scale`` and ``noise_std`` set the signal-to-noise ratio; the DPA
    bench sweeps ``noise_std`` to show trace-count requirements growing
    with noise (the "hiding" countermeasure in its amplitude form).
    """

    def __init__(self, scale: float = 1.0, noise_std: float = 0.5,
                 rng: XorShiftRNG | None = None) -> None:
        self.scale = scale
        self.noise_std = noise_std
        self.rng = rng or XorShiftRNG(0xA11CE)

    def leak(self, value: int) -> float:
        sample = self.scale * hamming_weight(value)
        if self.noise_std > 0:
            sample += self.rng.gauss(0.0, self.noise_std)
        return sample


class HammingDistanceModel:
    """``scale * HW(v ^ previous) + noise`` — register-update leakage.

    Models a bus/register whose power draw tracks toggled bits.  Keeps the
    previous value internally; call :meth:`reset` between traces.
    """

    def __init__(self, scale: float = 1.0, noise_std: float = 0.5,
                 rng: XorShiftRNG | None = None) -> None:
        self.scale = scale
        self.noise_std = noise_std
        self.rng = rng or XorShiftRNG(0xB0B)
        self._previous = 0

    def reset(self, value: int = 0) -> None:
        self._previous = value

    def leak(self, value: int) -> float:
        sample = self.scale * hamming_weight(value ^ self._previous)
        self._previous = value
        if self.noise_std > 0:
            sample += self.rng.gauss(0.0, self.noise_std)
        return sample


class IdentityModel:
    """Noise-free value leakage — the oracle used in sanity tests."""

    def leak(self, value: int) -> float:
        return float(value)
