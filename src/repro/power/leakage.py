"""Leakage models mapping intermediate values to analogue samples."""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.crypto.rng import XorShiftRNG


def hamming_weight(value: int) -> int:
    """Number of set bits."""
    return bin(value).count("1")


_HW_TABLE = np.array([hamming_weight(x) for x in range(256)],
                     dtype=np.float64)


class LeakageModel(Protocol):
    """Maps a processed value to one side-channel sample."""

    def leak(self, value: int) -> float:
        """Analogue sample for processing ``value``."""


class HammingWeightModel:
    """``scale * HW(v) + N(0, noise_std)`` — the CMOS power workhorse.

    ``scale`` and ``noise_std`` set the signal-to-noise ratio; the DPA
    bench sweeps ``noise_std`` to show trace-count requirements growing
    with noise (the "hiding" countermeasure in its amplitude form).
    """

    def __init__(self, scale: float = 1.0, noise_std: float = 0.5,
                 rng: XorShiftRNG | None = None) -> None:
        self.scale = scale
        self.noise_std = noise_std
        self.rng = rng or XorShiftRNG(0xA11CE)

    def leak(self, value: int) -> float:
        sample = self.scale * hamming_weight(value)
        if self.noise_std > 0:
            sample += self.rng.gauss(0.0, self.noise_std)
        return sample

    def leak_block(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`leak` over a uint8 array of any shape.

        Noise draws consume the RNG in C order of ``values`` — the order
        the scalar hook loop visits them — so the stream and every float
        (same multiply/add sequence per sample) are bit-identical.
        """
        samples = self.scale * _HW_TABLE[values]
        if self.noise_std > 0 and values.size:
            noise = np.array(
                self.rng.gauss_block(values.size, 0.0, self.noise_std))
            samples += noise.reshape(values.shape)
        return samples


class HammingDistanceModel:
    """``scale * HW(v ^ previous) + noise`` — register-update leakage.

    Models a bus/register whose power draw tracks toggled bits.  Keeps the
    previous value internally; call :meth:`reset` between traces.
    """

    def __init__(self, scale: float = 1.0, noise_std: float = 0.5,
                 rng: XorShiftRNG | None = None) -> None:
        self.scale = scale
        self.noise_std = noise_std
        self.rng = rng or XorShiftRNG(0xB0B)
        self._previous = 0

    def reset(self, value: int = 0) -> None:
        self._previous = value

    def leak(self, value: int) -> float:
        sample = self.scale * hamming_weight(value ^ self._previous)
        self._previous = value
        if self.noise_std > 0:
            sample += self.rng.gauss(0.0, self.noise_std)
        return sample

    def leak_block(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`leak`; the toggle chain threads through the
        block in C order, continuing from (and updating) the model's
        internal previous value."""
        flat = values.reshape(-1)
        if not flat.size:
            return np.zeros(values.shape, dtype=np.float64)
        prev = np.empty_like(flat)
        prev[0] = self._previous
        prev[1:] = flat[:-1]
        samples = self.scale * _HW_TABLE[flat ^ prev]
        self._previous = int(flat[-1])
        if self.noise_std > 0:
            samples += np.array(
                self.rng.gauss_block(flat.size, 0.0, self.noise_std))
        return samples.reshape(values.shape)


class IdentityModel:
    """Noise-free value leakage — the oracle used in sanity tests."""

    def leak(self, value: int) -> float:
        return float(value)

    def leak_block(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`leak`."""
        return values.astype(np.float64)
