"""Lockstep differential harness: batched acquisition vs scalar reference.

The contract of :class:`~repro.power.batch.BatchPowerInstrument` is
**bit-identity**, the same bar the CPU fast path is held to in
:mod:`repro.cpu.diff`: for any capture configuration, the batched and
scalar paths must produce

* the same sample matrix, compared *bitwise* (``tobytes()``, not
  ``allclose`` — a single differing mantissa bit fails);
* the same plaintext/ciphertext metadata;
* the same end state on every RNG stream involved (instrument, model
  noise, cipher masks) — the batched path must *consume* randomness
  exactly like the scalar loop, not merely produce matching output;
* the same recovered keys under DPA/CPA (implied by the above, asserted
  anyway as the end-to-end observable).

:func:`capture_pair` builds the two sides from one immutable
:class:`SCAConfig` with independent, identically-seeded RNGs;
:func:`assert_identical` raises :class:`TraceDivergence` naming the
first mismatching field.  ``tests/test_power_differential.py`` drives
this with hypothesis across masked/shuffled/noisy configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aes import AES128, MaskedAES
from repro.crypto.rng import XorShiftRNG
from repro.power.batch import BatchPowerInstrument, batch_cipher_for
from repro.power.instrument import PowerInstrument
from repro.power.leakage import HammingWeightModel
from repro.power.trace import TraceSet


class TraceDivergence(AssertionError):
    """The batched and scalar acquisitions disagreed on an observable."""


@dataclass(frozen=True)
class SCAConfig:
    """One acquisition configuration, replayable on either path."""

    key: bytes
    num_traces: int = 32
    masked: bool = False
    shuffle: bool = False
    noise_std: float = 1.0
    rounds_of_interest: tuple[int, ...] = (1,)
    seed: int = 0xD1FF
    mask_seed: int = 0x11
    noise_seed: int = 0x3

    def _streams(self) -> tuple[XorShiftRNG, XorShiftRNG, XorShiftRNG]:
        return (XorShiftRNG(self.seed), XorShiftRNG(self.noise_seed),
                XorShiftRNG(self.mask_seed))

    def _factory(self, mask_rng: XorShiftRNG):
        if self.masked:
            return lambda leak: MaskedAES(self.key, mask_rng,
                                          leak_hook=leak)
        return lambda leak: AES128(self.key, leak_hook=leak)


@dataclass(frozen=True)
class CaptureOutcome:
    """One path's TraceSet plus the end states of its RNG streams."""

    traces: TraceSet
    rng_state: int
    noise_rng_state: int
    mask_rng_state: int


def _run(config: SCAConfig, batched: bool) -> CaptureOutcome:
    rng, noise_rng, mask_rng = config._streams()
    model = HammingWeightModel(noise_std=config.noise_std, rng=noise_rng)
    factory = config._factory(mask_rng)
    plaintexts = [rng.bytes(16) for _ in range(config.num_traces)]
    if batched:
        batch_cipher = batch_cipher_for(factory)
        if batch_cipher is None:
            raise TraceDivergence("configuration has no batched twin")
        instrument = BatchPowerInstrument(
            model, config.rounds_of_interest, shuffle=config.shuffle,
            rng=rng)
        if not instrument.can_capture(batch_cipher):
            raise TraceDivergence("batched capture rejected the config")
        traces = instrument.capture(batch_cipher, plaintexts)
    else:
        instrument = PowerInstrument(
            model, config.rounds_of_interest, shuffle=config.shuffle,
            rng=rng)
        traces = instrument.capture(factory, plaintexts)
    return CaptureOutcome(traces, rng._state, noise_rng._state,
                          mask_rng._state)


def scalar_capture(config: SCAConfig) -> CaptureOutcome:
    """Run the configuration on the retained scalar reference."""
    return _run(config, batched=False)


def batched_capture(config: SCAConfig) -> CaptureOutcome:
    """Run the configuration on the vectorized instrument."""
    return _run(config, batched=True)


def _compare(field: str, batched, scalar) -> None:
    if batched != scalar:
        raise TraceDivergence(
            f"{field} diverged\n  batched: {batched!r}\n"
            f"  scalar:  {scalar!r}")


def assert_tracesets_identical(batched: TraceSet,
                               scalar: TraceSet) -> None:
    """Bitwise TraceSet equality: geometry, samples, metadata."""
    _compare("len", len(batched), len(scalar))
    _compare("num_samples", batched.num_samples, scalar.num_samples)
    _compare("samples (bitwise)",
             batched.samples.astype("<f8").tobytes(),
             scalar.samples.astype("<f8").tobytes())
    _compare("plaintexts", tuple(batched.plaintexts),
             tuple(scalar.plaintexts))
    _compare("ciphertexts", tuple(batched.ciphertexts),
             tuple(scalar.ciphertexts))
    for index in range(16):
        _compare(f"plaintext_bytes({index})",
                 batched.plaintext_bytes(index).tolist(),
                 scalar.plaintext_bytes(index).tolist())
        _compare(f"ciphertext_bytes({index})",
                 batched.ciphertext_bytes(index).tolist(),
                 scalar.ciphertext_bytes(index).tolist())


def capture_pair(config: SCAConfig) -> tuple[CaptureOutcome, CaptureOutcome]:
    """Run both paths and assert full bit-identity; return both sides."""
    batched = batched_capture(config)
    scalar = scalar_capture(config)
    assert_tracesets_identical(batched.traces, scalar.traces)
    _compare("instrument RNG end state", batched.rng_state,
             scalar.rng_state)
    _compare("noise RNG end state", batched.noise_rng_state,
             scalar.noise_rng_state)
    _compare("mask RNG end state", batched.mask_rng_state,
             scalar.mask_rng_state)
    return batched, scalar
