"""Fault specifications: what a glitch does to a value, and how it is induced."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.rng import XorShiftRNG
from repro.errors import FaultInjectionError


class GlitchChannel(enum.Enum):
    """Physical mechanism of the glitch (Section 5's enumeration)."""

    CLOCK = "clock"
    VOLTAGE = "voltage"
    EM_PULSE = "em-pulse"
    OPTICAL = "optical"
    DVFS = "dvfs"  # CLKSCREW: software-induced, no physical access needed


class FaultKind(enum.Enum):
    """Corruption applied to the targeted value."""

    BIT_FLIP = "bit-flip"
    BYTE_RANDOM = "byte-random"
    STUCK_AT_ZERO = "stuck-at-zero"
    SKIP = "instruction-skip"  # value passes through unchanged; the *step*
    # it fed (e.g. a verification) is skipped


@dataclass(frozen=True)
class FaultSpec:
    """One glitch: where it lands and what it does.

    ``target_round`` / ``target_byte`` select the AES injection point
    (``None`` byte = chosen at random per shot).  For RSA-CRT the target
    is a half ("p" or "q") instead.
    """

    channel: GlitchChannel
    kind: FaultKind
    target_round: int | None = None
    target_byte: int | None = None
    target_bit: int | None = None
    crt_half: str | None = None

    def __post_init__(self) -> None:
        if self.crt_half is not None and self.crt_half not in ("p", "q"):
            raise FaultInjectionError(f"bad CRT half {self.crt_half!r}")
        if self.target_bit is not None and not 0 <= self.target_bit < 8:
            raise FaultInjectionError(f"bad bit index {self.target_bit}")


def apply_fault(spec: FaultSpec, value: int, rng: XorShiftRNG,
                width_bits: int = 8) -> int:
    """Corrupt ``value`` per ``spec``; ``width_bits`` bounds the target."""
    mask = (1 << width_bits) - 1
    value &= mask
    if spec.kind is FaultKind.BIT_FLIP:
        bit = spec.target_bit if spec.target_bit is not None \
            else rng.next_below(width_bits)
        return value ^ (1 << bit)
    if spec.kind is FaultKind.BYTE_RANDOM:
        while True:
            corrupted = rng.next_u64() & mask
            if corrupted != value:
                return corrupted
    if spec.kind is FaultKind.STUCK_AT_ZERO:
        return 0
    return value  # SKIP: corruption happens at the control-flow level
