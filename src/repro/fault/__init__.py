"""Fault injection: glitch models, campaign runner, CLKSCREW coupling.

Section 5: "intrusive attacks induce faults in the system ... by
'glitching' the device, i.e., forcing changes in the values of relevant
physical parameters outside the specified intervals."  The engine turns a
glitch specification into the corrupted intermediates that fault analysis
(Bellcore RSA-CRT, AES DFA) consumes, and couples to the DVFS model so
CLKSCREW-style software-induced glitches use the same machinery as
bench-top clock/voltage/EM/laser glitches.
"""

from repro.fault.models import (
    FaultKind,
    FaultSpec,
    GlitchChannel,
    apply_fault,
)
from repro.fault.injector import CampaignResult, FaultCampaign, GlitchInjector
from repro.fault.clkscrew import ClkscrewGlitcher

__all__ = [
    "CampaignResult",
    "ClkscrewGlitcher",
    "FaultCampaign",
    "FaultKind",
    "FaultSpec",
    "GlitchChannel",
    "GlitchInjector",
    "apply_fault",
]
