"""Glitch injector and fault campaigns.

:class:`GlitchInjector` turns a :class:`~repro.fault.models.FaultSpec`
into the hook shapes the crypto layer accepts (an AES ``fault_hook`` or an
RSA ``CRTFaultHook``), firing with a configurable probability per shot —
real glitch rigs are probabilistic too.  :class:`FaultCampaign` runs many
shots and separates clean, faulty and crashed outcomes, which is the raw
material every fault-analysis attack starts from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.rng import XorShiftRNG
from repro.fault.models import FaultSpec, apply_fault


class GlitchInjector:
    """Arms a fault spec and produces crypto-layer hooks."""

    def __init__(self, spec: FaultSpec, rng: XorShiftRNG | None = None,
                 success_probability: float = 1.0) -> None:
        if not 0.0 <= success_probability <= 1.0:
            raise ValueError("success_probability must be in [0, 1]")
        self.spec = spec
        self.rng = rng or XorShiftRNG(0xFA17)
        self.success_probability = success_probability
        self.shots = 0
        self.effective_faults = 0

    def _fires(self) -> bool:
        self.shots += 1
        if self.success_probability >= 1.0:
            fired = True
        else:
            fired = self.rng.next_u64() / ((1 << 64) - 1) \
                < self.success_probability
        if fired:
            self.effective_faults += 1
        return fired

    # -- AES hook -----------------------------------------------------------

    def aes_fault_hook(self) -> Callable[[int, bytearray], None]:
        """Hook for ``AES128(fault_hook=...)``: corrupts one state byte."""
        spec = self.spec

        def hook(rnd: int, state: bytearray) -> None:
            if spec.target_round is not None and rnd != spec.target_round:
                return
            if not self._fires():
                return
            byte_index = spec.target_byte if spec.target_byte is not None \
                else self.rng.next_below(16)
            state[byte_index] = apply_fault(spec, state[byte_index], self.rng)

        return hook

    # -- RSA-CRT hook ---------------------------------------------------------

    def crt_fault_hook(self) -> Callable[[str, int], int]:
        """Hook for ``RSA.sign_crt(fault_hook=...)``: corrupts one half."""
        spec = self.spec

        def hook(half: str, value: int) -> int:
            if spec.crt_half is not None and half != spec.crt_half:
                return value
            if not self._fires():
                return value
            return apply_fault(spec, value, self.rng,
                               width_bits=max(value.bit_length(), 8))

        return hook


@dataclass
class CampaignResult:
    """Outcome sets from a fault campaign."""

    clean: list = field(default_factory=list)
    faulty: list = field(default_factory=list)
    crashes: int = 0

    @property
    def fault_rate(self) -> float:
        total = len(self.clean) + len(self.faulty) + self.crashes
        return len(self.faulty) / total if total else 0.0


class FaultCampaign:
    """Run an operation repeatedly under glitching; bin the outcomes.

    ``operation()`` must return the (possibly faulty) output;
    ``reference()`` returns the correct output for comparison.  Exceptions
    from the operation (e.g. the Bellcore verification refusing to emit a
    signature) count as crashes — from the attacker's perspective, a lost
    shot.
    """

    def __init__(self, operation: Callable[[], object],
                 reference: Callable[[], object]) -> None:
        self.operation = operation
        self.reference = reference

    def run(self, shots: int) -> CampaignResult:
        result = CampaignResult()
        expected = self.reference()
        for _ in range(shots):
            try:
                output = self.operation()
            except Exception:
                result.crashes += 1
                continue
            if output == expected:
                result.clean.append(output)
            else:
                result.faulty.append(output)
        return result
