"""CLKSCREW: DVFS abuse as a software-only glitch source.

Couples the :class:`~repro.cpu.dvfs.DVFSController` to the fault engine:
the *glitch probability* of each shot is whatever the current operating
point's timing-margin violation implies.  If the attacker cannot push the
regulator past the margin — hardware limits, or the secure-world gate —
the probability stays zero and downstream fault analysis starves.
"""

from __future__ import annotations

from typing import Callable

from repro.cpu.dvfs import DVFSController, OperatingPoint
from repro.crypto.rng import XorShiftRNG
from repro.errors import SecurityViolation
from repro.fault.models import FaultKind, FaultSpec, GlitchChannel, apply_fault


class ClkscrewGlitcher:
    """Normal-world software stressing the clock of a victim core.

    ``overdrive`` pushes the victim core's domain to ``freq_mhz`` /
    ``voltage_mv`` *as the normal world* — the call the paper's ref [37]
    showed was possible on commodity phones.  The returned AES fault hook
    fires per round with the resulting margin-violation probability.
    """

    def __init__(self, dvfs: DVFSController, victim_core: str,
                 rng: XorShiftRNG | None = None,
                 target_round: int | None = None) -> None:
        self.dvfs = dvfs
        self.victim_core = victim_core
        self.rng = rng or XorShiftRNG(0xC15C)
        self.target_round = target_round
        # Timing-margin violations flip late-arriving flip-flops: single-
        # bit upsets, which is also what last-round DFA wants to consume.
        self.spec = FaultSpec(GlitchChannel.DVFS, FaultKind.BIT_FLIP,
                              target_round=target_round)
        self.denied = False

    def overdrive(self, freq_mhz: float, voltage_mv: float = 700.0) -> bool:
        """Attempt the malicious retune; returns False when blocked."""
        domain = self.dvfs.domain_of_core(self.victim_core)
        if domain is None:
            self.denied = True
            return False
        try:
            self.dvfs.set_point(domain.name,
                                OperatingPoint(freq_mhz, voltage_mv),
                                from_secure_world=False)
        except (SecurityViolation, ValueError):
            self.denied = True
            return False
        return True

    @property
    def glitch_probability(self) -> float:
        """Per-round fault probability at the current operating point."""
        return self.dvfs.glitch_probability_for_core(self.victim_core)

    def aes_fault_hook(self) -> Callable[[int, bytearray], None]:
        """Fault hook whose firing rate tracks the DVFS margin violation."""

        def hook(rnd: int, state: bytearray) -> None:
            if self.target_round is not None and rnd != self.target_round:
                return
            probability = self.glitch_probability
            if probability <= 0.0:
                return
            if self.rng.next_u64() / ((1 << 64) - 1) >= probability:
                return
            byte_index = self.rng.next_below(16)
            state[byte_index] = apply_fault(self.spec, state[byte_index],
                                            self.rng)

        return hook
