"""Differential and correlation power analysis (paper refs [25, 30]).

Operates on :class:`~repro.power.trace.TraceSet` acquisitions of the
first AES round:

* :func:`dpa_attack` — Kocher/Jaffe/Jun difference of means: partition
  traces by one predicted S-box output bit; the correct key byte produces
  a differential spike.
* :func:`cpa_attack` — Pearson correlation between measured samples and
  the Hamming weight of the predicted S-box output.

Both scan *all* samples and keep the maximum statistic, so they need no
alignment knowledge — which is exactly why the *shuffling* hiding
countermeasure (misaligned samples) degrades them gracefully rather than
being sidestepped, and why masking (statistically independent
intermediates) defeats them outright at first order.
"""

from __future__ import annotations

import numpy as np

from repro.common import accepts_keyword
from repro.crypto.aes import SBOX
from repro.power.trace import TraceSet

_SBOX = np.array(SBOX, dtype=np.int64)
_HW = np.array([bin(x).count("1") for x in range(256)], dtype=np.float64)


def dpa_attack(traces: TraceSet, byte_index: int,
               target_bit: int = 0) -> tuple[int, np.ndarray]:
    """Difference-of-means DPA for one key byte.

    Returns (best key byte, per-candidate peak differential).
    """
    samples = traces.samples
    pt = traces.plaintext_bytes(byte_index)
    peaks = np.zeros(256)
    for candidate in range(256):
        predicted = (_SBOX[pt ^ candidate] >> target_bit) & 1
        ones = predicted == 1
        if not ones.any() or ones.all():
            continue  # degenerate partition: no differential defined
        diff = samples[ones].mean(axis=0) - samples[~ones].mean(axis=0)
        peaks[candidate] = np.abs(diff).max()
    return int(peaks.argmax()), peaks


def cpa_attack(traces: TraceSet,
               byte_index: int) -> tuple[int, np.ndarray]:
    """Correlation power analysis for one key byte.

    Returns (best key byte, per-candidate peak |correlation|).
    """
    samples = traces.samples
    pt = traces.plaintext_bytes(byte_index)
    centered = samples - samples.mean(axis=0)
    sample_norms = np.sqrt((centered ** 2).sum(axis=0))
    sample_norms[sample_norms == 0] = 1.0
    peaks = np.zeros(256)
    for candidate in range(256):
        hyp = _HW[_SBOX[pt ^ candidate]]
        hyp = hyp - hyp.mean()
        norm = np.sqrt((hyp ** 2).sum())
        if norm == 0:
            continue
        corr = hyp @ centered / (norm * sample_norms)
        peaks[candidate] = np.abs(corr).max()
    return int(peaks.argmax()), peaks


def dpa_recover_key(traces: TraceSet) -> bytes:
    """DPA over all 16 key bytes."""
    return bytes(dpa_attack(traces, b)[0] for b in range(16))


def cpa_recover_key(traces: TraceSet) -> bytes:
    """CPA over all 16 key bytes."""
    return bytes(cpa_attack(traces, b)[0] for b in range(16))


def key_recovery_rate(recovered: bytes, true_key: bytes) -> float:
    """Fraction of correct key bytes."""
    return sum(1 for a, b in zip(recovered, true_key) if a == b) / 16


def traces_to_success(acquire, analyse, true_key: bytes,
                      trace_counts: list[int],
                      threshold: float = 1.0,
                      batch: bool = True,
                      ensemble: bool | None = None) -> dict[int, float]:
    """Recovery rate as a function of trace count (the classic SCA curve).

    ``acquire(n)`` returns a TraceSet of ``n`` traces; ``analyse`` is one
    of the ``*_recover_key`` functions.  Acquires once at the maximum and
    re-analyses prefixes, as real evaluations do — ``subset`` hands back
    O(1) read-only views, so the sweep never copies the sample matrix.

    When ``acquire`` accepts a ``batch`` keyword it is forwarded
    (defaulting to the vectorized, bit-identical acquisition path); an
    acquire callable without the knob is invoked unchanged.  Acceptance
    is resolved with :func:`repro.common.accepts_keyword`, which sees
    through ``functools.partial`` chains, ``__wrapped__`` decorators and
    ``**kwargs`` forwarders — a bare ``inspect.signature(...).parameters``
    check silently dropped those wrappers back onto the scalar path.

    ``ensemble`` is the sweep-level spelling of the same knob (matrix
    evaluation and ``traces_to_success`` share it): at the power layer
    the vectorized many-instance path *is* the batched acquisition, so a
    non-``None`` ``ensemble`` overrides ``batch``.
    """
    if ensemble is not None:
        batch = bool(ensemble)
    if accepts_keyword(acquire, "batch"):
        full = acquire(max(trace_counts), batch=batch)
    else:
        full = acquire(max(trace_counts))
    rates: dict[int, float] = {}
    for count in sorted(trace_counts):
        rates[count] = key_recovery_rate(analyse(full.subset(count)),
                                         true_key)
    return rates
