"""Batched attack kernels: vectorized twins of the scalar attack suites.

The scalar cache side-channel attacks (:mod:`repro.attacks.cache_sca`)
step the live :class:`~repro.cache.hierarchy.CacheHierarchy` once per
(sample, line) through several layers of Python (``AttackerProcess`` →
``CacheHierarchy.access`` → ``Cache.access`` → policy objects), and the
Kocher timing attack re-simulates modexp prefix timing sample-by-sample
with two redundant big-int multiplications per modelled one.  These
kernels run the *same* experiments in array form:

* plaintexts are pre-drawn with :meth:`XorShiftRNG.u64_block` (the RNG
  stream and end state are bit-identical to the scalar per-sample
  ``rng.bytes(16)`` calls);
* the victim's full 160-lookup T-table access stream per encryption is
  derived with the numpy round-state recurrence from
  :mod:`repro.crypto.aes_batch` instead of interpreting the cipher;
* cache-state transitions run in a dedicated flat simulator
  (:class:`_SimHierarchy`) that is snapshot-initialized from the live
  caches, replays every event with the exact ``Cache.access`` /
  ``LRUPolicy`` / inclusive back-invalidation semantics, and writes the
  final state (lines, tags, LRU stamps, stats counters) back so the live
  hierarchy ends bit-identical to the scalar attack;
* the Kocher measured/lookahead phases share one reduced product per
  modelled multiplication instead of recomputing it for the timing model
  and the value update separately.

**Bit-identical or bust**: every kernel either reproduces the retained
scalar attack exactly — recovered keys, scores, RNG end states, cache
contents, replacement state, per-level stats, bus transaction counts,
core cycle/energy accounting — or refuses to run (``None`` from
:func:`try_run_batched`), in which case the caller falls back to the
scalar oracle.  The gates are deliberately type-exact: custom policies,
partitions, randomized index functions, LLC exclusions, bus controllers
/ snoopers / transforms, non-identity MMU roots, hooked ciphers and
subclassed RNGs all fall back.  ``tests/test_attack_differential.py``
holds the hypothesis differential suite proving the equivalence.
"""

from __future__ import annotations

import numpy as np

import repro.obs as obs
from repro.arch.base import AES_KEY_OFFSET, AES_TABLE_STRIDE, AESVictim
from repro.arch.null import NullArchitecture
from repro.attacks.base import AttackerProcess
from repro.cache.cache import Cache, _Line
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.policies import LRUPolicy
from repro.cpu.core import Core
from repro.cpu.speculative import SpeculativeCore
from repro.crypto.aes import TTableAES
from repro.crypto.aes_batch import (
    SBOX_TABLE,
    _mix_columns,
    _round_key_matrix,
    _SHIFT_ROWS,
)
from repro.crypto.modexp import EXTRA_REDUCTION_COST
from repro.crypto.rng import XorShiftRNG
from repro.crypto.rsa import RSA

#: Headroom kept below the 65536-entry clear thresholds of the MMU
#: identity cache and the speculative core's L1 view: a batched run adds
#: at most ~650 distinct entries (5*128 word-aligned table slots + two
#: key words), so staying this far under the bound guarantees the scalar
#: path would not have cleared mid-run either.
_DICT_HEADROOM = 1024


# ---------------------------------------------------------------------------
# Exact-twin cache hierarchy simulator
# ---------------------------------------------------------------------------


class _SimLevel:
    """Flat mirror of one :class:`Cache` level (LRU, unpartitioned).

    State per set: a ``tag -> way`` dict for O(1) hit checks (tags are
    unique within a set, so this is equivalent to ``list.index``), the
    tag list itself (preserving ``tags.index(None)`` first-free order),
    mutable ``[tag, addr, domain, dirty]`` line records, and the LRU
    stamp/last-use arrays with scalar-identical update order.
    """

    __slots__ = ("num_sets", "ways", "line_size", "lookup", "tags",
                 "lines", "stamps", "last_use", "hits", "misses",
                 "evictions", "flushes")

    def __init__(self, cache: Cache) -> None:
        self.num_sets = cache.num_sets
        self.ways = cache.ways
        self.line_size = cache.line_size
        self.tags = [list(ts) for ts in cache._tags]
        self.lookup = [{t: w for w, t in enumerate(ts) if t is not None}
                       for ts in cache._tags]
        self.lines = [[None if ln is None
                       else [ln.tag, ln.addr, ln.domain, ln.dirty]
                       for ln in ways]
                      for ways in cache._sets]
        self.stamps = [p._stamp for p in cache._policies]
        self.last_use = [list(p._last_use) for p in cache._policies]
        stats = cache.stats
        self.hits = stats.hits
        self.misses = stats.misses
        self.evictions = stats.evictions
        self.flushes = stats.flushes

    def writeback(self, cache: Cache) -> None:
        """Restore the live cache to this (final) state, recycling
        ``_Line`` records in place exactly like the scalar hot path."""
        sets, tags = cache._sets, cache._tags
        for idx in range(self.num_sets):
            live_ways, live_tags = sets[idx], tags[idx]
            sim_lines = self.lines[idx]
            for w in range(self.ways):
                rec = sim_lines[w]
                if rec is None:
                    live_ways[w] = None
                    live_tags[w] = None
                    continue
                line = live_ways[w]
                if line is None:
                    live_ways[w] = _Line(tag=rec[0], addr=rec[1],
                                         domain=rec[2], dirty=rec[3])
                else:
                    line.tag, line.addr = rec[0], rec[1]
                    line.domain, line.dirty = rec[2], rec[3]
                live_tags[w] = rec[0]
            policy = cache._policies[idx]
            policy._stamp = self.stamps[idx]
            policy._last_use[:] = self.last_use[idx]
        stats = cache.stats
        stats.hits = self.hits
        stats.misses = self.misses
        stats.evictions = self.evictions
        stats.flushes = self.flushes


class _SimHierarchy:
    """Exact twin of ``CacheHierarchy.access``/``flush_line`` over
    :class:`_SimLevel` arrays, keyed by line tag (``paddr >> shift``)."""

    __slots__ = ("l1s", "l2", "lat_l1", "lat_l1_l2", "lat_full", "shift",
                 "_hierarchy")

    def __init__(self, hierarchy: CacheHierarchy) -> None:
        self._hierarchy = hierarchy
        cfg = hierarchy.config
        self.l1s = [_SimLevel(l1) for l1 in hierarchy.l1s]
        self.l2 = _SimLevel(hierarchy.l2)
        self.lat_l1 = cfg.l1_latency
        self.lat_l1_l2 = cfg.l1_latency + cfg.l2_latency
        self.lat_full = cfg.l1_latency + cfg.l2_latency + cfg.dram_latency
        self.shift = cfg.line_size.bit_length() - 1

    # -- one cache level -----------------------------------------------------

    @staticmethod
    def _level_access(lv: _SimLevel, tag: int, domain,
                      is_write: bool) -> tuple[bool, int | None]:
        """(hit, evicted_line_addr) — the scalar ``Cache.access``."""
        idx = tag % lv.num_sets
        look = lv.lookup[idx]
        way = look.get(tag)
        if way is not None:
            lv.hits += 1
            stamp = lv.stamps[idx] + 1
            lv.stamps[idx] = stamp
            lv.last_use[idx][way] = stamp
            if is_write:
                lv.lines[idx][way][3] = True
            return True, None
        lv.misses += 1
        tags = lv.tags[idx]
        try:
            way = tags.index(None)
        except ValueError:
            lu = lv.last_use[idx]
            way = lu.index(min(lu))
        old = lv.lines[idx][way]
        tags[way] = tag
        look[tag] = way
        stamp = lv.stamps[idx] + 1
        lv.stamps[idx] = stamp
        lv.last_use[idx][way] = stamp
        addr = tag * lv.line_size
        if old is None:
            lv.lines[idx][way] = [tag, addr, domain, is_write]
            return False, None
        evicted = old[1]
        del look[old[0]]
        old[0], old[1], old[2], old[3] = tag, addr, domain, is_write
        lv.evictions += 1
        return False, evicted

    @staticmethod
    def _level_flush(lv: _SimLevel, tag: int) -> bool:
        idx = tag % lv.num_sets
        way = lv.lookup[idx].pop(tag, None)
        if way is None:
            return False
        lv.lines[idx][way] = None
        lv.tags[idx][way] = None
        lv.flushes += 1
        return True

    # -- hierarchy operations -------------------------------------------------

    def access(self, core: int, tag: int, domain=None,
               is_write: bool = False) -> int:
        """Serve one (cacheable) access; returns its latency."""
        hit, _ = self._level_access(self.l1s[core], tag, domain, is_write)
        if hit:
            return self.lat_l1
        hit, l2_evicted = self._level_access(self.l2, tag, domain, is_write)
        if hit:
            return self.lat_l1_l2
        if l2_evicted is not None:
            # Inclusive LLC: the victim line leaves every L1, in L1 order.
            ev_tag = l2_evicted >> self.shift
            for l1 in self.l1s:
                self._level_flush(l1, ev_tag)
        return self.lat_full

    def flush_line(self, tag: int) -> bool:
        """clflush across every level (the attacker's ``flush``)."""
        found = False
        for l1 in self.l1s:
            found |= self._level_flush(l1, tag)
        found |= self._level_flush(self.l2, tag)
        return found

    def writeback(self) -> None:
        """Restore the live hierarchy to the simulator's final state."""
        for lv, cache in zip(self.l1s, self._hierarchy.l1s):
            lv.writeback(cache)
        self.l2.writeback(self._hierarchy.l2)


# ---------------------------------------------------------------------------
# Gates: batch only what the simulator models exactly
# ---------------------------------------------------------------------------


def _hierarchy_batchable(hierarchy) -> bool:
    if type(hierarchy) is not CacheHierarchy:
        return False
    if hierarchy._llc_excluded:
        return False
    for cache in (*hierarchy.l1s, hierarchy.l2):
        if type(cache) is not Cache:
            return False
        if cache.partition is not None or cache.index_fn is not None:
            return False
        if any(type(p) is not LRUPolicy for p in cache._policies):
            return False
        if cache.line_size != hierarchy.config.line_size:
            return False
    return True


def _bus_batchable(bus) -> bool:
    return (not bus._controllers and not bus._snoopers
            and not bus._transforms)


def _cipher_batchable(cipher) -> bool:
    return (type(cipher) is TTableAES and cipher.leak_hook is None
            and cipher.fault_hook is None)


def _region_ok(regions, addr: int, need_cacheable: bool = False) -> bool:
    region = regions.find(addr)
    if region is None or region.device:
        return False
    return region.cacheable if need_cacheable else True


def _victim_batchable(victim, attacker) -> bool:
    """Gate the victim shapes :class:`_VictimModel` replays exactly."""
    from repro.attacks.cache_sca import SharedAESService
    soc = attacker.soc
    if type(victim) is SharedAESService:
        return (victim.soc is soc
                and _cipher_batchable(victim._cipher)
                and 0 <= victim.core_id < len(soc.hierarchy.l1s))
    if type(victim) is not AESVictim:
        return False
    arch = victim.arch
    if type(arch) is not NullArchitecture or arch.soc is not soc:
        return False
    if not _cipher_batchable(victim._cipher):
        return False
    handle = victim.handle
    if handle.base != handle.paddr or handle.domain is not None:
        return False
    if not 0 <= handle.core_id < min(len(soc.cores),
                                     len(soc.hierarchy.l1s)):
        return False
    core = soc.cores[handle.core_id]
    if type(core) not in (Core, SpeculativeCore):
        return False
    mmu = soc.mmus[handle.core_id]
    if mmu.root is not None:
        return False
    if len(mmu._identity_cache) > 65536 - _DICT_HEADROOM:
        return False
    if (type(core) is SpeculativeCore
            and len(core._l1_view) > 65536 - _DICT_HEADROOM):
        return False
    epm = core.config.energy_per_mem_pj
    if not (float(epm).is_integer() and float(core.energy_pj).is_integer()):
        return False
    # The whole enclave range must decode to one plain cacheable region
    # for the bus fast path and the cache path to apply.
    regions = soc.regions
    if not (_region_ok(regions, handle.base, need_cacheable=True)
            and _region_ok(regions, handle.base + handle.size - 1,
                           need_cacheable=True)):
        return False
    return regions.find(handle.base) is regions.find(
        handle.base + handle.size - 1)


# ---------------------------------------------------------------------------
# Victim models: replicate every side effect of one ``encrypt`` call
# ---------------------------------------------------------------------------


class _VictimModel:
    """Drives the simulator with a victim's exact access stream and
    replays the bookkeeping (`encryptions`, core cycles/energy, bus
    transactions, MMU identity cache, speculative L1 view) at the end.

    Two shapes are supported, matching the two victims the scalar
    attacks accept:

    * :class:`SharedAESService` — 160 bare ``hierarchy.access`` calls
      per encryption, no core, no bus;
    * :class:`AESVictim` on :class:`NullArchitecture` with an identity
      MMU — two key-word reads plus 160 lookups through
      ``Core.read_mem`` (TLB constant + bus fast path + cache latency
      charge + L1-view note), enclave enter/exit being a domain no-op.
    """

    def __init__(self, victim, sim: _SimHierarchy, soc) -> None:
        self.victim = victim
        self.sim = sim
        self.soc = soc
        self.encrypts = 0
        self.is_enclave = type(victim) is AESVictim
        self.shift = sim.shift
        if self.is_enclave:
            handle = victim.handle
            self.base = handle.base
            self.core = soc.cores[handle.core_id]
            mmu = soc.mmus[handle.core_id]
            self.mmu = mmu
            self.tlb_lat = (mmu.tlb.access_latency(True)
                            if mmu.tlb is not None else 0)
            key_line = (self.base + AES_KEY_OFFSET) >> self.shift
            self.key_tags = (key_line,
                             (self.base + AES_KEY_OFFSET + 8) >> self.shift)
            self.word_offsets: set[int] = {AES_KEY_OFFSET,
                                           AES_KEY_OFFSET + 8}
            self.cycles = 0
        else:
            self.base = victim.table_paddr
            self.vcore = victim.core_id
            self.vdomain = victim.domain

    def lookup_tags(self, plaintexts: np.ndarray) -> list[list[int]]:
        """Per-sample line-tag streams of the victim's 160 T-table
        lookups, via the numpy round-state recurrence.

        Round-entry state ``E_1 = pt ^ rk0``; lookup ``j`` of round ``r``
        reads state byte ``_SHIFT_ROWS[j]`` of ``E_r`` in table ``j % 4``
        (rounds 1-9) or table 4 (round 10) — exactly the scalar
        ``TTableAES.encrypt_block`` lookup order.
        """
        n = plaintexts.shape[0]
        rk = _round_key_matrix(self.victim._cipher.round_keys)
        base, shift = self.base, self.shift
        tags = np.empty((n, 160), dtype=np.int64)
        round_tables = np.array([j % 4 for j in range(16)],
                                dtype=np.int64) * AES_TABLE_STRIDE
        final_tables = np.full(16, 4 * AES_TABLE_STRIDE, dtype=np.int64)
        state = plaintexts ^ rk[0]
        for rnd in range(1, 11):
            idx = state[:, _SHIFT_ROWS].astype(np.int64)
            offs = round_tables if rnd < 10 else final_tables
            # Both victims read the (offset & ~7)-aligned word: the
            # enclave masks the offset, the service masks the (64-
            # aligned) table base plus offset — identical addresses.
            aligned = (offs[np.newaxis, :] + idx * 4) & ~7
            tags[:, (rnd - 1) * 16:rnd * 16] = (base + aligned) >> shift
            if self.is_enclave and n:
                self.word_offsets.update(np.unique(aligned).tolist())
            if rnd < 10:
                sub = SBOX_TABLE[state]
                state = _mix_columns(sub[:, _SHIFT_ROWS]) ^ rk[rnd]
        return tags.tolist()

    def encrypt(self, tag_row: list[int]) -> int:
        """Replay one encryption's cache events; returns the victim
        core's cycle delta (0 for the bare service victim)."""
        self.encrypts += 1
        sim_access = self.sim.access
        if not self.is_enclave:
            vcore, vdomain = self.vcore, self.vdomain
            for tag in tag_row:
                sim_access(vcore, tag, vdomain)
            return 0
        core_id = self.victim.handle.core_id
        k1, k2 = self.key_tags
        latency = sim_access(core_id, k1, None)
        latency += sim_access(core_id, k2, None)
        for tag in tag_row:
            latency += sim_access(core_id, tag, None)
        cycles = latency + 162 * self.tlb_lat
        self.cycles += cycles
        return cycles

    def finalize(self) -> None:
        """Write the victim-side bookkeeping back to the live objects."""
        self.victim.encryptions += self.encrypts
        if not self.is_enclave or not self.encrypts:
            return
        core = self.core
        events = 162 * self.encrypts
        core.cycles += self.cycles
        core.energy_pj += events * core.config.energy_per_mem_pj
        core.domain = None  # state after the last exit_enclave
        self.soc.bus.transaction_count += events
        memory = self.soc.memory
        view = core._l1_view if type(core) is SpeculativeCore else None
        for offset in self.word_offsets:
            va = self.base + offset
            # Replay the identity translation (populates the MMU cache
            # exactly as the scalar per-access path would have).
            self.mmu.translate(va, "read", core.privilege,
                               secure=core.world.is_secure)
            if view is not None:
                view[va] = int.from_bytes(memory.read_bytes(va, 8),
                                          "little")


class _AttackerModel:
    """The attacker's primitives over the simulator + bus accounting."""

    __slots__ = ("sim", "core_id", "domain", "threshold", "txns")

    def __init__(self, attacker: AttackerProcess, sim: _SimHierarchy) -> None:
        self.sim = sim
        self.core_id = attacker.core_id
        self.domain = attacker.domain
        self.threshold = attacker.hit_threshold
        self.txns = 0

    def timed_read(self, tag: int) -> int:
        self.txns += 1  # the bus read of the scalar ``timed_read``
        return self.sim.access(self.core_id, tag, self.domain)

    def touch(self, tag: int) -> None:
        self.sim.access(self.core_id, tag, self.domain)

    def flush(self, tag: int) -> None:
        self.sim.flush_line(tag)

    def finalize(self, bus) -> None:
        bus.transaction_count += self.txns


# ---------------------------------------------------------------------------
# Cache-SCA kernels
# ---------------------------------------------------------------------------


def _draw_plaintexts(rng: XorShiftRNG, count: int, target_byte: int,
                     values: list[int]) -> np.ndarray:
    """``count`` plaintext rows from the exact scalar RNG stream.

    Each scalar sample draws ``rng.bytes(16)`` (two ``next_u64`` values,
    little-endian) and then patches the target byte's high nibble; rows
    are grouped contiguously per candidate value in scalar loop order
    ([value][sample] for Prime+Probe / Flush+Reload, [value][line]
    [sample] for Evict+Time — the patch only depends on the value, so
    both group into ``count // len(values)`` rows per value).
    """
    if count == 0:
        return np.zeros((0, 16), dtype=np.uint8)
    block = np.array(rng.u64_block(2 * count), dtype="<u8")
    pts = block.view(np.uint8).reshape(count, 16).copy()
    col = pts[:, target_byte]
    per_value = count // len(values)
    for vi, v in enumerate(values):
        rows = slice(vi * per_value, (vi + 1) * per_value)
        col[rows] = (v << 4) | (col[rows] & 0x0F)
    return pts


def _cache_gates(attack) -> bool:
    """Common gates for the three cache attacks — pure, no side
    effects, so a ``False`` (fall back to scalar) leaves the SoC
    untouched for the scalar oracle to run."""
    attacker = attack.attacker
    if type(attacker) is not AttackerProcess:
        return False
    if type(attack.rng) is not XorShiftRNG:
        return False
    soc = attacker.soc
    hierarchy = soc.hierarchy
    if not _hierarchy_batchable(hierarchy):
        return False
    if not _bus_batchable(soc.bus):
        return False
    if not 0 <= attacker.core_id < len(hierarchy.l1s):
        return False
    if not _victim_batchable(attack.victim, attacker):
        return False
    # Every attacker-addressable line must decode to plain memory, or
    # the scalar bus read would have faulted instead of timing it.
    regions = soc.regions
    for page in attacker.pages:
        if not (_region_ok(regions, page)
                and _region_ok(regions, page + 4095)):
            return False
    return True


def _build_models(attack):
    """Snapshot the live hierarchy and build the event models.  Call
    only after :func:`_cache_gates` passed (and after any live
    preconditions ran, so the snapshot captures their effects)."""
    attacker = attack.attacker
    sim = _SimHierarchy(attacker.soc.hierarchy)
    model = _VictimModel(attack.victim, sim, attacker.soc)
    return sim, model, _AttackerModel(attacker, sim)


def _finalize_cache_run(attack, sim, model, att):
    sim.writeback()
    model.finalize()
    att.finalize(attack.attacker.soc.bus)


def _run_prime_probe(attack):
    from repro.attacks.cache_sca import (
        BYTE_TO_TABLE,
        LINES_PER_TABLE,
        _best_nibble,
        _grade,
        _plaintext_nibbles,
    )
    if not _cache_gates(attack):
        return None
    sim, model, att = _build_models(attack)
    cfg = attack.config
    shift = sim.shift
    span = obs.span
    recovered: dict[int, int] = {}
    coverage = 0.0
    for target_byte in cfg.target_bytes:
        with span("prime+probe:byte", cat="attack", byte=target_byte):
            table = BYTE_TO_TABLE[target_byte]
            eviction = attack._eviction_sets(table)
            covered = sum(1 for addrs in eviction
                          if len(addrs) >= attack._ways)
            coverage = max(coverage, covered / LINES_PER_TABLE)
            if covered < LINES_PER_TABLE:
                obs.event("prime+probe.blocked", cat="attack",
                          byte=target_byte, covered=covered)
                continue
            ev_tags = [[addr >> shift for addr in addrs]
                       for addrs in eviction]
            values = _plaintext_nibbles(cfg)
            samples = cfg.samples_per_value
            pts = _draw_plaintexts(attack.rng, len(values) * samples,
                                   target_byte, values)
            tag_rows = model.lookup_tags(pts)
            counts = np.zeros((len(values), LINES_PER_TABLE))
            touch, timed_read = att.touch, att.timed_read
            threshold = att.threshold
            row = 0
            for vi in range(len(values)):
                crow = counts[vi]
                for _ in range(samples):
                    for tags in ev_tags:
                        for tag in tags:
                            touch(tag)
                    model.encrypt(tag_rows[row])
                    row += 1
                    for li, tags in enumerate(ev_tags):
                        displaced = 0
                        for tag in tags:
                            if timed_read(tag) > threshold:
                                displaced += 1
                        crow[li] += displaced
            recovered[target_byte] = _best_nibble(values, counts)

    _finalize_cache_run(attack, sim, model, att)
    score = _grade(recovered, attack.victim.key)
    from repro.attacks.base import AttackCategory, AttackResult
    return AttackResult(
        name=attack.NAME, category=AttackCategory.MICROARCHITECTURAL,
        success=score >= 0.75 and len(recovered) == len(cfg.target_bytes),
        score=score,
        leaked={b: f"high nibble {n:#x}" for b, n in recovered.items()},
        details={"recovered": recovered, "set_coverage": coverage,
                 "bytes_attacked": list(cfg.target_bytes)})


def _run_flush_reload(attack):
    from repro.attacks.base import AttackCategory, AttackResult
    from repro.attacks.cache_sca import (
        BYTE_TO_TABLE,
        LINE_SIZE,
        LINES_PER_TABLE,
        _best_nibble,
        _grade,
        _plaintext_nibbles,
    )
    if not _cache_gates(attack):
        return None
    cfg = attack.config
    base = attack.victim.table_paddr
    # The attacker's timed reloads go through the bus; the monitored
    # table lines must decode to plain memory (the enclave-range gate
    # covers this for AESVictim, but the shared service's tables live
    # wherever ``table_paddr`` points).
    regions = attack.attacker.soc.regions
    lo = attack._line_paddr(0, 0)
    hi = attack._line_paddr(4, LINES_PER_TABLE - 1)
    if not (_region_ok(regions, lo) and _region_ok(regions, hi)
            and regions.find(lo) is regions.find(hi)):
        return None
    # Precondition probe, run live (scalar-identical side effects) —
    # only after the gates passed, so a fallback never double-runs it.
    ok, _ = attack.attacker.try_read(lo)
    if not ok:
        return AttackResult(
            name=attack.NAME,
            category=AttackCategory.MICROARCHITECTURAL,
            success=False, score=0.0,
            details={"blocked": "victim memory not attacker-addressable"})

    # Snapshot only now, so the live try_read's cache effects are in.
    sim, model, att = _build_models(attack)
    shift = sim.shift
    span = obs.span
    recovered: dict[int, int] = {}
    for target_byte in cfg.target_bytes:
        with span("flush+reload:byte", cat="attack", byte=target_byte):
            table = BYTE_TO_TABLE[target_byte]
            line_tags = [(base + table * AES_TABLE_STRIDE
                          + line * LINE_SIZE) >> shift
                         for line in range(LINES_PER_TABLE)]
            values = _plaintext_nibbles(cfg)
            samples = cfg.samples_per_value
            pts = _draw_plaintexts(attack.rng, len(values) * samples,
                                   target_byte, values)
            tag_rows = model.lookup_tags(pts)
            counts = np.zeros((len(values), LINES_PER_TABLE))
            flush, timed_read = att.flush, att.timed_read
            threshold = att.threshold
            row = 0
            for vi in range(len(values)):
                crow = counts[vi]
                for _ in range(samples):
                    for tag in line_tags:
                        flush(tag)
                    model.encrypt(tag_rows[row])
                    row += 1
                    for li, tag in enumerate(line_tags):
                        if timed_read(tag) <= threshold:
                            crow[li] += 1.0
            recovered[target_byte] = _best_nibble(values, counts)

    _finalize_cache_run(attack, sim, model, att)
    score = _grade(recovered, attack.victim.key)
    return AttackResult(
        name=attack.NAME, category=AttackCategory.MICROARCHITECTURAL,
        success=score >= 0.75, score=score,
        details={"recovered": recovered})


def _run_evict_time(attack):
    from repro.attacks.base import AttackCategory, AttackResult
    from repro.attacks.cache_sca import (
        BYTE_TO_TABLE,
        LINE_SIZE,
        LINES_PER_TABLE,
        _best_nibble,
        _grade,
        _plaintext_nibbles,
    )
    if type(attack.victim) is not AESVictim:
        # ``_victim_cycles`` dereferences ``victim.arch``: the bare
        # shared service has no core accounting to time.
        return None
    if not _cache_gates(attack):
        return None
    sim, model, att = _build_models(attack)
    cfg = attack.config
    shift = sim.shift
    llc = attack.attacker.soc.hierarchy.l2
    recovered: dict[int, int] = {}
    for target_byte in cfg.target_bytes:
        table = BYTE_TO_TABLE[target_byte]
        eviction = []
        for line in range(LINES_PER_TABLE):
            paddr = attack.victim.table_paddr \
                + table * AES_TABLE_STRIDE + line * LINE_SIZE
            eviction.append(attack.attacker.eviction_addresses_for_set(
                llc.set_index(paddr), attack._ways))
        if any(len(addrs) < attack._ways for addrs in eviction):
            continue  # defence: sets unreachable
        ev_tags = [[addr >> shift for addr in addrs] for addrs in eviction]
        values = _plaintext_nibbles(cfg)
        samples = cfg.samples_per_value
        pts = _draw_plaintexts(
            attack.rng, len(values) * LINES_PER_TABLE * samples,
            target_byte, values)
        tag_rows = model.lookup_tags(pts)
        times = np.zeros((len(values), LINES_PER_TABLE))
        touch = att.touch
        row = 0
        for vi in range(len(values)):
            for line in range(LINES_PER_TABLE):
                total = 0
                tags = ev_tags[line]
                for _ in range(samples):
                    for tag in tags:
                        touch(tag)
                    total += model.encrypt(tag_rows[row])
                    row += 1
                times[vi, line] += total
        recovered[target_byte] = _best_nibble(values, times)

    _finalize_cache_run(attack, sim, model, att)
    score = _grade(recovered, attack.victim.key)
    return AttackResult(
        name=attack.NAME, category=AttackCategory.MICROARCHITECTURAL,
        success=score >= 0.75 and len(recovered) == len(cfg.target_bytes),
        score=score,
        details={"recovered": recovered})


# ---------------------------------------------------------------------------
# Kocher timing kernel
# ---------------------------------------------------------------------------


def _kocher_recover(accs, ts, ciphertexts, measured, n, attack_bits,
                    forced=None):
    """Batched twin of ``KocherTimingAttack._recover_path``.

    The scalar pass computes each modular product twice — once inside
    ``mult_time`` for the timing model and once for the value update —
    and the lookahead flags recompute next-step squares the following
    iteration needs anyway.  Here every product is computed once and the
    chosen hypothesis's square (``f0p``/``f1p``) is carried into the
    next step as its ``a0``, cutting the big-int multiplications per
    (step, sample) from six to three.  Floats are summed in the scalar
    order and the partition statistic *is* the scalar staticmethod, so
    every decision, margin, and recovered bit is bit-identical.
    """
    from repro.attacks.timing import KocherTimingAttack

    pdiff = KocherTimingAttack._partition_diff
    half = n >> 1
    nsamples = len(accs)
    ts = list(ts)
    sqs = [(a * a) % n for a in accs]
    bits: list[int] = []
    margins: list[float] = []
    for step in range(attack_bits):
        t0s = [0.0] * nsamples
        t1s = [0.0] * nsamples
        res0 = [0.0] * nsamples
        res1 = [0.0] * nsamples
        flag0 = [False] * nsamples
        flag1 = [False] * nsamples
        flag_mult = [False] * nsamples
        f0ps = [0] * nsamples
        f1ps = [0] * nsamples
        for s in range(nsamples):
            a0 = sqs[s]
            t0 = ts[s] + (3.0 if a0 >= half else 2.0)
            pm = (a0 * ciphertexts[s]) % n
            mul = pm >= half
            t1 = t0 + (3.0 if mul else 2.0)
            f0p = (a0 * a0) % n
            f1p = (pm * pm) % n
            total = measured[s]
            t0s[s] = t0
            t1s[s] = t1
            res0[s] = total - t0
            res1[s] = total - t1
            flag0[s] = f0p >= half
            flag1[s] = f1p >= half
            flag_mult[s] = mul
            f0ps[s] = f0p
            f1ps[s] = f1p
            sqs[s] = pm  # stash a1; overwritten below by the choice
        diff0 = pdiff(res0, flag0)
        diff1 = pdiff(res1, flag1)
        diff_mult = pdiff(res0, flag_mult)
        score1 = (diff1 + diff_mult) / 2
        if forced is not None and step in forced:
            bit = forced[step]
        else:
            bit = 1 if score1 > diff0 else 0
        bits.append(bit)
        margins.append(abs(score1 - diff0))
        if bit:
            ts = t1s
            sqs = f1ps
        else:
            ts = t0s
            sqs = f0ps
    return bits, margins


def _kocher_backtrack(bits, margins, accs, ts, ciphertexts, measured, n,
                      attack_bits, rounds=3):
    """Batched twin of ``KocherTimingAttack._backtrack`` (same flip
    policy over the batched recover pass)."""
    tried: set[int] = set()
    for _ in range(rounds):
        if len(margins) < 3:
            return bits
        tail_mean = sum(margins[-3:]) / 3
        if tail_mean > EXTRA_REDUCTION_COST / 6:
            return bits
        candidates = [i for i in range(len(margins)) if i not in tried]
        if not candidates:
            return bits
        weakest = min(candidates, key=lambda i: margins[i])
        tried.add(weakest)
        forced = {i: bits[i] for i in range(weakest)}
        forced[weakest] = 1 - bits[weakest]
        alt_bits, alt_margins = _kocher_recover(
            accs, ts, ciphertexts, measured, n, attack_bits, forced=forced)
        after = slice(weakest + 1, None)
        if sum(alt_margins[after]) > sum(margins[after]):
            bits, margins = alt_bits, alt_margins
    return bits


def _run_kocher_timing(attack):
    from repro.attacks.base import AttackCategory, AttackResult

    victim = attack.victim
    if type(victim) is not RSA or victim.constant_time:
        return None  # the ladder path stays on the scalar oracle
    if type(attack.rng) is not XorShiftRNG:
        return None
    n = victim.key.n
    d = victim.key.d
    if n <= 2 or d.bit_length() < 1:
        return None  # degenerate keys: identical scalar error behaviour
    rng = attack.rng
    samples = attack.samples
    half = n >> 1
    bits_total = d.bit_length()

    # Ciphertexts from the exact scalar stream: next_below(n-2) + 1.
    ciphertexts = [u % (n - 2) + 1 for u in rng.u64_block(samples)]

    # Measured phase — scalar ``modexp_square_multiply`` with each
    # reduced product computed once and reused as the timing-model
    # product (``mult_time`` recomputes it in the scalar path).
    exp_bits = [(d >> i) & 1 for i in range(bits_total - 1, -1, -1)]
    measured: list[float] = []
    for c in ciphertexts:
        r = 1 % n
        total = 0.0
        for bit in exp_bits:
            p = (r * r) % n
            total += 3.0 if p >= half else 2.0
            r = p
            if bit:
                p = (r * c) % n
                total += 3.0 if p >= half else 2.0
                r = p
        measured.append(total)
    if attack.noise_std > 0:
        for s, g in enumerate(rng.gauss_block(samples, 0.0,
                                              attack.noise_std)):
            measured[s] += abs(g)

    # Per-sample state after the exponent's leading 1-bit.
    accs: list[int] = []
    ts: list[float] = []
    for c in ciphertexts:
        acc = 1 % n
        p = (acc * acc) % n
        t = 3.0 if p >= half else 2.0
        acc = p
        p = (acc * c) % n
        t += 3.0 if p >= half else 2.0
        accs.append(p)
        ts.append(t)

    attack_bits = min(attack.max_bits, bits_total - 1)
    recovered_bits, margins = _kocher_recover(
        accs, ts, ciphertexts, measured, n, attack_bits)
    recovered_bits = _kocher_backtrack(
        recovered_bits, margins, accs, ts, ciphertexts, measured, n,
        attack_bits)

    truth = [(d >> (bits_total - 2 - i)) & 1 for i in range(attack_bits)]
    correct = sum(1 for a, b in zip(recovered_bits, truth) if a == b)
    score = correct / attack_bits if attack_bits else 0.0
    return AttackResult(
        name=attack.NAME, category=AttackCategory.PHYSICAL,
        success=score >= 0.9, score=score,
        leaked=recovered_bits if score >= 0.9 else None,
        details={"bits_attacked": attack_bits, "correct": correct,
                 "constant_time_victim": victim.constant_time,
                 "samples": attack.samples})


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

_KERNELS: dict | None = None


def try_run_batched(attack):
    """Run ``attack``'s batched kernel, or ``None`` for scalar fallback.

    Dispatch is type-exact (``type(attack)``), so subclassed attacks
    always run their own (scalar) code.
    """
    global _KERNELS
    if _KERNELS is None:
        from repro.attacks.cache_sca import (
            EvictTimeAttack,
            FlushReloadAttack,
            PrimeProbeAttack,
        )
        from repro.attacks.timing import KocherTimingAttack

        _KERNELS = {
            PrimeProbeAttack: _run_prime_probe,
            FlushReloadAttack: _run_flush_reload,
            EvictTimeAttack: _run_evict_time,
            KocherTimingAttack: _run_kocher_timing,
        }
    kernel = _KERNELS.get(type(attack))
    return kernel(attack) if kernel is not None else None
