"""Per-adversary attack suites as pickling-safe module functions.

These used to be methods on ``EvaluationMatrix``; they live here so a
``ProcessPoolExecutor`` worker can run any ``(platform, category)`` cell
by reference — a suite is a pure function of ``(arch, rng, knobs)`` with
no instance state behind it.  Each cell passes its *own* independently
seeded RNG (see :mod:`repro.runner.seeding`), so no suite can perturb
another's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import repro.obs as obs
from repro.arch.null import NullArchitecture
from repro.attacks.base import AttackCategory, AttackResult, AttackerProcess
from repro.attacks.cache_sca import (
    FlushReloadAttack,
    SharedAESService,
    _CacheAttackConfig,
)
from repro.attacks.dpa import cpa_recover_key, key_recovery_rate
from repro.attacks.fault_attacks import BellcoreRSAAttack
from repro.attacks.meltdown import MeltdownAttack
from repro.attacks.software import (
    CodeInjectionAttack,
    DMAAttack,
    KernelMemoryProbeAttack,
)
from repro.attacks.spectre import SpectreV1Attack
from repro.attacks.timing import KocherTimingAttack
from repro.crypto.aes import AES128
from repro.crypto.rng import XorShiftRNG
from repro.crypto.rsa import RSA, generate_rsa_key
from repro.power.instrument import capture_aes_traces
from repro.power.leakage import HammingWeightModel


@dataclass(frozen=True)
class MatrixKnobs:
    """Attack sizing; quick mode keeps the matrix fast for tests.

    ``fr_samples`` is 12 even in quick mode: at 8, Flush+Reload's byte
    vote is marginal and roughly 2% of ``(seed, platform)`` pairs
    measured 0.5 instead of 1.0 — the grid must be seed-invariant.

    ``sweep_instances``/``sweep_iters`` size the workload cell's kernel
    calibration sweep (:mod:`repro.core.sweep`): N seed-varied instances
    running an ``iters``-iteration kernel.  Quick keeps them small so
    tier-1 tests that execute real cells stay fast; the sweep is the
    part of a cell the ``ensemble=`` knob vectorizes, and its summary is
    bit-identical either way — the knob sizes the measurement, never
    changes it.
    """

    secret_len: int = 4
    traces: int = 300
    fr_samples: int = 12
    fr_values: int = 8
    rsa_bits: int = 64
    timing_samples: int = 600
    timing_bits: int = 8
    sweep_instances: int = 12
    sweep_iters: int = 48

    @classmethod
    def quick(cls) -> "MatrixKnobs":
        return cls()

    @classmethod
    def full(cls) -> "MatrixKnobs":
        return cls(secret_len=8, traces=1000, fr_samples=12, fr_values=8,
                   rsa_bits=96, timing_samples=1200, timing_bits=16,
                   sweep_instances=64, sweep_iters=160)

    def as_key(self) -> tuple[tuple[str, int], ...]:
        """Canonical, hashable, picklable form (cache-key material)."""
        return tuple(sorted((f.name, getattr(self, f.name))
                            for f in fields(self)))

    @classmethod
    def from_key(cls, key: tuple[tuple[str, int], ...]) -> "MatrixKnobs":
        return cls(**dict(key))


def remote_suite(arch: NullArchitecture, rng: XorShiftRNG,
                 knobs: MatrixKnobs) -> list[AttackResult]:
    with obs.span("attack:code-injection", cat="attack"):
        return [CodeInjectionAttack(arch).run()]


def local_suite(arch: NullArchitecture, rng: XorShiftRNG,
                knobs: MatrixKnobs) -> list[AttackResult]:
    dram = arch.soc.regions.get("dram")
    secret_paddr = dram.base + dram.size // 2 - 0x8000
    secret = rng.bytes(8)
    arch.soc.memory.write_bytes(secret_paddr, secret)
    with obs.span("attack:kernel-memory-probe", cat="attack"):
        probe = KernelMemoryProbeAttack(arch, secret_paddr=secret_paddr,
                                        secret_value=secret).run()
    with obs.span("attack:dma", cat="attack"):
        dma = DMAAttack(arch, secret_paddr, expected=secret).run()
    return [probe, dma]


def microarch_suite(arch: NullArchitecture, rng: XorShiftRNG,
                    knobs: MatrixKnobs,
                    batch: bool = False) -> list[AttackResult]:
    """``batch`` routes the Flush+Reload cell through the batched attack
    kernels (:mod:`repro.attacks.batch`) — an execution strategy, not a
    measurement input: results, RNG streams and SoC end state are
    bit-identical to the scalar path, with automatic scalar fallback
    for configurations the kernels don't cover."""
    soc = arch.soc
    secret = bytes(0x41 + rng.next_below(26)
                   for _ in range(knobs.secret_len))
    with obs.span("attack:spectre-v1", cat="attack"):
        results = [SpectreV1Attack(soc, secret, rng=rng).run()]
    with obs.span("attack:meltdown", cat="attack"):
        results.append(MeltdownAttack(soc, secret).run())
    service = SharedAESService(soc, rng.bytes(16), core_id=0)
    attacker_core = min(1, len(soc.cores) - 1)
    attacker = AttackerProcess(arch, core_id=attacker_core)
    config = _CacheAttackConfig(
        samples_per_value=knobs.fr_samples,
        plaintext_values=knobs.fr_values,
        target_bytes=(0, 5))
    with obs.span("attack:flush-reload", cat="attack",
                  samples=knobs.fr_samples, values=knobs.fr_values):
        results.append(FlushReloadAttack(service, attacker, rng,
                                         config, batch=batch).run())
    return results


def physical_suite(arch: NullArchitecture, rng: XorShiftRNG,
                   knobs: MatrixKnobs,
                   batch: bool = False) -> list[AttackResult]:
    # Power: CPA on an unprotected AES running on the device.  Acquisition
    # is batched (bit-identical to the scalar reference; repro.power.diff
    # proves it), so the cell's payload digest is unchanged.
    aes_key = rng.bytes(16)
    traces = capture_aes_traces(
        lambda leak: AES128(aes_key, leak_hook=leak), knobs.traces,
        HammingWeightModel(noise_std=1.0, rng=XorShiftRNG(rng.next_u64())),
        rng=XorShiftRNG(rng.next_u64()), batch=True)
    with obs.span("attack:cpa-power", cat="attack", traces=knobs.traces):
        rate = key_recovery_rate(cpa_recover_key(traces), aes_key)
    cpa_result = AttackResult(
        name="cpa-power", category=AttackCategory.PHYSICAL,
        success=rate >= 0.9, score=rate,
        details={"traces": knobs.traces})
    # Faults: Bellcore on an unprotected CRT signer.
    rsa_key = generate_rsa_key(knobs.rsa_bits,
                               XorShiftRNG(rng.next_u64()))
    with obs.span("attack:bellcore-rsa", cat="attack",
                  rsa_bits=knobs.rsa_bits):
        bellcore = BellcoreRSAAttack(RSA(rsa_key),
                                     rng=XorShiftRNG(rng.next_u64())).run()
    # Timing: Kocher against square-and-multiply.
    with obs.span("attack:kocher-timing", cat="attack",
                  samples=knobs.timing_samples):
        timing = KocherTimingAttack(
            RSA(rsa_key), samples=knobs.timing_samples,
            max_bits=knobs.timing_bits,
            rng=XorShiftRNG(rng.next_u64()), batch=batch).run()
    return [cpa_result, bellcore, timing]


#: Suite entry point per adversary category, in Figure 1 row order.
SUITES = {
    AttackCategory.REMOTE: remote_suite,
    AttackCategory.LOCAL: local_suite,
    AttackCategory.MICROARCHITECTURAL: microarch_suite,
    AttackCategory.PHYSICAL: physical_suite,
}

#: PlatformProfile attribute holding the category's exposure prior.
PRIOR_ATTRS = {
    AttackCategory.MICROARCHITECTURAL: "co_residency_prior",
    AttackCategory.PHYSICAL: "physical_access_prior",
}
