"""Meltdown: reading kernel memory from user space (paper ref [29]).

The attack "exploits the time window between the cause of an exception
and its actual raise at retirement": a user-mode load of a kernel address
fails the privilege check, but on a vulnerable core the loaded value is
forwarded to dependent transient instructions first.  The dependent
probe-array access transmits the byte through the cache; the architectural
fault is absorbed by a signal handler (``fault_resume``).

Two mitigations are separately testable:

* **hardware** — ``fault_at_retirement=False`` (permission checked before
  forwarding), the fixed-silicon behaviour;
* **software (KPTI)** — unmap the kernel page instead of mapping it
  supervisor-only: the walk then has no physical address to forward.
"""

from __future__ import annotations

from repro.attacks.base import AttackCategory, AttackResult
from repro.common import PrivilegeLevel
from repro.cpu.soc import SoC
from repro.isa import assemble
from repro.memory.paging import PAGE_SIZE, PageFlags, PageTable

PROBE_STRIDE = 64


class MeltdownAttack:
    """User-space attacker reading a kernel secret via fault forwarding."""

    NAME = "meltdown-us"

    def __init__(self, soc: SoC, kernel_secret: bytes,
                 kpti: bool = False) -> None:
        self.soc = soc
        self.secret = kernel_secret
        self.kpti = kpti
        dram = soc.regions.get("dram")
        self.kernel_paddr = dram.base + 0x50_0000
        self.probe_paddr = dram.base + 0x51_0000
        self.code_paddr = dram.base + 0x56_0000
        self._setup()

    def _setup(self) -> None:
        soc = self.soc
        for i, byte in enumerate(self.secret):
            soc.memory.write_bytes(self.kernel_paddr + i * 8, bytes([byte]))

        # The attacker's address space, as the OS would build it: user
        # code + probe user-accessible, the kernel page supervisor-only
        # (or absent entirely under KPTI).
        self.page_table: PageTable = soc.make_page_table(asid=3)
        user = PageFlags.PRESENT | PageFlags.USER | PageFlags.WRITABLE
        self.page_table.map_range(self.code_paddr, self.code_paddr,
                                  2 * PAGE_SIZE, user | PageFlags.EXECUTE)
        self.page_table.map_range(self.probe_paddr, self.probe_paddr,
                                  4 * PAGE_SIZE, user)
        if not self.kpti:
            self.page_table.map(self.kernel_paddr, self.kernel_paddr,
                                PageFlags.PRESENT | PageFlags.WRITABLE)

        text = f"""
        attacker:                  # r1 = kernel address to read
            load r2, 0(r1)         # faults; value forwarded transiently
            li   r3, 255
            and  r2, r2, r3
            li   r4, 6
            shl  r2, r2, r4
            li   r3, {self.probe_paddr}
            add  r3, r3, r2
            load r5, 0(r3)         # transmit through the cache
        resume:
            halt
        """
        self.program = assemble(text, base=self.code_paddr,
                                name="meltdown-attacker")

    def _flush_probe(self) -> None:
        for byte in range(256):
            self.soc.hierarchy.flush_line(self.probe_paddr
                                          + byte * PROBE_STRIDE)

    def _probe_hot_byte(self) -> int | None:
        threshold = self.soc.hierarchy.hit_threshold
        hits = [byte for byte in range(256)
                if self.soc.hierarchy.timed_access(
                    0, self.probe_paddr + byte * PROBE_STRIDE) <= threshold]
        return hits[0] if hits else None

    def _attempt(self, kernel_addr: int) -> int | None:
        core = self.soc.cores[0]
        core.mmu.set_context(self.page_table.root, self.page_table.asid)
        core.privilege = PrivilegeLevel.USER
        core.load_program(self.program, entry="attacker")
        core.fault_resume = self.program.address_of("resume")
        core.set_reg(1, kernel_addr)
        self._flush_probe()
        try:
            core.run(max_steps=32)
        finally:
            core.fault_resume = None
            core.privilege = PrivilegeLevel.KERNEL
            core.mmu.set_context(None)
        return self._probe_hot_byte()

    def run(self) -> AttackResult:
        recovered = bytearray()
        faults = 0
        for i in range(len(self.secret)):
            byte = self._attempt(self.kernel_paddr + i * 8)
            recovered.append(byte if byte is not None else 0)
            faults += 1
        correct = sum(1 for a, b in zip(recovered, self.secret) if a == b)
        score = correct / len(self.secret) if self.secret else 0.0
        return AttackResult(
            name=self.NAME, category=AttackCategory.MICROARCHITECTURAL,
            success=score >= 0.9, score=score,
            leaked=bytes(recovered) if score >= 0.9 else None,
            details={"recovered": bytes(recovered).hex(),
                     "kpti": self.kpti, "faults_taken": faults})
