"""Attack result types and the attacker's measurement primitives."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AccessFault, MemoryFault
from repro.memory.bus import BusMaster, BusTransaction


class AttackCategory(enum.Enum):
    """The paper's adversary taxonomy (Section 2, after ref [1])."""

    REMOTE = "remote"
    LOCAL = "local"
    MICROARCHITECTURAL = "microarchitectural"
    PHYSICAL = "classical-physical"


@dataclass
class AttackResult:
    """Outcome of one attack run.

    ``score`` is attack-specific but normalised to [0, 1]: fraction of key
    material recovered, probability of detection, etc.  ``success`` is the
    binary verdict at the attack's own threshold.
    """

    name: str
    category: AttackCategory
    success: bool
    score: float
    leaked: object = None
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score {self.score} outside [0, 1]")

    def __str__(self) -> str:
        verdict = "SUCCESS" if self.success else "defended"
        return f"{self.name}: {verdict} (score={self.score:.2f})"


class AttackerProcess:
    """An unprivileged attacker's view of the machine.

    Owns pages obtained through the architecture's allocator (so
    allocation-based defences like Sanctum's colouring apply), and
    measures through the same cache hierarchy the victim uses.  Reads go
    through the bus first — a bus-level denial is a real denial.
    """

    def __init__(self, arch, core_id: int = 1,
                 name: str = "attacker") -> None:
        self.arch = arch
        self.soc = arch.soc
        self.core_id = core_id
        self.master = BusMaster(self.soc.cores[core_id].config.name,
                                kind="cpu")
        self.pages: list[int] = []
        self.domain = f"{name}-proc"

    def alloc_pages(self, count: int) -> list[int]:
        """Obtain ``count`` physical pages from the architecture's OS."""
        new = [self.arch.alloc_attacker_page() for _ in range(count)]
        self.pages.extend(new)
        return new

    # -- measurement primitives ------------------------------------------------

    def timed_read(self, paddr: int) -> int:
        """Load ``paddr`` and return its latency in cycles.

        This is the ``rdcycle``-bracketed load every cache attack builds
        on.  Raises :class:`AccessFault` if the bus denies the read.
        """
        txn = BusTransaction(self.master, paddr, "read", 8)
        self.soc.bus.read(txn)  # access control happens here
        return self.soc.hierarchy.timed_access(self.core_id, paddr,
                                               domain=self.domain)

    def try_read(self, paddr: int) -> tuple[bool, int]:
        """Attempt a read; (ok, value).  value is 0 when denied.

        Denial happens at either of the two layers real attackers face:
        the MMU (no translation obtainable — Sanctum's walker check) or
        the bus (TZASC / EPC / MPU rejection).
        """
        if not self.arch.attacker_can_map(paddr):
            return False, 0
        txn = BusTransaction(self.master, paddr, "read", 8)
        try:
            data = self.soc.bus.read(txn)
        except (AccessFault, MemoryFault):
            return False, 0
        self.soc.hierarchy.access(self.core_id, paddr, domain=self.domain)
        return True, int.from_bytes(data[:8].ljust(8, b"\x00"), "little")

    def flush(self, paddr: int) -> None:
        """clflush a line the attacker can address."""
        self.soc.hierarchy.flush_line(paddr)

    def touch(self, paddr: int) -> None:
        """Untimed load (prime step)."""
        self.soc.hierarchy.access(self.core_id, paddr, domain=self.domain)

    def touch_dram(self, paddr: int) -> None:
        """A load guaranteed to reach the memory bus (hammer step).

        Unlike :meth:`touch`, this issues the bus transaction (where DRAM
        activation counting happens) in addition to the cache-timing
        access — the flush+reload hammer loop's building block.
        """
        txn = BusTransaction(self.master, paddr, "read", 8)
        self.soc.bus.read(txn)
        self.soc.hierarchy.access(self.core_id, paddr, domain=self.domain)

    @property
    def hit_threshold(self) -> int:
        """Latency boundary between 'was cached' and 'came from DRAM'."""
        return self.soc.hierarchy.hit_threshold

    # -- eviction-set construction ------------------------------------------------

    def eviction_addresses_for_set(self, set_index: int,
                                   count: int) -> list[int]:
        """Addresses in the attacker's own pages mapping to ``set_index``.

        Pure address arithmetic over pages the attacker legitimately owns
        — no oracle.  Returns up to ``count`` line addresses; fewer when
        the attacker's pages simply cannot reach that set (Sanctum's
        colouring makes exactly this happen).
        """
        llc = self.soc.hierarchy.l2
        out: list[int] = []
        for page in self.pages:
            for line in range(0, 4096, llc.line_size):
                addr = page + line
                if llc.set_index(addr) == set_index:
                    out.append(addr)
                    if len(out) >= count:
                        return out
        return out
