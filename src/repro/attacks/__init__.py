"""Executable attacks: the paper's Sections 4 and 5 as experiments.

Every attack is a class with a ``run()`` method returning an
:class:`~repro.attacks.base.AttackResult`; the evaluation matrix
(:mod:`repro.core.matrix`) and the benches drive them uniformly.  Attacks
never receive secrets — success is graded afterwards against ground truth
the harness kept to itself.
"""

from repro.attacks.base import (
    AttackCategory,
    AttackResult,
    AttackerProcess,
)
from repro.attacks.software import (
    CodeInjectionAttack,
    DMAAttack,
    KernelMemoryProbeAttack,
)
from repro.attacks.cache_sca import (
    EvictTimeAttack,
    FlushReloadAttack,
    PrimeProbeAttack,
)
from repro.attacks.tlb_btb import BranchShadowingAttack, TLBContentionAttack
from repro.attacks.spectre import SpectreBTBAttack, SpectreV1Attack
from repro.attacks.meltdown import MeltdownAttack
from repro.attacks.foreshadow import ForeshadowAttack
from repro.attacks.timing import KocherTimingAttack
from repro.attacks.dpa import (
    cpa_attack,
    cpa_recover_key,
    dpa_attack,
    dpa_recover_key,
)
from repro.attacks.fault_attacks import (
    AESLastRoundDFA,
    BellcoreRSAAttack,
)
from repro.attacks.clkscrew_attack import ClkscrewAttack
from repro.attacks.controlled_channel import (
    ControlledChannelAttack,
    PagedModExpVictim,
)
from repro.attacks.rowhammer import RowhammerAttack

__all__ = [
    "AESLastRoundDFA",
    "AttackCategory",
    "AttackResult",
    "AttackerProcess",
    "BellcoreRSAAttack",
    "BranchShadowingAttack",
    "ClkscrewAttack",
    "CodeInjectionAttack",
    "ControlledChannelAttack",
    "DMAAttack",
    "EvictTimeAttack",
    "FlushReloadAttack",
    "ForeshadowAttack",
    "KernelMemoryProbeAttack",
    "KocherTimingAttack",
    "MeltdownAttack",
    "PagedModExpVictim",
    "PrimeProbeAttack",
    "RowhammerAttack",
    "SpectreBTBAttack",
    "SpectreV1Attack",
    "TLBContentionAttack",
    "cpa_attack",
    "cpa_recover_key",
    "dpa_attack",
    "dpa_recover_key",
]
