"""Lockstep differential harness: batched attack kernels vs scalar oracles.

The contract of :mod:`repro.attacks.batch` is **bit-identity**, the same
bar the CPU fast path (:mod:`repro.cpu.diff`), the power instrument
(:mod:`repro.power.diff`) and the ensemble engine are held to: for any
attack configuration the kernel accepts, the batched and scalar paths
must produce

* the same :class:`~repro.attacks.base.AttackResult` (name, category,
  success, score, leaked material, details — recovered keys included);
* the same end state on the attack's RNG stream (the batched path must
  *consume* randomness exactly like the scalar loop);
* the same SoC end state: cache lines, tags, LRU stamps and per-level
  stats at every level, bus transaction count, per-core cycle/energy/
  domain state, the speculative cores' L1 views, the MMUs' identity
  caches, and the victim's encryption counter.

:func:`run_pair` builds two identically-seeded environments from one
immutable scenario, runs the scalar oracle on one and the batched kernel
on the other, and raises :class:`AttackDivergence` naming the first
mismatching observable.  ``tests/test_attack_differential.py`` drives
this with hypothesis across platforms, victims and configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.null import NullArchitecture
from repro.attacks import batch
from repro.attacks.base import AttackerProcess
from repro.attacks.cache_sca import (
    EvictTimeAttack,
    FlushReloadAttack,
    PrimeProbeAttack,
    SharedAESService,
    _CacheAttackConfig,
)
from repro.attacks.timing import KocherTimingAttack
from repro.cpu.soc import make_embedded_soc, make_mobile_soc, make_server_soc
from repro.crypto.rng import XorShiftRNG
from repro.crypto.rsa import RSA, generate_rsa_key


class AttackDivergence(AssertionError):
    """The batched and scalar attacks disagreed on an observable."""


_SOC_FACTORIES = {
    "server-desktop": make_server_soc,
    "mobile": make_mobile_soc,
    "embedded": make_embedded_soc,
}

_CACHE_ATTACKS = {
    "prime+probe": PrimeProbeAttack,
    "flush+reload": FlushReloadAttack,
    "evict+time": EvictTimeAttack,
}


@dataclass(frozen=True)
class CacheScenario:
    """One cache-SCA configuration, replayable on either path."""

    attack: str = "flush+reload"  # key into _CACHE_ATTACKS
    platform: str = "server-desktop"  # key into _SOC_FACTORIES
    enclave_victim: bool = True  # False: SharedAESService
    seed: int = 0x5CA
    samples_per_value: int = 4
    plaintext_values: int = 4
    target_bytes: tuple[int, ...] = (0, 5)
    victim_core: int = 0

    def build(self):
        """Fresh (attack, rng, soc) triple; deterministic in ``self``."""
        soc = _SOC_FACTORIES[self.platform]()
        arch = NullArchitecture(soc)
        arch.install()
        rng = XorShiftRNG(self.seed)
        key = rng.bytes(16)
        if self.enclave_victim:
            victim = arch.deploy_aes_victim(key, core_id=self.victim_core)
        else:
            victim = SharedAESService(soc, key, core_id=self.victim_core)
        attacker = AttackerProcess(
            arch, core_id=min(1, len(soc.cores) - 1))
        config = _CacheAttackConfig(
            samples_per_value=self.samples_per_value,
            plaintext_values=self.plaintext_values,
            target_bytes=self.target_bytes)
        attack = _CACHE_ATTACKS[self.attack](victim, attacker, rng, config)
        return attack, rng, soc


@dataclass(frozen=True)
class TimingScenario:
    """One Kocher-timing configuration, replayable on either path."""

    rsa_bits: int = 48
    samples: int = 64
    max_bits: int = 6
    noise_std: float = 0.0
    constant_time: bool = False
    key_seed: int = 0xCE7
    seed: int = 0x70C4

    def build(self):
        key = generate_rsa_key(self.rsa_bits, XorShiftRNG(self.key_seed))
        rng = XorShiftRNG(self.seed)
        attack = KocherTimingAttack(
            RSA(key, constant_time=self.constant_time),
            samples=self.samples, max_bits=self.max_bits,
            noise_std=self.noise_std, rng=rng)
        return attack, rng, None


def soc_state(soc) -> tuple:
    """Every SoC observable a batched attack must leave bit-identical."""
    if soc is None:
        return ()
    levels = []
    for cache in (*soc.hierarchy.l1s, soc.hierarchy.l2):
        stats = cache.stats
        levels.append((
            [list(ts) for ts in cache._tags],
            [[None if ln is None
              else (ln.tag, ln.addr, ln.domain, ln.dirty) for ln in ways]
             for ways in cache._sets],
            [(p._stamp, tuple(p._last_use)) for p in cache._policies],
            (stats.hits, stats.misses, stats.evictions, stats.flushes)))
    cores = [(core.cycles, core.energy_pj, core.domain, core.instret,
              dict(getattr(core, "_l1_view", {}) or {}))
             for core in soc.cores]
    mmus = [dict(mmu._identity_cache) for mmu in soc.mmus]
    return (levels, soc.bus.transaction_count, cores, mmus)


@dataclass(frozen=True)
class AttackOutcome:
    """One path's result plus every compared side observable."""

    result: object
    rng_state: int
    encryptions: int
    soc: tuple


def scalar_run(scenario) -> AttackOutcome:
    """Run the scenario on the retained scalar oracle."""
    attack, rng, soc = scenario.build()
    result = attack._run_scalar()
    encryptions = getattr(attack.victim, "encryptions", 0)
    return AttackOutcome(result, rng._state, encryptions, soc_state(soc))


def batched_run(scenario) -> AttackOutcome:
    """Run the scenario through the batched kernel; a declined kernel is
    a :class:`AttackDivergence` (use :func:`batch.try_run_batched`
    directly to test fallback behaviour)."""
    attack, rng, soc = scenario.build()
    result = batch.try_run_batched(attack)
    if result is None:
        raise AttackDivergence(
            f"batched kernel declined scenario {scenario!r}")
    encryptions = getattr(attack.victim, "encryptions", 0)
    return AttackOutcome(result, rng._state, encryptions, soc_state(soc))


def _compare(field: str, batched, scalar) -> None:
    if batched != scalar:
        raise AttackDivergence(
            f"{field} diverged\n  batched: {batched!r}\n"
            f"  scalar:  {scalar!r}")


def assert_identical(batched: AttackOutcome, scalar: AttackOutcome) -> None:
    """Full observable equality between the two paths."""
    br, sr = batched.result, scalar.result
    _compare("result.name", br.name, sr.name)
    _compare("result.category", br.category, sr.category)
    _compare("result.success", br.success, sr.success)
    _compare("result.score", br.score, sr.score)
    _compare("result.leaked", br.leaked, sr.leaked)
    _compare("result.details", br.details, sr.details)
    _compare("rng end state", batched.rng_state, scalar.rng_state)
    _compare("victim encryptions", batched.encryptions, scalar.encryptions)
    _compare("soc end state", batched.soc, scalar.soc)


def run_pair(scenario) -> tuple[AttackOutcome, AttackOutcome]:
    """Run both paths and assert full bit-identity; return both sides."""
    batched = batched_run(scenario)
    scalar = scalar_run(scenario)
    assert_identical(batched, scalar)
    return batched, scalar
