"""Software adversaries: remote code injection, compromised kernel, DMA.

Figure 1's top rows: "remote and local attacks are applicable to all types
of computing platforms".  These attacks probe what a software adversary
obtains *against the TEE's protected assets* — an unprotected process
always falls; the interesting question is whether the enclave does too.
"""

from __future__ import annotations

from repro.arch.base import AES_KEY_OFFSET, EnclaveHandle, SecurityArchitecture
from repro.attacks.base import AttackCategory, AttackResult, AttackerProcess
from repro.errors import AccessFault, MemoryFault


class CodeInjectionAttack:
    """Remote adversary: corrupt a vulnerable unprotected service.

    The service is a plain memory region with no protection beyond OS
    process isolation — which the exploited bug bypasses by construction
    (the paper's premise: "flaws in the kernel itself can be used to
    undermine process isolation").  Success: attacker-chosen bytes end up
    executed/stored inside the victim's memory.
    """

    NAME = "remote-code-injection"

    def __init__(self, arch: SecurityArchitecture,
                 victim_region: tuple[int, int] | None = None) -> None:
        self.arch = arch
        dram = arch.soc.regions.get("dram")
        self.victim_base, self.victim_size = victim_region or (
            dram.base + dram.size // 2 - 0x10000, 0x1000)

    def run(self) -> AttackResult:
        soc = self.arch.soc
        payload = b"\xde\xad\xbe\xef" * 4
        # The overflow: attacker-controlled input written past a buffer —
        # modelled as a direct write into the victim's memory, which
        # nothing below the (bypassed) OS prevents for plain processes.
        try:
            soc.memory.write_bytes(self.victim_base, payload)
            injected = soc.memory.read_bytes(self.victim_base,
                                             len(payload)) == payload
        except MemoryFault:
            injected = False
        return AttackResult(
            name=self.NAME, category=AttackCategory.REMOTE,
            success=injected, score=1.0 if injected else 0.0,
            details={"victim": hex(self.victim_base)})


class KernelMemoryProbeAttack:
    """Local adversary with kernel privilege reading protected assets.

    The probe targets the architecture's crown jewel: enclave memory (the
    AES key offset) where enclaves exist, or the attestation key where
    only attestation exists.  A TEE that fails this probe provides no
    security benefit over plain OS isolation.
    """

    NAME = "kernel-memory-probe"

    def __init__(self, arch: SecurityArchitecture,
                 enclave: EnclaveHandle | None = None,
                 secret_paddr: int | None = None,
                 secret_value: bytes | None = None) -> None:
        self.arch = arch
        self.enclave = enclave
        self.secret_paddr = secret_paddr
        self.secret_value = secret_value
        self.attacker = AttackerProcess(arch, core_id=0, name="evil-kernel")

    def _target(self) -> int | None:
        if self.secret_paddr is not None:
            return self.secret_paddr
        if self.enclave is not None:
            # Physical address of the key page (the OS can see mappings).
            from repro.memory.paging import PAGE_SIZE
            page_index = AES_KEY_OFFSET // PAGE_SIZE
            page_table = self.enclave.metadata.get("page_table")
            if page_table is not None:
                entry = page_table.lookup(
                    self.enclave.base + page_index * PAGE_SIZE)
                if entry is None:
                    return None
                return entry[0] + AES_KEY_OFFSET % PAGE_SIZE
            frames = self.enclave.metadata.get("frames")
            if frames is not None:
                return frames[page_index] + AES_KEY_OFFSET % PAGE_SIZE
            return self.enclave.paddr + AES_KEY_OFFSET
        return None

    def run(self) -> AttackResult:
        target = self._target()
        if target is None:
            return AttackResult(
                name=self.NAME, category=AttackCategory.LOCAL,
                success=False, score=0.0,
                details={"blocked": "no addressable secret exists"})
        ok, value = self.attacker.try_read(target)
        leaked = None
        if ok and self.secret_value is not None:
            expected = int.from_bytes(self.secret_value[:8], "little")
            ok = value == expected
            leaked = value.to_bytes(8, "little") if ok else None
        elif ok:
            leaked = value.to_bytes(8, "little")
        return AttackResult(
            name=self.NAME, category=AttackCategory.LOCAL,
            success=bool(ok), score=1.0 if ok else 0.0, leaked=leaked,
            details={"target": hex(target)})


class DMAAttack:
    """A malicious DMA-capable peripheral dumping protected memory.

    Thunderclap-flavoured (paper ref [31]): the peripheral is on the bus
    with full mastering capability; only bus-level access control can
    stop it.  The paper's scorecard — SGX aborts (MEE), Sanctum filters
    (memory controller), TrustZone rejects (TZASC), SMART/TrustLite fall
    (DMA "not part of the attacker model") — is what this reproduces.
    """

    NAME = "dma-memory-dump"

    def __init__(self, arch: SecurityArchitecture, target_paddr: int,
                 expected: bytes | None = None) -> None:
        self.arch = arch
        self.target_paddr = target_paddr
        self.expected = expected
        self.engine = arch.soc.add_dma_engine(
            f"evil-dma-{id(self) & 0xFFFF}")

    def run(self) -> AttackResult:
        try:
            data = self.engine.read(self.target_paddr, 16)
            readable = True
        except (AccessFault, MemoryFault):
            data = b""
            readable = False
        plaintext_leaked = readable and (
            self.expected is None or data[:len(self.expected)]
            == self.expected)
        score = 1.0 if plaintext_leaked else (0.3 if readable else 0.0)
        return AttackResult(
            name=self.NAME, category=AttackCategory.LOCAL,
            success=plaintext_leaked, score=score,
            leaked=data if plaintext_leaked else None,
            details={"bus_admitted": readable,
                     "ciphertext_only": readable and not plaintext_leaked,
                     "target": hex(self.target_paddr)})
