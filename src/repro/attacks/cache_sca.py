"""Software cache side-channel attacks (Section 4.1).

All three classic attacks against the shared T-table AES victim:

* :class:`PrimeProbeAttack` — the attacker owns no victim memory; it fills
  the LLC sets backing one T-table with its own lines, lets the victim
  encrypt, and measures which of its lines were displaced.
* :class:`FlushReloadAttack` — requires attacker-addressable (shared)
  victim table lines; flush, let the victim run, reload and time.
* :class:`EvictTimeAttack` — evict one table line, time the *victim's
  whole encryption*; a guaranteed first-round miss on the target line
  shows up as elevated latency.

Key recovery follows Osvik/Shamir/Tromer's first-round analysis [34]: the
round-1 lookup for state byte ``b`` indexes table ``t`` at
``pt[b] ^ k[b]``, so the touched 16-entry table *line* reveals the high
nibble ``(pt[b] ^ k[b]) >> 4``.  Later rounds touch lines near-uniformly
(the classic noise floor: a non-target line stays cold with probability
``(15/16)^35 ≈ 0.10``), so each attacked byte is scored statistically
across plaintexts.

The attacks receive the victim's table base address as *profiled
knowledge* (real attackers recover it with an alignment/profiling phase);
whether the channel exists at all is decided entirely by the architecture
underneath, which is the property the experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.arch.base import AES_TABLE_STRIDE, AESVictim
from repro.attacks.base import AttackCategory, AttackResult, AttackerProcess
from repro.crypto.aes import TTABLE_LOOKUP_BYTE, TTableAES
from repro.crypto.rng import XorShiftRNG

#: state byte -> round-1 T-table index for that byte.
BYTE_TO_TABLE = {TTABLE_LOOKUP_BYTE[j]: j % 4 for j in range(16)}

LINE_SIZE = 64
LINES_PER_TABLE = AES_TABLE_STRIDE // LINE_SIZE  # 16


def _grade(recovered: dict[int, int], key: bytes) -> float:
    """Fraction of recovered high nibbles that match the true key."""
    if not recovered:
        return 0.0
    correct = sum(1 for b, nib in recovered.items()
                  if nib == key[b] >> 4)
    return correct / len(recovered)


def _plaintext_nibbles(config: "_CacheAttackConfig") -> list[int]:
    """The high-nibble values of ``pt[b]`` an attack samples."""
    return list(range(0, 16, max(16 // config.plaintext_values, 1)))


def _best_nibble(values: np.ndarray, counts: np.ndarray) -> int:
    """Score nibble candidates from per-plaintext-value line activity.

    ``counts[i, line]`` counts observed victim touches of table line
    ``line`` when ``pt[b]`` had high nibble ``values[i]``.  The correct
    candidate ``k`` maximises activity on line ``v ^ k`` across all
    ``v``; one fancy-indexed gather scores every candidate against every
    value at once instead of 256 dict walks.
    """
    values = np.asarray(values, dtype=np.int64)
    gathered = counts[np.arange(len(values))[:, np.newaxis],
                      values[:, np.newaxis] ^ np.arange(16)]
    # The true line is touched on *every* encryption (the round-1
    # lookup is unconditional), so the worst single-value count is a
    # far sharper discriminator than the sum; the sum breaks ties.
    # Counts are integer-valued floats, so both reductions are exact.
    mins = gathered.min(axis=0)
    sums = gathered.sum(axis=0)
    return max(range(16), key=lambda c: (mins[c], sums[c]))


@dataclass
class _CacheAttackConfig:
    """Shared tuning knobs."""

    samples_per_value: int = 12
    plaintext_values: int = 8  # how many high-nibble values of pt[b] to try
    target_bytes: tuple[int, ...] = (0, 5, 10, 15)  # one byte per table


class PrimeProbeAttack:
    """Prime+Probe against an enclave-hosted AES service."""

    NAME = "prime+probe"

    def __init__(self, victim: AESVictim, attacker: AttackerProcess,
                 rng: XorShiftRNG | None = None,
                 config: _CacheAttackConfig | None = None,
                 batch: bool = False) -> None:
        self.victim = victim
        self.attacker = attacker
        self.rng = rng or XorShiftRNG(0x9927)
        self.config = config or _CacheAttackConfig()
        self.batch = bool(batch)
        llc = attacker.soc.hierarchy.l2
        self._ways = llc.ways
        # Enough pages that every LLC set is coverable with `ways` lines
        # *if the OS hands out uncoloured frames*; under Sanctum's
        # allocator the enclave-coloured sets stay unreachable no matter
        # how many pages we ask for.
        pages_needed = max(
            self._ways * llc.num_sets * llc.line_size // 4096, 32)
        attacker.alloc_pages(min(pages_needed, 1024))

    def _table_line_set(self, table: int, line: int) -> int:
        llc = self.attacker.soc.hierarchy.l2
        paddr = self.victim.table_paddr + table * AES_TABLE_STRIDE \
            + line * LINE_SIZE
        return llc.set_index(paddr)

    def _eviction_sets(self, table: int) -> list[list[int]]:
        """Attacker line addresses per table line (may be empty: defended)."""
        return [
            self.attacker.eviction_addresses_for_set(
                self._table_line_set(table, line), self._ways)
            for line in range(LINES_PER_TABLE)
        ]

    def run(self) -> AttackResult:
        if self.batch:
            from repro.attacks.batch import try_run_batched
            result = try_run_batched(self)
            if result is not None:
                return result
        return self._run_scalar()

    def _run_scalar(self) -> AttackResult:
        cfg = self.config
        span = obs.span  # hoisted: shared-nullcontext lookup, once
        recovered: dict[int, int] = {}
        coverage = 0.0
        for target_byte in cfg.target_bytes:
            with span("prime+probe:byte", cat="attack",
                      byte=target_byte):
                table = BYTE_TO_TABLE[target_byte]
                eviction = self._eviction_sets(table)
                covered = sum(1 for addrs in eviction
                              if len(addrs) >= self._ways)
                coverage = max(coverage, covered / LINES_PER_TABLE)
                if covered < LINES_PER_TABLE:
                    obs.event("prime+probe.blocked", cat="attack",
                              byte=target_byte, covered=covered)
                    continue  # cannot even prime: the defence already won
                values = _plaintext_nibbles(cfg)
                counts = np.zeros((len(values), LINES_PER_TABLE))
                for vi, v in enumerate(values):
                    for _ in range(cfg.samples_per_value):
                        pt = bytearray(self.rng.bytes(16))
                        pt[target_byte] = (v << 4) | (pt[target_byte] & 0x0F)
                        # Prime: fill every line's set with attacker data.
                        for addrs in eviction:
                            for addr in addrs:
                                self.attacker.touch(addr)
                        self.victim.encrypt(bytes(pt))
                        # Probe: a displaced attacker line means victim
                        # traffic.
                        counts[vi] += np.fromiter(
                            (sum(1 for addr in addrs
                                 if self.attacker.timed_read(addr)
                                 > self.attacker.hit_threshold)
                             for addrs in eviction),
                            dtype=np.float64, count=LINES_PER_TABLE)
                recovered[target_byte] = _best_nibble(values, counts)

        score = _grade(recovered, self.victim.key)
        return AttackResult(
            name=self.NAME, category=AttackCategory.MICROARCHITECTURAL,
            success=score >= 0.75 and len(recovered) == len(cfg.target_bytes),
            score=score,
            leaked={b: f"high nibble {n:#x}" for b, n in recovered.items()},
            details={"recovered": recovered, "set_coverage": coverage,
                     "bytes_attacked": list(cfg.target_bytes)})


class FlushReloadAttack:
    """Flush+Reload; needs attacker-addressable victim table lines."""

    NAME = "flush+reload"

    def __init__(self, victim, attacker: AttackerProcess,
                 rng: XorShiftRNG | None = None,
                 config: _CacheAttackConfig | None = None,
                 batch: bool = False) -> None:
        self.victim = victim
        self.attacker = attacker
        self.rng = rng or XorShiftRNG(0xF77E)
        self.config = config or _CacheAttackConfig()
        self.batch = bool(batch)

    def _line_paddr(self, table: int, line: int) -> int:
        return self.victim.table_paddr + table * AES_TABLE_STRIDE \
            + line * LINE_SIZE

    def run(self) -> AttackResult:
        if self.batch:
            from repro.attacks.batch import try_run_batched
            result = try_run_batched(self)
            if result is not None:
                return result
        return self._run_scalar()

    def _run_scalar(self) -> AttackResult:
        cfg = self.config
        # Precondition: the table lines must be attacker-loadable (shared
        # pages).  Against enclave memory the very first access is denied.
        ok, _ = self.attacker.try_read(self._line_paddr(0, 0))
        if not ok:
            return AttackResult(
                name=self.NAME,
                category=AttackCategory.MICROARCHITECTURAL,
                success=False, score=0.0,
                details={"blocked": "victim memory not attacker-addressable"})

        recovered: dict[int, int] = {}
        span = obs.span  # hoisted: shared-nullcontext lookup, once
        for target_byte in cfg.target_bytes:
            with span("flush+reload:byte", cat="attack",
                      byte=target_byte):
                table = BYTE_TO_TABLE[target_byte]
                lines = [self._line_paddr(table, line)
                         for line in range(LINES_PER_TABLE)]
                values = _plaintext_nibbles(cfg)
                counts = np.zeros((len(values), LINES_PER_TABLE))
                for vi, v in enumerate(values):
                    for _ in range(cfg.samples_per_value):
                        pt = bytearray(self.rng.bytes(16))
                        pt[target_byte] = (v << 4) | (pt[target_byte] & 0x0F)
                        for paddr in lines:
                            self.attacker.flush(paddr)
                        self.victim.encrypt(bytes(pt))
                        latencies = np.fromiter(
                            (self.attacker.timed_read(paddr)
                             for paddr in lines),
                            dtype=np.float64, count=LINES_PER_TABLE)
                        counts[vi] += latencies <= self.attacker.hit_threshold
                recovered[target_byte] = _best_nibble(values, counts)

        score = _grade(recovered, self.victim.key)
        return AttackResult(
            name=self.NAME, category=AttackCategory.MICROARCHITECTURAL,
            success=score >= 0.75, score=score,
            details={"recovered": recovered})


class EvictTimeAttack:
    """Evict+Time: evict a table line, time the victim's encryption."""

    NAME = "evict+time"

    def __init__(self, victim: AESVictim, attacker: AttackerProcess,
                 rng: XorShiftRNG | None = None,
                 config: _CacheAttackConfig | None = None,
                 batch: bool = False) -> None:
        self.victim = victim
        self.attacker = attacker
        self.rng = rng or XorShiftRNG(0xE71C)
        self.config = config or _CacheAttackConfig()
        self.batch = bool(batch)
        llc = attacker.soc.hierarchy.l2
        self._ways = llc.ways
        pages_needed = max(
            self._ways * llc.num_sets * llc.line_size // 4096, 32)
        attacker.alloc_pages(min(pages_needed, 1024))

    def _victim_cycles(self, pt: bytes) -> int:
        core = self.victim.arch.soc.cores[self.victim.core_id]
        before = core.cycles
        self.victim.encrypt(pt)
        return core.cycles - before

    def run(self) -> AttackResult:
        if self.batch:
            from repro.attacks.batch import try_run_batched
            result = try_run_batched(self)
            if result is not None:
                return result
        return self._run_scalar()

    def _run_scalar(self) -> AttackResult:
        cfg = self.config
        llc = self.attacker.soc.hierarchy.l2
        recovered: dict[int, int] = {}
        for target_byte in cfg.target_bytes:
            table = BYTE_TO_TABLE[target_byte]
            # Eviction addresses per line of the target table.
            eviction = []
            for line in range(LINES_PER_TABLE):
                paddr = self.victim.table_paddr \
                    + table * AES_TABLE_STRIDE + line * LINE_SIZE
                eviction.append(self.attacker.eviction_addresses_for_set(
                    llc.set_index(paddr), self._ways))
            if any(len(addrs) < self._ways for addrs in eviction):
                continue  # defence: sets unreachable
            values = _plaintext_nibbles(cfg)
            times = np.zeros((len(values), LINES_PER_TABLE))
            for vi, v in enumerate(values):
                for line in range(LINES_PER_TABLE):
                    for _ in range(cfg.samples_per_value):
                        pt = bytearray(self.rng.bytes(16))
                        pt[target_byte] = (v << 4) | (pt[target_byte] & 0x0F)
                        for addr in eviction[line]:
                            self.attacker.touch(addr)
                        times[vi, line] += self._victim_cycles(bytes(pt))
            recovered[target_byte] = _best_nibble(values, times)

        score = _grade(recovered, self.victim.key)
        return AttackResult(
            name=self.NAME, category=AttackCategory.MICROARCHITECTURAL,
            success=score >= 0.75 and len(recovered) == len(cfg.target_bytes),
            score=score,
            details={"recovered": recovered})


class SharedAESService:
    """An *unprotected* AES service with tables in shared pages.

    The Flush+Reload baseline: a process using a shared crypto library,
    with no TEE underneath.  Quacks like :class:`AESVictim` where the
    attacks care (``encrypt``, ``table_paddr``, ``key``, ``core_id``).
    """

    def __init__(self, soc, key: bytes, core_id: int = 0,
                 table_paddr: int | None = None,
                 domain: str | None = None) -> None:
        self.soc = soc
        self.key = key
        self.core_id = core_id
        self.domain = domain  # cache security-domain label (ABL-1 uses it)
        dram = soc.regions.get("dram")
        default_base = (dram.base + dram.size // 3) & ~0xFFF
        self.table_paddr = table_paddr if table_paddr is not None \
            else default_base
        if self.table_paddr % 64:
            raise ValueError("AES tables must be cache-line aligned")
        self.encryptions = 0

        def on_lookup(table: int, index: int) -> None:
            paddr = (self.table_paddr + table * AES_TABLE_STRIDE
                     + index * 4) & ~7
            soc.hierarchy.access(self.core_id, paddr, domain=self.domain)

        self._cipher = TTableAES(key, on_lookup=on_lookup)

    def encrypt(self, plaintext: bytes) -> bytes:
        self.encryptions += 1
        return self._cipher.encrypt_block(plaintext)
