"""Foreshadow / L1 Terminal Fault against the SGX model (paper ref [38]).

"SGX is immune to a plain Meltdown attack as enclave memory usually does
not raise memory access exceptions.  However, as the OS is in control of
all page tables, an attacker can set the present or reserved bit to force
the enclave to raise a page fault ... only cache values tagged with the
corresponding physical address can be extracted this way.  However,
arbitrary encrypted enclave pages can be externally forced to be
decrypted to the L1 cache using SGX's secure page swapping."

The attack below performs each of those steps mechanically:

1. (optional warm-up) force the enclave's key page through the secure
   page swap — the ELDU path decrypts it straight into the L1;
2. the malicious OS clears the PRESENT bit on the enclave PTE it controls;
3. a user-mode load of the enclave address takes a terminal fault whose
   *stale physical address* is matched against the L1 — the plaintext is
   forwarded to the transient probe gadget;
4. the probe array is read out Flush+Reload style, byte by byte.
"""

from __future__ import annotations

from repro.arch.base import AES_KEY_OFFSET
from repro.arch.sgx import SGX
from repro.attacks.base import AttackCategory, AttackResult
from repro.common import PrivilegeLevel
from repro.cpu.soc import SoC
from repro.isa import assemble
from repro.memory.paging import PAGE_SIZE, PageFlags

PROBE_STRIDE = 64


class ForeshadowAttack:
    """Extract an SGX enclave's in-L1 secret through a terminal fault."""

    NAME = "foreshadow-l1tf"

    def __init__(self, sgx: SGX, enclave_handle, *,
                 secret_offset: int = AES_KEY_OFFSET,
                 secret_len: int = 16,
                 use_swap_oracle: bool = True,
                 flush_l1_before_attack: bool = False) -> None:
        self.sgx = sgx
        self.soc: SoC = sgx.soc
        self.handle = enclave_handle
        self.secret_offset = secret_offset
        self.secret_len = secret_len
        self.use_swap_oracle = use_swap_oracle
        self.flush_l1_before_attack = flush_l1_before_attack
        dram = self.soc.regions.get("dram")
        self.probe_paddr = dram.base + 0x60_0000
        self.code_paddr = dram.base + 0x66_0000
        self._setup()

    def _setup(self) -> None:
        # The colluding OS maps attacker code + probe into the same
        # address space that holds the enclave mappings (its own table).
        user = PageFlags.PRESENT | PageFlags.USER | PageFlags.WRITABLE
        pt = self.sgx.os_page_table
        pt.map_range(self.code_paddr, self.code_paddr, 2 * PAGE_SIZE,
                     user | PageFlags.EXECUTE)
        pt.map_range(self.probe_paddr, self.probe_paddr, 4 * PAGE_SIZE,
                     user)
        text = f"""
        attacker:                  # r1 = enclave VA, r7 = byte shift
            load r2, 0(r1)         # terminal fault; L1 data forwarded
            shr  r2, r2, r7
            li   r3, 255
            and  r2, r2, r3
            li   r4, 6
            shl  r2, r2, r4
            li   r3, {self.probe_paddr}
            add  r3, r3, r2
            load r5, 0(r3)
        resume:
            halt
        """
        self.program = assemble(text, base=self.code_paddr,
                                name="foreshadow-attacker")

    # -- attack steps -----------------------------------------------------------

    def _page_va(self) -> int:
        return self.handle.base + (self.secret_offset & ~(PAGE_SIZE - 1))

    def _force_secret_into_l1(self) -> None:
        """Step 1: OS-invocable secure page swap decrypts the page to L1."""
        page_offset = self.secret_offset & ~(PAGE_SIZE - 1)
        self.sgx.swap_out(self.handle, page_offset)
        self.sgx.swap_in(self.handle, page_offset)

    def _flush_probe(self) -> None:
        for byte in range(256):
            self.soc.hierarchy.flush_line(self.probe_paddr
                                          + byte * PROBE_STRIDE)

    def _probe_hot_byte(self) -> int | None:
        # Reload from a sibling core: the scan then fills the sibling's L1
        # and the shared L2 only, leaving the victim core's L1 (where the
        # enclave plaintext lives) untouched for the next extraction.
        cores = len(self.soc.hierarchy.l1s)
        probe_core = (self.handle.core_id + 1) % cores
        threshold = self.soc.hierarchy.hit_threshold
        hits = [byte for byte in range(256)
                if self.soc.hierarchy.timed_access(
                    probe_core,
                    self.probe_paddr + byte * PROBE_STRIDE) <= threshold]
        return hits[0] if hits else None

    def _transient_read_byte(self, word_va: int, shift: int) -> int | None:
        core = self.soc.cores[self.handle.core_id]
        pt = self.sgx.os_page_table
        core.mmu.set_context(pt.root, pt.asid)
        core.mmu.flush_tlb()
        core.privilege = PrivilegeLevel.USER
        core.load_program(self.program, entry="attacker")
        core.fault_resume = self.program.address_of("resume")
        core.set_reg(1, word_va)
        core.set_reg(7, shift)
        self._flush_probe()
        try:
            core.run(max_steps=32)
        finally:
            core.fault_resume = None
            core.privilege = PrivilegeLevel.KERNEL
            core.mmu.set_context(None)
        return self._probe_hot_byte()

    def run(self) -> AttackResult:
        page_va = self._page_va()
        if self.use_swap_oracle:
            self._force_secret_into_l1()
        if self.flush_l1_before_attack:
            # The deployed L1TF countermeasure: flush L1 on the boundary.
            self.soc.hierarchy.flush_core(self.handle.core_id)

        # Step 2: the OS clears PRESENT on the PTE it fully controls.
        self.sgx.os_page_table.update_flags(
            page_va, clear_flags=PageFlags.PRESENT)
        self.soc.mmus[self.handle.core_id].flush_tlb()

        recovered = bytearray()
        try:
            for i in range(self.secret_len):
                word_va = self.handle.base + \
                    (self.secret_offset + i) // 8 * 8
                shift = (i % 8) * 8
                byte = self._transient_read_byte(word_va, shift)
                recovered.append(byte if byte is not None else 0)
        finally:
            # Step 4 cleanup: restore the mapping (stealth).
            self.sgx.os_page_table.update_flags(
                page_va, set_flags=PageFlags.PRESENT)
            self.soc.mmus[self.handle.core_id].flush_tlb()

        # Grade against the enclave's actual secret (harness-side truth).
        self.sgx.enter_enclave(self.handle)
        try:
            truth = bytearray()
            core = self.soc.cores[self.handle.core_id]
            for i in range(0, self.secret_len, 8):
                word = core.read_mem(self.handle.base + self.secret_offset
                                     + i)
                truth.extend(word.to_bytes(8, "little"))
        finally:
            self.sgx.exit_enclave(self.handle)
        truth = truth[:self.secret_len]
        correct = sum(1 for a, b in zip(recovered, truth) if a == b)
        score = correct / self.secret_len
        return AttackResult(
            name=self.NAME, category=AttackCategory.MICROARCHITECTURAL,
            success=score >= 0.9, score=score,
            leaked=bytes(recovered) if score >= 0.9 else None,
            details={"recovered": bytes(recovered).hex(),
                     "truth": bytes(truth).hex(),
                     "swap_oracle": self.use_swap_oracle,
                     "l1_flushed": self.flush_l1_before_attack})
