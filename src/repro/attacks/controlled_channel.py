"""Controlled-channel attack: page faults as a side channel against SGX.

The paper's Foreshadow discussion rests on the observation that "the OS
is in control of all page tables".  Before Foreshadow, that same control
already gave a *noise-free deterministic* side channel (Xu et al.'s
controlled-channel attack): the OS unmaps enclave pages and learns the
enclave's page-granular access pattern from the fault sequence — enough
to recover secrets whenever a secret decides *which page* is touched.

The classic victim is square-and-multiply RSA: the multiply routine's
working set lives on a different page than the square routine's, so the
page-fault trace spells out the exponent bits.

The defence contrast is architectural, exactly as in the paper:

* **SGX** — the OS owns the page tables; the attack works.
* **Sanctum** — enclave page tables belong to the monitor; the OS has no
  handle to unmap anything, and the attack dies at step 0.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.base import EnclaveHandle, SecurityArchitecture
from repro.attacks.base import AttackCategory, AttackResult
from repro.errors import PageFault
from repro.memory.paging import PAGE_SIZE, PageFlags


class PagedModExpVictim:
    """Square-and-multiply inside an enclave, one routine per page.

    Working-set layout (enclave-relative):

    * page 0 — the square routine's scratch,
    * page 1 — the multiply routine's scratch.

    Each exponent bit performs a square (touch page 0) and, for 1-bits,
    a multiply (touch page 1) — the textbook controlled-channel target.
    The exponent is the secret; the attack is graded against it.
    """

    def __init__(self, arch: SecurityArchitecture, handle: EnclaveHandle,
                 exponent: int, modulus: int = (1 << 61) - 1) -> None:
        if handle.size < 2 * PAGE_SIZE:
            raise ValueError("victim needs two enclave pages")
        self.arch = arch
        self.handle = handle
        self._exponent = exponent  # secret
        self.modulus = modulus

    @property
    def exponent_bits(self) -> list[int]:
        """Ground truth for grading (harness-side only)."""
        e = self._exponent
        return [(e >> i) & 1 for i in range(e.bit_length() - 1, -1, -1)]

    def _touch(self, page: int) -> None:
        self.arch.enclave_read(self.handle, page * PAGE_SIZE)

    def modexp(self, base: int) -> int:
        """Run the exponentiation inside the enclave context."""
        self.arch.enter_enclave(self.handle)
        try:
            acc = 1 % self.modulus
            for i in range(self._exponent.bit_length() - 1, -1, -1):
                self._touch(0)  # square scratch
                acc = (acc * acc) % self.modulus
                if (self._exponent >> i) & 1:
                    self._touch(1)  # multiply scratch
                    acc = (acc * base) % self.modulus
            return acc
        finally:
            self.arch.exit_enclave(self.handle)


class ControlledChannelAttack:
    """OS-level page-fault tracing of an enclave's access pattern.

    Procedure (per Xu et al., adapted to the simulation):

    1. the OS clears PRESENT on both victim pages *in the page table it
       controls* — if it controls none (Sanctum), the attack aborts;
    2. the enclave runs; every page touch faults to the OS handler, which
       logs the page, re-maps it, and unmaps the *other* page so the next
       transition is observable too;
    3. the page-id sequence is decoded into exponent bits:
       ``0,1`` -> bit 1, lone ``0`` -> bit 0.
    """

    NAME = "controlled-channel"

    def __init__(self, arch: SecurityArchitecture,
                 victim: PagedModExpVictim) -> None:
        self.arch = arch
        self.victim = victim
        self.fault_log: list[int] = []

    # -- the OS's lever ------------------------------------------------------

    def _os_page_table(self):
        """The page table the OS can write, or None (monitor-owned)."""
        table = getattr(self.arch, "os_page_table", None)
        if table is None:
            return None
        handle = self.victim.handle
        # The mapping must actually be in the OS's table (for Sanctum the
        # enclave's VA range resolves through the monitor's table, not
        # this one).
        if table.lookup(handle.base) is None:
            return None
        return table

    def _set_present(self, table, page: int, present: bool) -> None:
        va = self.victim.handle.base + page * PAGE_SIZE
        if present:
            table.update_flags(va, set_flags=PageFlags.PRESENT)
        else:
            table.update_flags(va, clear_flags=PageFlags.PRESENT)
        self.arch.soc.mmus[self.victim.handle.core_id].flush_tlb()

    def _install_fault_handler(self, table) -> Callable[[], None]:
        """Patch the enclave-read path with an OS fault handler.

        In the simulation the enclave's touches go through
        ``arch.enclave_read``; the handler wraps it so a PRESENT fault is
        logged, serviced (page remapped, sibling unmapped) and the access
        replayed — the OS's #PF handler loop.
        """
        original = self.arch.enclave_read
        attack = self

        def traced_read(handle, offset):
            try:
                return original(handle, offset)
            except PageFault as fault:
                if fault.reason != "not-present":
                    raise
                page = offset // PAGE_SIZE
                attack.fault_log.append(page)
                # Service the fault, replay the access, and immediately
                # revoke the page again so *every* touch (including
                # repeated squares) produces an observable fault.
                attack._set_present(table, page, True)
                try:
                    return original(handle, offset)
                finally:
                    attack._set_present(table, page, False)

        self.arch.enclave_read = traced_read

        def restore() -> None:
            self.arch.enclave_read = original

        return restore

    # -- decode -----------------------------------------------------------------

    @staticmethod
    def _decode(fault_log: list[int]) -> list[int]:
        """Page sequence -> exponent bits (0=square page, 1=multiply)."""
        bits: list[int] = []
        i = 0
        while i < len(fault_log):
            if fault_log[i] != 0:
                i += 1  # stray multiply fault without its square: skip
                continue
            if i + 1 < len(fault_log) and fault_log[i + 1] == 1:
                bits.append(1)
                i += 2
            else:
                bits.append(0)
                i += 1
        return bits

    def run(self) -> AttackResult:
        table = self._os_page_table()
        if table is None:
            return AttackResult(
                name=self.NAME, category=AttackCategory.LOCAL,
                success=False, score=0.0,
                details={"blocked": "OS holds no writable mapping of the "
                                    "enclave (monitor-owned page tables)"})
        self.fault_log.clear()
        self._set_present(table, 0, False)
        self._set_present(table, 1, False)
        restore = self._install_fault_handler(table)
        try:
            self.victim.modexp(0xC0FFEE)
        finally:
            restore()
            self._set_present(table, 0, True)
            self._set_present(table, 1, True)

        guessed = self._decode(self.fault_log)
        truth = self.victim.exponent_bits
        correct = sum(1 for g, t in zip(guessed, truth) if g == t)
        score = correct / len(truth) if truth else 0.0
        return AttackResult(
            name=self.NAME, category=AttackCategory.LOCAL,
            success=score >= 0.95 and len(guessed) == len(truth),
            score=score,
            leaked=guessed if score >= 0.95 else None,
            details={"faults_observed": len(self.fault_log),
                     "bits": len(truth)})
