"""Kocher-style timing attack on RSA (paper ref [23], refined per Dhem et al.).

The adversary measures total private-key operation times for chosen
ciphertexts and recovers the exponent MSB-first.  At each step the square
is unconditional, so the *multiply* is the tell: the attacker simulates
the multiply that a 1-bit would perform (it can — the per-operation
timing model :func:`repro.crypto.modexp.mult_time` is public, and it
knows the prefix recovered so far) and partitions the measured times by
whether that simulated multiply suffers an extra reduction.  If the bit
really is 1 the partition splits the measurements by a real time
component and the difference of means approaches the extra-reduction
cost; if the bit is 0 the multiply never happened and the difference
stays near zero.

Against the Montgomery ladder every operation is charged worst-case
constant time, the partition difference carries no signal, and recovered
bits collapse to chance.
"""

from __future__ import annotations

from repro.attacks.base import AttackCategory, AttackResult
from repro.crypto.modexp import (
    BASE_MULT_COST,
    EXTRA_REDUCTION_COST,
    mult_time,
)
from repro.crypto.rng import XorShiftRNG
from repro.crypto.rsa import RSA


class KocherTimingAttack:
    """Recover private-exponent bits from decryption timings."""

    NAME = "kocher-rsa-timing"

    def __init__(self, victim: RSA, samples: int = 1000,
                 max_bits: int = 16, noise_std: float = 0.0,
                 rng: XorShiftRNG | None = None,
                 batch: bool = False) -> None:
        self.victim = victim
        self.samples = samples
        self.max_bits = max_bits
        self.noise_std = noise_std
        self.rng = rng or XorShiftRNG(0x70C4)
        self.batch = bool(batch)

    def run(self) -> AttackResult:
        if self.batch:
            from repro.attacks.batch import try_run_batched
            result = try_run_batched(self)
            if result is not None:
                return result
        return self._run_scalar()

    def _run_scalar(self) -> AttackResult:
        n = self.victim.key.n
        d = self.victim.key.d  # ground truth, used ONLY for grading
        bits_total = d.bit_length()

        ciphertexts = [self.rng.next_below(n - 2) + 1
                       for _ in range(self.samples)]
        measured = [self.victim.decrypt_timed(
            c, noise_rng=self.rng, noise_std=self.noise_std).time
            for c in ciphertexts]

        # Per-sample simulated state after the exponent's leading 1-bit:
        # (accumulator, simulated prefix time).
        states: list[tuple[int, float]] = []
        for c in ciphertexts:
            acc = 1 % n
            t = mult_time(acc, acc, n)
            acc = (acc * acc) % n
            t += mult_time(acc, c, n)
            acc = (acc * c) % n
            states.append((acc, t))

        attack_bits = min(self.max_bits, bits_total - 1)
        recovered_bits, _margins = self._recover_path(
            states, ciphertexts, measured, n, attack_bits)
        # Single-error backtracking: after a wrong commitment the
        # simulated trajectory decorrelates and every later decision's
        # margin collapses toward zero.  Detect the collapse point, flip
        # that bit, and keep the path whose downstream margins are wider —
        # exactly the error-correction step Kocher describes.
        recovered_bits = self._backtrack(recovered_bits, _margins, states,
                                         ciphertexts, measured, n,
                                         attack_bits)

        truth = [(d >> (bits_total - 2 - i)) & 1
                 for i in range(attack_bits)]
        correct = sum(1 for a, b in zip(recovered_bits, truth) if a == b)
        score = correct / attack_bits if attack_bits else 0.0
        return AttackResult(
            name=self.NAME, category=AttackCategory.PHYSICAL,
            success=score >= 0.9, score=score,
            leaked=recovered_bits if score >= 0.9 else None,
            details={"bits_attacked": attack_bits, "correct": correct,
                     "constant_time_victim": self.victim.constant_time,
                     "samples": self.samples})

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _partition_diff(residuals: list[float],
                        flags: list[bool]) -> float:
        ones = [r for r, f in zip(residuals, flags) if f]
        zeros = [r for r, f in zip(residuals, flags) if not f]
        if not ones or not zeros:
            return 0.0
        return sum(ones) / len(ones) - sum(zeros) / len(zeros)

    def _recover_path(self, states, ciphertexts, measured, n, attack_bits,
                      forced: dict[int, int] | None = None
                      ) -> tuple[list[int], list[float]]:
        """One MSB-first pass; ``forced`` pins decisions at given steps.

        The per-bit statistic is symmetric lookahead: simulate *both*
        hypotheses one step further and partition the measured residuals
        by the extra-reduction flag of each hypothesis's **next square**.
        Only the correct hypothesis's flag is a real component of the
        victim's time, so its partition difference approaches the
        extra-reduction cost while the wrong one's hovers near zero.
        The margin ``|diff1 - diff0|`` therefore collapses only when the
        *prefix* is wrong — which is what backtracking detects.
        """
        states = list(states)
        bits: list[int] = []
        margins: list[float] = []
        for step in range(attack_bits):
            next0: list[tuple[int, float]] = []
            next1: list[tuple[int, float]] = []
            res0: list[float] = []
            res1: list[float] = []
            flag0: list[bool] = []
            flag1: list[bool] = []
            flag_mult: list[bool] = []
            for (acc, t), c, total in zip(states, ciphertexts, measured):
                sq_t = mult_time(acc, acc, n)
                a0 = (acc * acc) % n
                t0 = t + sq_t
                mul_t = mult_time(a0, c, n)
                a1 = (a0 * c) % n
                t1 = t0 + mul_t
                next0.append((a0, t0))
                next1.append((a1, t1))
                res0.append(total - t0)
                res1.append(total - t1)
                flag0.append(mult_time(a0, a0, n) > BASE_MULT_COST)
                flag1.append(mult_time(a1, a1, n) > BASE_MULT_COST)
                flag_mult.append(mul_t > BASE_MULT_COST)
            diff0 = self._partition_diff(res0, flag0)
            diff1 = self._partition_diff(res1, flag1)
            # The hypothetical multiply itself is a second, independent
            # witness for bit=1; averaging the two one-bit statistics
            # improves the per-decision SNR by ~sqrt(2).
            diff_mult = self._partition_diff(res0, flag_mult)
            score1 = (diff1 + diff_mult) / 2
            if forced is not None and step in forced:
                bit = forced[step]
            else:
                bit = 1 if score1 > diff0 else 0
            bits.append(bit)
            margins.append(abs(score1 - diff0))
            states = next1 if bit else next0
        return bits, margins

    def _backtrack(self, bits, margins, states, ciphertexts, measured, n,
                   attack_bits, rounds: int = 3) -> list[int]:
        """Flip weak decisions while the tail signal looks decorrelated.

        After a wrong commitment the lookahead statistic loses its anchor
        and downstream margins collapse; flipping the weakest decision and
        re-running restores them if the flip was the error.  Up to
        ``rounds`` corrections (Kocher's error-correction property: wrong
        guesses are detectable because the signal disappears).
        """
        tried: set[int] = set()
        for _ in range(rounds):
            if len(margins) < 3:
                return bits
            tail_mean = sum(margins[-3:]) / 3
            if tail_mean > EXTRA_REDUCTION_COST / 6:
                return bits  # healthy signal all the way: keep the path
            candidates = [i for i in range(len(margins)) if i not in tried]
            if not candidates:
                return bits
            weakest = min(candidates, key=lambda i: margins[i])
            tried.add(weakest)
            forced = {i: bits[i] for i in range(weakest)}
            forced[weakest] = 1 - bits[weakest]
            alt_bits, alt_margins = self._recover_path(
                states, ciphertexts, measured, n, attack_bits,
                forced=forced)
            after = slice(weakest + 1, None)
            if sum(alt_margins[after]) > sum(margins[after]):
                bits, margins = alt_bits, alt_margins
        return bits
