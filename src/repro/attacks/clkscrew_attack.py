"""CLKSCREW: software-only fault injection on TrustZone (paper ref [37]).

"CLKSCREW forces a processor to operate beyond its Dynamic Voltage and
Frequency Scaling limits in order to leak cryptographic keys."  The
attacker is normal-world *software*: it retunes the regulator domain that
clocks the core executing a secure-world AES, harvests the resulting
faulty ciphertexts, and runs last-round DFA on them.

The attack dies at three independently testable gates:
regulators not software-controllable; a hardware frequency interlock;
or the secure-world gate on cross-boundary retune requests.
"""

from __future__ import annotations

from repro.attacks.base import AttackCategory, AttackResult
from repro.attacks.fault_attacks import AESLastRoundDFA
from repro.cpu.soc import SoC
from repro.crypto.aes import TTableAES
from repro.crypto.rng import XorShiftRNG
from repro.fault.clkscrew import ClkscrewGlitcher


class ClkscrewAttack:
    """Normal-world DVFS abuse against a secure-world AES service."""

    NAME = "clkscrew-dvfs"

    def __init__(self, soc: SoC, secure_key: bytes,
                 victim_core: int = 0,
                 overdrive_mhz: float = 4000.0,
                 overdrive_mv: float = 700.0,
                 rng: XorShiftRNG | None = None,
                 max_faults: int = 400) -> None:
        self.soc = soc
        self._secure_key = secure_key  # held by the secure world + grader
        self.victim_core = victim_core
        self.overdrive_mhz = overdrive_mhz
        self.overdrive_mv = overdrive_mv
        self.rng = rng or XorShiftRNG(0xC1C5)
        self.max_faults = max_faults

    def run(self) -> AttackResult:
        core_name = self.soc.cores[self.victim_core].config.name
        glitcher = ClkscrewGlitcher(self.soc.dvfs, core_name,
                                    rng=self.rng, target_round=10)
        domain = self.soc.dvfs.domain_of_core(core_name)
        saved_point = domain.point if domain is not None else None

        if not glitcher.overdrive(self.overdrive_mhz, self.overdrive_mv):
            return AttackResult(
                name=self.NAME, category=AttackCategory.PHYSICAL,
                success=False, score=0.0,
                details={"blocked": "regulator request rejected",
                         "glitch_probability": 0.0})

        probability = glitcher.glitch_probability
        physics_hook = glitcher.aes_fault_hook()

        # The secure-world AES service: the *physics* (the armed hook)
        # applies to every encryption while the domain is overdriven.
        def victim_encrypt(pt: bytes, fault_hook) -> bytes:
            hook = physics_hook if fault_hook is not None else None
            # Clean references are impossible while overdriven on real
            # hardware; the attacker gets them beforehand.  We restore the
            # stable point for reference runs, as the real attack did by
            # interleaving nominal-frequency encryptions.
            if hook is None and domain is not None:
                current = domain.point
                domain.point = saved_point
                try:
                    return TTableAES(self._secure_key).encrypt_block(pt)
                finally:
                    domain.point = current
            return TTableAES(self._secure_key,
                             fault_hook=hook).encrypt_block(pt)

        dfa = AESLastRoundDFA(victim_encrypt, self._secure_key,
                              rng=self.rng, max_faults=self.max_faults,
                              fault_hook=physics_hook)
        result = dfa.run()

        if domain is not None and saved_point is not None:
            domain.point = saved_point  # attacker restores stealthily

        return AttackResult(
            name=self.NAME, category=AttackCategory.PHYSICAL,
            success=result.success, score=result.score,
            leaked=result.leaked,
            details={"glitch_probability": round(probability, 3),
                     "dfa": result.details})
