"""Side channels in non-data cache structures: TLB and BTB.

"Attacks are, however, not limited to memory caches: theoretically, any
cache structure shared by the attacker and the victim can be exploited,
e.g. the TLB [15] or the BTB [28]."

* :class:`TLBContentionAttack` — TLBleed-style: attacker and victim share
  a TLB (SMT); the victim touches one of two pages depending on a secret
  bit; the attacker detects which by observing evictions of its own
  translations from the corresponding TLB set.
* :class:`BranchShadowingAttack` — the victim's taken branch deposits a
  BTB entry; the attacker, whose shadow branch aliases it (virtual-address
  indexing, no domain tag), observes the entry and learns the branch
  direction — control flow, even inside an enclave.
"""

from __future__ import annotations

from typing import Callable

from repro.attacks.base import AttackCategory, AttackResult
from repro.cache.btb import BranchTargetBuffer
from repro.cache.tlb import TLB
from repro.crypto.rng import XorShiftRNG
from repro.memory.paging import PAGE_SIZE, PageFlags


class TLBContentionAttack:
    """Recover a victim's secret-dependent page-access pattern via the TLB.

    ``victim_step(bit)`` must perform the victim's translation for secret
    bit value ``bit`` through the *shared* TLB.  The attack constructs, for
    each bit value, an attacker page set that collides with the victim's
    corresponding page, primes it, runs the victim, and counts how many of
    its own translations were displaced.
    """

    NAME = "tlb-contention"

    def __init__(self, tlb: TLB, victim_pages: tuple[int, int],
                 victim_step: Callable[[int], None],
                 attacker_asid: int = 7,
                 rng: XorShiftRNG | None = None,
                 rounds: int = 32) -> None:
        self.tlb = tlb
        self.victim_pages = victim_pages
        self.victim_step = victim_step
        self.attacker_asid = attacker_asid
        self.rng = rng or XorShiftRNG(0x71B)
        self.rounds = rounds

    def _colliding_pages(self, target_page: int, count: int) -> list[int]:
        """Attacker pages mapping to the same TLB set as ``target_page``."""
        base = 0x4000_0000
        out = []
        stride = self.tlb.num_sets * PAGE_SIZE
        page = base + (target_page // PAGE_SIZE % self.tlb.num_sets) \
            * PAGE_SIZE
        while len(out) < count:
            out.append(page)
            page += stride
        return out

    def _prime(self, pages: list[int]) -> None:
        for page in pages:
            self.tlb.insert(self.attacker_asid, page, page,
                            PageFlags.PRESENT | PageFlags.USER)

    def _probe(self, pages: list[int]) -> int:
        """Number of attacker entries displaced (our 'slow translations')."""
        return sum(1 for page in pages
                   if not self.tlb.contains(self.attacker_asid, page))

    def run(self, secret_bits: list[int]) -> AttackResult:
        sets = [self._colliding_pages(self.victim_pages[b], self.tlb.ways)
                for b in (0, 1)]
        guessed: list[int] = []
        for bit in secret_bits:
            votes = [0, 0]
            for _ in range(self.rounds):
                self._prime(sets[0])
                self._prime(sets[1])
                self.victim_step(bit)
                evict0 = self._probe(sets[0])
                evict1 = self._probe(sets[1])
                if evict0 > evict1:
                    votes[0] += 1
                elif evict1 > evict0:
                    votes[1] += 1
            guessed.append(0 if votes[0] > votes[1] else 1)
        correct = sum(1 for g, s in zip(guessed, secret_bits) if g == s)
        score = correct / len(secret_bits) if secret_bits else 0.0
        return AttackResult(
            name=self.NAME, category=AttackCategory.MICROARCHITECTURAL,
            success=score >= 0.9, score=score,
            leaked=guessed if score >= 0.9 else None,
            details={"bits": len(secret_bits), "correct": correct})


class BranchShadowingAttack:
    """Infer a victim branch's direction from shared BTB state.

    ``victim_step(bit)`` executes the victim's secret-dependent branch at
    ``victim_branch_pc`` (taken when ``bit`` is 1 — taken branches insert
    BTB entries).  The attacker's shadow branch lives in its own address
    space at an aliasing PC; with a virtually-indexed, untagged BTB the
    shadow branch observes the victim's entry.  With per-ASID tagging
    (the mitigation) the observation fails.
    """

    NAME = "btb-branch-shadowing"

    def __init__(self, btb: BranchTargetBuffer, victim_branch_pc: int,
                 victim_step: Callable[[int], None],
                 victim_asid: int = 1, attacker_asid: int = 7,
                 attacker_base: int = 0x4000_0000) -> None:
        self.btb = btb
        self.victim_branch_pc = victim_branch_pc
        self.victim_step = victim_step
        self.victim_asid = victim_asid
        self.attacker_asid = attacker_asid
        self.shadow_pc = btb.aliasing_pc(victim_branch_pc, attacker_base)

    def run(self, secret_bits: list[int]) -> AttackResult:
        guessed: list[int] = []
        for bit in secret_bits:
            # Reset: evict any aliasing entry via the shadow branch's slot.
            self.btb.evict(self.shadow_pc, self.attacker_asid)
            self.victim_step(bit)
            # Shadow probe: does a prediction exist at the aliasing PC?
            observed = self.btb.predict(self.shadow_pc,
                                        self.attacker_asid) is not None
            guessed.append(1 if observed else 0)
        correct = sum(1 for g, s in zip(guessed, secret_bits) if g == s)
        score = correct / len(secret_bits) if secret_bits else 0.0
        return AttackResult(
            name=self.NAME, category=AttackCategory.MICROARCHITECTURAL,
            success=score >= 0.9, score=score,
            leaked=guessed if score >= 0.9 else None,
            details={"shadow_pc": hex(self.shadow_pc),
                     "tagged": self.btb.tag_with_asid})
