"""Rowhammer against enclave memory: silent corruption vs detected abort.

The attack needs no access to the victim's data at all — only physical
adjacency (which the paper's ref [18], SPOILER, shows speculative leaks
can provide; here adjacency is granted as profiled knowledge).  The
attacker hammers the rows flanking the victim's row from its *own*
memory; the DRAM physics does the rest.

Outcome classes, per architecture:

* plain memory / Sanctum — **silent corruption**: the enclave's data
  changes and nothing notices (integrity pain of skipping the MEE);
* SGX — the MEE integrity tag catches the flip on the next enclave read:
  corruption is converted into a **detected violation** (attacker can
  still deny service, but cannot silently tamper).
"""

from __future__ import annotations

from repro.attacks.base import AttackCategory, AttackResult, AttackerProcess
from repro.errors import AccessFault, MemoryFault, SecurityViolation
from repro.memory.disturbance import ROW_SIZE, DisturbanceModel


class RowhammerAttack:
    """Hammer the rows around ``target_paddr`` until a neighbour flips."""

    NAME = "rowhammer"

    def __init__(self, arch, model: DisturbanceModel, target_paddr: int,
                 victim_size: int = 4096,
                 max_hammer_iterations: int = 200_000) -> None:
        self.arch = arch
        self.model = model
        self.target_paddr = target_paddr
        self.victim_size = victim_size
        self.max_iterations = max_hammer_iterations
        self.attacker = AttackerProcess(arch, core_id=0,
                                        name="hammer-proc")

    def _aggressor_addresses(self) -> list[int]:
        victim_row = self.model.row_of(self.target_paddr)
        rows = [victim_row - 1, victim_row + 1]
        last = self.model.dram_size // ROW_SIZE - 1
        return [self.model.row_base(r) for r in rows if 0 <= r <= last]

    def run(self, read_back) -> AttackResult:
        """Hammer; ``read_back()`` returns the victim's current data.

        ``read_back`` is harness-side grading (the attacker cannot read
        enclave memory — that is the point).  It should raise
        :class:`SecurityViolation` if the architecture detects tampering.
        """
        aggressors = self._aggressor_addresses()
        # Inaccessible aggressor rows (e.g. the EPC-interior neighbour)
        # are dropped; single-sided hammering remains possible as long as
        # one neighbour is attacker-owned memory.
        usable = []
        for addr in aggressors:
            try:
                self.attacker.touch_dram(addr)
                usable.append(addr)
            except (AccessFault, MemoryFault):
                continue
        if not usable:
            return AttackResult(
                name=self.NAME, category=AttackCategory.PHYSICAL,
                success=False, score=0.0,
                details={"blocked": "no attacker-accessible row adjacent "
                                    "to the victim"})
        before = read_back()
        target_lo = self.target_paddr
        target_hi = self.target_paddr + self.victim_size
        hammered = 0
        flipped = False
        for i in range(self.max_iterations):
            addr = usable[i % len(usable)]
            # flush+read: each iteration reaches DRAM (an activation).
            self.attacker.flush(addr)
            self.attacker.touch_dram(addr)
            hammered += 1
            if any(target_lo <= flip.addr < target_hi
                   for flip in self.model.flips):
                flipped = True
                break

        detected = False
        corrupted = False
        after = None
        try:
            after = read_back()
            corrupted = after != before
        except SecurityViolation:
            detected = True

        silent_corruption = corrupted and not detected
        return AttackResult(
            name=self.NAME, category=AttackCategory.PHYSICAL,
            success=silent_corruption,
            score=1.0 if silent_corruption else (0.3 if detected else 0.0),
            details={"hammer_iterations": hammered,
                     "bit_flipped": flipped,
                     "tamper_detected": detected,
                     "silent_corruption": silent_corruption})
