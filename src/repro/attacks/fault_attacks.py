"""Fault analysis: Bellcore RSA-CRT factoring and AES last-round DFA.

Section 5: "intrusive attacks induce faults in the system that lead to
secret information being leaked in the system's output [5]".

* :class:`BellcoreRSAAttack` — one faulty CRT signature factors the
  modulus: a fault confined to the mod-``p`` half leaves the signature
  correct mod ``q``, so ``gcd(sig^e - m, n) = q``.  The verify-before-
  release countermeasure turns every faulty shot into a refusal.
* :class:`AESLastRoundDFA` — single-bit faults injected on the state
  before the final SubBytes constrain the last round key: for the
  affected ciphertext byte ``j``, only candidates ``k`` with
  ``HW(S^-1(ct_j ^ k) ^ S^-1(ct'_j ^ k)) == 1`` survive.  Intersecting a
  few faults per byte isolates ``k10``; inverting the key schedule yields
  the master key.
"""

from __future__ import annotations

from math import gcd

from repro.attacks.base import AttackCategory, AttackResult
from repro.crypto.aes import INV_SBOX, TTableAES, invert_key_schedule
from repro.crypto.rng import XorShiftRNG
from repro.crypto.rsa import RSA
from repro.errors import SecurityViolation
from repro.fault.injector import GlitchInjector
from repro.fault.models import FaultKind, FaultSpec, GlitchChannel


class BellcoreRSAAttack:
    """Factor an RSA modulus from one faulty CRT signature."""

    NAME = "bellcore-rsa-crt"

    def __init__(self, victim: RSA, rng: XorShiftRNG | None = None,
                 shots: int = 8,
                 channel: GlitchChannel = GlitchChannel.VOLTAGE) -> None:
        self.victim = victim
        self.rng = rng or XorShiftRNG(0xBE11)
        self.shots = shots
        self.spec = FaultSpec(channel, FaultKind.BIT_FLIP, crt_half="p")

    def run(self) -> AttackResult:
        n, e = self.victim.key.public()
        message = self.rng.next_below(n - 2) + 1
        injector = GlitchInjector(self.spec, self.rng)
        hook = injector.crt_fault_hook()
        refusals = 0
        factor = None
        for _ in range(self.shots):
            try:
                faulty = self.victim.sign_crt(message, fault_hook=hook)
            except SecurityViolation:
                refusals += 1  # Bellcore countermeasure withheld the output
                continue
            candidate = gcd((pow(faulty, e, n) - message) % n, n)
            if 1 < candidate < n:
                factor = candidate
                break
        success = factor is not None and n % factor == 0
        return AttackResult(
            name=self.NAME, category=AttackCategory.PHYSICAL,
            success=success, score=1.0 if success else 0.0,
            leaked={"factor": factor} if success else None,
            details={"shots": self.shots, "refusals": refusals,
                     "verify_enabled": self.victim.verify_signatures})


class AESLastRoundDFA:
    """Differential fault analysis on AES-128's final round.

    ``victim_encrypt(pt, fault_hook)`` must run the victim cipher with the
    supplied hook armed (or ignore it, if the platform shields the victim
    from glitches — then no faulty outputs appear and the attack starves).
    """

    NAME = "aes-lastround-dfa"

    def __init__(self, victim_encrypt, true_key: bytes,
                 rng: XorShiftRNG | None = None,
                 max_faults: int = 400,
                 channel: GlitchChannel = GlitchChannel.CLOCK,
                 fault_hook=None) -> None:
        self.victim_encrypt = victim_encrypt
        self.true_key = true_key  # grading only
        self.rng = rng or XorShiftRNG(0xDFA5)
        self.max_faults = max_faults
        self.fault_hook = fault_hook
        if self.fault_hook is None:
            spec = FaultSpec(channel, FaultKind.BIT_FLIP, target_round=10)
            self.injector = GlitchInjector(spec, self.rng)
            self.fault_hook = self.injector.aes_fault_hook()

    @staticmethod
    def _surviving_candidates(ct_byte: int, faulty_byte: int,
                              candidates: set[int]) -> set[int]:
        return {
            k for k in candidates
            if bin(INV_SBOX[ct_byte ^ k]
                   ^ INV_SBOX[faulty_byte ^ k]).count("1") == 1
        }

    def run(self) -> AttackResult:
        candidates = [set(range(256)) for _ in range(16)]
        faults_used = 0
        collected = 0
        for _ in range(self.max_faults):
            pt = self.rng.bytes(16)
            clean = self.victim_encrypt(pt, None)
            faulty = self.victim_encrypt(pt, self.fault_hook)
            collected += 1
            diff = [j for j in range(16) if clean[j] != faulty[j]]
            if len(diff) != 1:
                continue  # no fault landed, or multi-byte corruption
            j = diff[0]
            if len(candidates[j]) <= 1:
                continue
            narrowed = self._surviving_candidates(clean[j], faulty[j],
                                                  candidates[j])
            if narrowed:
                candidates[j] = narrowed
                faults_used += 1
            if all(len(c) == 1 for c in candidates):
                break

        resolved = all(len(c) == 1 for c in candidates)
        recovered_key = None
        if resolved:
            k10 = bytes(next(iter(c)) for c in candidates)
            recovered_key = invert_key_schedule(k10)
        success = recovered_key == self.true_key
        solved_bytes = sum(1 for c in candidates if len(c) == 1)
        return AttackResult(
            name=self.NAME, category=AttackCategory.PHYSICAL,
            success=success, score=solved_bytes / 16,
            leaked=recovered_key.hex() if success else None,
            details={"faulty_encryptions": collected,
                     "effective_faults": faults_used,
                     "bytes_solved": solved_bytes})


def make_glitchable_aes_victim(key: bytes):
    """A bare AES service whose hook slot models physical glitch exposure.

    Returns ``victim_encrypt(pt, fault_hook)`` suitable for
    :class:`AESLastRoundDFA` — the unprotected-embedded-device baseline.
    """

    def victim_encrypt(pt: bytes, fault_hook) -> bytes:
        cipher = TTableAES(key, fault_hook=fault_hook)
        return cipher.encrypt_block(pt)

    return victim_encrypt
