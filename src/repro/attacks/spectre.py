"""Spectre: transient execution via branch-predictor mistraining (4.2).

* :class:`SpectreV1Attack` (Spectre-PHT, bounds check bypass): train the
  victim's bounds check in-bounds, then call it out-of-bounds; the
  mispredicted guard transiently executes the array access that
  "bypasses all software defenses like bounds checking", and the
  secret-indexed probe load transmits the byte through the cache.
* :class:`SpectreBTBAttack` (branch target injection): "branch prediction
  buffers are indexed using virtual addresses ... allowing mistraining
  not only from the same address space, but also from different
  processes" [21].  The attacker executes a return at a BTB-aliasing
  address in *its own* program to plant an attacker-chosen target; the
  victim's return then transiently executes the disclosure gadget.

Both attacks drive real assembled programs on the simulated core; the
defences that stop them (in-order cores, ``fence`` after the check,
per-context BTB tags) are exercised by the benches.
"""

from __future__ import annotations

from repro.attacks.base import AttackCategory, AttackResult
from repro.cpu.soc import SoC
from repro.crypto.rng import XorShiftRNG
from repro.isa import assemble
from repro.isa.instructions import INSTR_SIZE
from repro.isa.program import merge_programs

PROBE_STRIDE = 64


class _ProbeArray:
    """256-line probe array + the Flush+Reload measurement over it."""

    def __init__(self, soc: SoC, base: int) -> None:
        self.soc = soc
        self.base = base

    def addr(self, byte: int) -> int:
        return self.base + byte * PROBE_STRIDE

    def flush_all(self) -> None:
        for byte in range(256):
            self.soc.hierarchy.flush_line(self.addr(byte))

    def hot_byte(self, core: int = 1,
                 ignore: set[int] | None = None) -> int | None:
        """The byte whose probe line is cached, or None (no signal)."""
        core = min(core, len(self.soc.hierarchy.l1s) - 1)
        threshold = self.soc.hierarchy.hit_threshold
        hits = [byte for byte in range(256)
                if byte not in (ignore or set())
                and self.soc.hierarchy.timed_access(core, self.addr(byte))
                <= threshold]
        return hits[0] if hits else None


class SpectreV1Attack:
    """Bounds-check bypass against a victim service on the same SoC."""

    NAME = "spectre-v1-pht"

    def __init__(self, soc: SoC, secret: bytes,
                 with_fence: bool = False,
                 rng: XorShiftRNG | None = None) -> None:
        self.soc = soc
        self.secret = secret
        self.with_fence = with_fence
        self.rng = rng or XorShiftRNG(0x59EC)
        dram = soc.regions.get("dram")
        self.array_base = dram.base + 0x10_0000
        self.array_len = 128  # bytes of legitimate array
        self.secret_base = self.array_base + 0x1000  # victim-private data
        self.probe = _ProbeArray(soc, dram.base + 0x20_0000)
        self._install()

    def _install(self) -> None:
        mem = self.soc.memory
        # Legit array entries are zero -> training touches probe line 0,
        # which the attacker ignores.  The secret must avoid 0 bytes for
        # an unambiguous read (harness responsibility).
        mem.clear_range(self.array_base, self.array_len)
        for i, byte in enumerate(self.secret):
            mem.write_bytes(self.secret_base + i * 8, bytes([byte]))
        fence = "    fence\n" if self.with_fence else ""
        text = f"""
        victim:
            li   r2, {self.array_len}
            bge  r1, r2, vdone
        {fence}
            li   r3, {self.array_base}
            add  r3, r3, r1
            load r4, 0(r3)
            li   r5, 255
            and  r4, r4, r5
            li   r6, 6
            shl  r4, r4, r6
            li   r5, {self.probe.base}
            add  r5, r5, r4
            load r6, 0(r5)
        vdone:
            halt
        """
        self.program = assemble(text, base=self.soc.dram_base + 0x1000,
                                name="spectre-v1-victim")

    def _call_victim(self, index: int) -> None:
        core = self.soc.cores[0]
        core.load_program(self.program, entry="victim")
        core.set_reg(1, index)
        core.run(max_steps=64)

    def run(self) -> AttackResult:
        recovered = bytearray()
        for i in range(len(self.secret)):
            # Train the bounds check in-bounds.  More iterations than the
            # predictor's history depth: the first few trainings after a
            # malicious (taken) call land on other gshare indices; only
            # once the history re-zeroes do updates hit the slot the next
            # malicious call will consult.
            for _ in range(16):
                self._call_victim(self.rng.next_below(self.array_len))
            self.probe.flush_all()
            # One malicious out-of-bounds call.
            self._call_victim(self.secret_base + i * 8 - self.array_base)
            byte = self.probe.hot_byte(core=1, ignore={0})
            recovered.append(byte if byte is not None else 0)
        correct = sum(1 for a, b in zip(recovered, self.secret) if a == b)
        score = correct / len(self.secret) if self.secret else 0.0
        return AttackResult(
            name=self.NAME, category=AttackCategory.MICROARCHITECTURAL,
            success=score >= 0.9, score=score,
            leaked=bytes(recovered) if score >= 0.9 else None,
            details={"recovered": bytes(recovered).hex(),
                     "with_fence": self.with_fence})


class SpectreBTBAttack:
    """Cross-address-space branch target injection via an aliasing return."""

    NAME = "spectre-v2-btb"

    def __init__(self, soc: SoC, secret: bytes,
                 rng: XorShiftRNG | None = None) -> None:
        self.soc = soc
        self.secret = secret
        self.rng = rng or XorShiftRNG(0x5B7B)
        dram = soc.regions.get("dram")
        self.secret_base = dram.base + 0x30_0000
        self.probe = _ProbeArray(soc, dram.base + 0x40_0000)
        for i, byte in enumerate(secret):
            soc.memory.write_bytes(self.secret_base + i * 8, bytes([byte]))
        self._build_victim()

    def _build_victim(self) -> None:
        # Victim: a tail-jumped return (never preceded by jal, so the RSB
        # is empty and the BTB predicts it) plus a disclosure gadget that
        # is never architecturally reached.  r7 holds the secret offset the
        # gadget reads — a value the victim naturally has live in a
        # register, the classic v2 setup.
        base = self.soc.dram_base + 0x2000
        legit_addr = base + 3 * INSTR_SIZE  # li, jmp, ret, then legit:
        text = f"""
        ventry:
            li   r15, {legit_addr}
            jmp  do_ret
        do_ret:
            ret
        legit:
            halt
        gadget:
            li   r3, {self.secret_base}
            add  r3, r3, r7
            load r4, 0(r3)
            li   r5, 255
            and  r4, r4, r5
            li   r6, 6
            shl  r4, r4, r6
            li   r5, {self.probe.base}
            add  r5, r5, r4
            load r6, 0(r5)
            halt
        """
        self.victim = assemble(text, base=base, name="spectre-v2-victim")
        self.victim_ret_pc = self.victim.address_of("do_ret")
        assert self.victim.address_of("legit") == legit_addr
        self.gadget_addr = self.victim.address_of("gadget")

    def _mistrain(self) -> None:
        """Attacker process: plant gadget_addr at the aliasing BTB slot."""
        core = self.soc.cores[0]
        btb = core.predictor.btb
        aliased = btb.aliasing_pc(self.victim_ret_pc,
                                  self.soc.dram_base + 0x0800_0000)
        pad_instrs = (aliased - (aliased & ~0xFFF)) // INSTR_SIZE
        lines = ["    nop"] * pad_instrs + ["    ret", "    halt"]
        # lr holds the numeric value of the victim's gadget address; in
        # the attacker's own address space that address is mapped to a
        # benign landing pad (the attacker lays out its memory to make the
        # mistraining return architecturally harmless).
        trainer = assemble("\n".join(["aentry:"] + lines),
                           base=aliased - pad_instrs * INSTR_SIZE,
                           name="spectre-v2-trainer")
        landing = assemble("lpad:\n    halt", base=self.gadget_addr,
                           name="spectre-v2-landing")
        attacker = merge_programs([trainer, landing],
                                  name="spectre-v2-attacker")
        core.mmu.asid = 7  # attacker's address space
        core.load_program(attacker, entry="aentry")
        core.set_reg(15, self.gadget_addr)
        core.run(max_steps=pad_instrs + 8)

    def _run_victim(self, secret_offset: int) -> None:
        core = self.soc.cores[0]
        core.mmu.asid = 1  # victim's address space
        core.load_program(self.victim, entry="ventry")
        core.set_reg(7, secret_offset)
        core.run(max_steps=64)

    def run(self) -> AttackResult:
        if not hasattr(self.soc.cores[0], "predictor"):
            return AttackResult(
                name=self.NAME,
                category=AttackCategory.MICROARCHITECTURAL,
                success=False, score=0.0,
                details={"blocked": "in-order core: no branch prediction"})
        recovered = bytearray()
        for i in range(len(self.secret)):
            self._mistrain()
            self.probe.flush_all()
            self._run_victim(i * 8)
            byte = self.probe.hot_byte(core=1, ignore={0})
            recovered.append(byte if byte is not None else 0)
        correct = sum(1 for a, b in zip(recovered, self.secret) if a == b)
        score = correct / len(self.secret) if self.secret else 0.0
        tagged = self.soc.cores[0].predictor.btb.tag_with_asid \
            if hasattr(self.soc.cores[0], "predictor") else None
        return AttackResult(
            name=self.NAME, category=AttackCategory.MICROARCHITECTURAL,
            success=score >= 0.9, score=score,
            leaked=bytes(recovered) if score >= 0.9 else None,
            details={"recovered": bytes(recovered).hex(),
                     "btb_tagged": tagged})
