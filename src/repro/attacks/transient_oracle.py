"""Scripted transient-attack oracle: the TAB-S42 design-point sweep.

The six microarchitectural design points the paper's transient table
sweeps — and the scripted Spectre/Meltdown/Foreshadow attacks run on
each — live here so two consumers can share them verbatim:

* :func:`repro.core.comparison.transient_applicability_table` renders
  the scores into TAB-S42 (byte-identical to its historical output);
* the Spectre scanner (:mod:`repro.spec.scanner`) builds its knob-grid
  columns from the same design points, and the differential suite
  asserts the scanner's derived verdicts never contradict these
  scripted oracles on overlapping configs.
"""

from __future__ import annotations

from repro.common import PlatformClass
from repro.cpu.predictor import PredictorConfig
from repro.cpu.soc import SoC, SoCConfig
from repro.cpu.speculative import SpeculativeConfig
from repro.crypto.rng import XorShiftRNG
from repro.runner import derive_seed

#: (label, SpeculativeConfig kwargs) per design point, in TAB-S42 row
#: order.  Labels are load-bearing: they seed the per-cell RNG streams,
#: so renaming one changes measured scores.
TRANSIENT_DESIGN_POINTS: tuple[tuple[str, dict], ...] = (
    ("speculative (commodity)", {}),
    ("in-order (embedded-class)", {"speculative": False}),
    ("fault at issue (Meltdown fix)", {"fault_at_retirement": False}),
    ("no L1TF forwarding (Foreshadow fix)", {"l1tf_forwarding": False}),
    ("BTB tagged per context (v2 fix)",
     {"predictor": PredictorConfig(btb_tag_with_asid=True)}),
    ("no transient window", {"transient_window": 0}),
)

_DESIGN_POINTS_BY_LABEL: dict[str, dict] = dict(TRANSIENT_DESIGN_POINTS)

#: The scripted attacks the oracle runs, in TAB-S42 column order.
ORACLE_ATTACKS = ("spectre-v1", "spectre-v2", "meltdown", "foreshadow")


def design_point(label: str) -> dict:
    """The SpeculativeConfig kwargs of one design point (copy)."""
    try:
        return dict(_DESIGN_POINTS_BY_LABEL[label])
    except KeyError:
        raise KeyError(f"unknown design point {label!r}") from None


def design_soc_variant(name: str, **spec_kwargs) -> SoC:
    """A 2-core server-class SoC with explicit speculation knobs."""
    return SoC(SoCConfig(
        name=name, platform=PlatformClass.SERVER_DESKTOP, num_cores=2,
        speculative=spec_kwargs.pop("speculative", True),
        spec=SpeculativeConfig(**spec_kwargs)))


def design_soc(label: str) -> SoC:
    """A fresh SoC for one TAB-S42 design point."""
    return design_soc_variant(label, **design_point(label))


def scripted_transient_scores(label: str, secret: bytes = b"TRNS",
                              seed: int = 0x42) -> dict[str, float]:
    """Run the four scripted attacks on one design point; return scores.

    Seeds derive per (design point, attack) exactly as the historical
    table code did, so the rendered TAB-S42 is unchanged and the
    differential suite compares against the same measurements.
    """
    from repro.arch import SGX
    from repro.attacks.foreshadow import ForeshadowAttack
    from repro.attacks.meltdown import MeltdownAttack
    from repro.attacks.spectre import SpectreBTBAttack, SpectreV1Attack

    scores: dict[str, float] = {}

    soc = design_soc(label)
    rng = XorShiftRNG(derive_seed(seed, label, "spectre-v1"))
    scores["spectre-v1"] = SpectreV1Attack(soc, secret, rng=rng).run().score

    soc = design_soc(label)
    rng = XorShiftRNG(derive_seed(seed, label, "spectre-v2"))
    scores["spectre-v2"] = SpectreBTBAttack(soc, secret, rng=rng).run().score

    soc = design_soc(label)
    scores["meltdown"] = MeltdownAttack(soc, secret).run().score

    soc = design_soc(label)
    if soc.config.speculative:
        sgx = SGX(soc)
        victim = sgx.deploy_aes_victim(
            bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        scores["foreshadow"] = ForeshadowAttack(sgx, victim.handle).run().score
    else:
        # Foreshadow needs the terminal-fault window; an in-order host
        # has none, matching the table's hardcoded 0.00 cell.
        scores["foreshadow"] = 0.0
    return scores


def scripted_transient_verdicts(label: str, secret: bytes = b"TRNS",
                                seed: int = 0x42,
                                threshold: float = 0.9
                                ) -> dict[str, bool]:
    """Boolean success per attack (score >= threshold) on a design point."""
    return {attack: score >= threshold
            for attack, score in
            scripted_transient_scores(label, secret, seed).items()}
