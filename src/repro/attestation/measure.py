"""Code/data measurement: hashes and PCR-style extension chains."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.sha256 import sha256
from repro.memory.phys import PhysicalMemory


def measure_memory(memory: PhysicalMemory, base: int, size: int) -> bytes:
    """SHA-256 over a physical range (the attested region)."""
    if size <= 0:
        raise ValueError("size must be positive")
    return sha256(memory.read_bytes(base, size))


@dataclass
class Measurement:
    """An extendable measurement register (TPM-PCR / SGX-MRENCLAVE style).

    ``extend`` folds new evidence into the running value as
    ``H(current || evidence)``; order matters, which is what gives boot
    chains their meaning.
    """

    value: bytes = field(default_factory=lambda: b"\x00" * 32)
    log: list[str] = field(default_factory=list)

    def extend(self, evidence: bytes, label: str = "") -> bytes:
        """Fold ``evidence`` in; returns the new value."""
        self.value = sha256(self.value + evidence)
        self.log.append(label or f"<{len(evidence)} bytes>")
        return self.value

    def extend_memory(self, memory: PhysicalMemory, base: int, size: int,
                      label: str = "") -> bytes:
        """Extend with the hash of a physical range."""
        return self.extend(measure_memory(memory, base, size),
                           label or f"mem[{base:#x}+{size:#x}]")

    def matches(self, expected: bytes) -> bool:
        return self.value == expected
