"""C-FLAT-style control-flow attestation (paper ref [1]).

The paper's adversary taxonomy comes from C-FLAT, which exists because
*static* attestation (SMART/TrustLite: hash the code image) cannot see
runtime control-flow hijacks — a data-only attack leaves every byte of
code intact while steering execution down a different path.

:class:`ControlFlowAttestor` runs a program on a simulated core with the
architectural control-flow collector armed, folds every control-flow
event into a hash chain, and MACs (static-measurement, path-hash, nonce)
into one report.  The verifier, knowing the program's CFG, precomputes
the expected path hash(es) for the challenge input; a hijacked run
produces a valid-code-but-wrong-path report that static attestation would
accept and CFA rejects.
"""

from __future__ import annotations

from repro.attestation.report import AttestationReport
from repro.cpu.core import Core
from repro.crypto.sha256 import sha256
from repro.isa.program import Program


def hash_cflow_trace(trace: list[tuple[str, int, int]]) -> bytes:
    """Fold a control-flow event list into a 32-byte path hash.

    ``H_i = SHA256(H_{i-1} || kind || pc || target)`` — order-sensitive,
    so any divergence at any point changes the final value (C-FLAT's
    cumulative-hash construction).
    """
    value = b"\x00" * 32
    for kind, pc, target in trace:
        value = sha256(value + kind.encode() + pc.to_bytes(8, "little")
                       + target.to_bytes(8, "little"))
    return value


class ControlFlowAttestor:
    """Measures the *execution path* of a program run, not just its code."""

    def __init__(self, key: bytes) -> None:
        self._key = key

    def measure_run(self, core: Core, program: Program,
                    entry: str | None = None,
                    regs: dict[int, int] | None = None,
                    max_steps: int = 100_000
                    ) -> tuple[bytes, list[tuple[str, int, int]]]:
        """Execute ``program`` with tracing; returns (path hash, trace)."""
        trace: list[tuple[str, int, int]] = []
        core.load_program(program, entry=entry)
        for reg, value in (regs or {}).items():
            core.set_reg(reg, value)
        previous = core.cflow_collector
        core.cflow_collector = trace
        try:
            core.run(max_steps=max_steps)
        finally:
            core.cflow_collector = previous
        return hash_cflow_trace(trace), trace

    def attest_run(self, core: Core, program: Program, nonce: bytes,
                   static_measurement: bytes,
                   entry: str | None = None,
                   regs: dict[int, int] | None = None) -> AttestationReport:
        """Run + report: measurement field = H(static || path)."""
        path_hash, _ = self.measure_run(core, program, entry=entry,
                                        regs=regs)
        combined = sha256(static_measurement + path_hash)
        return AttestationReport.create(
            self._key, combined, nonce, params=path_hash)

    def verify_run(self, report: AttestationReport, nonce: bytes,
                   static_measurement: bytes,
                   expected_path_hashes: set[bytes]) -> bool:
        """Verifier side: MAC + nonce + static hash + known-good path."""
        if not report.verify(self._key):
            return False
        if report.nonce != nonce:
            return False
        path_hash = report.params
        if path_hash not in expected_path_hashes:
            return False
        return report.measurement == sha256(static_measurement + path_hash)


def expected_path_hash(core: Core, program: Program,
                       entry: str | None = None,
                       regs: dict[int, int] | None = None) -> bytes:
    """Verifier-side oracle: simulate the known-good binary on known input.

    Real C-FLAT verifiers precompute path hashes from the CFG; in the
    simulation the verifier owns a pristine copy of the device model and
    simply executes it.
    """
    trace: list[tuple[str, int, int]] = []
    core.load_program(program, entry=entry)
    for reg, value in (regs or {}).items():
        core.set_reg(reg, value)
    previous = core.cflow_collector
    core.cflow_collector = trace
    try:
        core.run()
    finally:
        core.cflow_collector = previous
    return hash_cflow_trace(trace)
