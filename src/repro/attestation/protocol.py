"""Remote attestation: nonce freshness, expected measurements, replay defence."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.attestation.report import AttestationReport
from repro.crypto.rng import XorShiftRNG


class VerificationResult(enum.Enum):
    """Why a report was accepted or rejected."""

    OK = "ok"
    BAD_MAC = "bad-mac"
    UNKNOWN_NONCE = "unknown-nonce"
    REPLAYED = "replayed"
    WRONG_MEASUREMENT = "wrong-measurement"

    @property
    def accepted(self) -> bool:
        return self is VerificationResult.OK


@dataclass
class _Challenge:
    nonce: bytes
    used: bool = False


class RemoteVerifier:
    """The verifier side of SMART-style remote attestation.

    Shares a symmetric key with the device (SMART's provisioning model).
    Issues fresh nonces, accepts each at most once, and checks the
    measurement against a whitelist of known-good code hashes.
    """

    def __init__(self, shared_key: bytes,
                 rng: XorShiftRNG | None = None) -> None:
        self.shared_key = shared_key
        self.rng = rng or XorShiftRNG(0x7E57)
        self._challenges: dict[bytes, _Challenge] = {}
        self._known_good: set[bytes] = set()
        self.accepted = 0
        self.rejected = 0

    def trust_measurement(self, measurement: bytes) -> None:
        """Whitelist a known-good code hash."""
        self._known_good.add(measurement)

    def challenge(self) -> bytes:
        """Issue a fresh nonce for the device to attest against."""
        nonce = self.rng.bytes(16)
        self._challenges[nonce] = _Challenge(nonce)
        return nonce

    def verify(self, report: AttestationReport) -> VerificationResult:
        """Check MAC, nonce freshness, single use and measurement."""
        result = self._verify(report)
        if result.accepted:
            self.accepted += 1
        else:
            self.rejected += 1
        return result

    def _verify(self, report: AttestationReport) -> VerificationResult:
        if not report.verify(self.shared_key):
            return VerificationResult.BAD_MAC
        challenge = self._challenges.get(report.nonce)
        if challenge is None:
            return VerificationResult.UNKNOWN_NONCE
        if challenge.used:
            return VerificationResult.REPLAYED
        if self._known_good and report.measurement not in self._known_good:
            # Nonce deliberately NOT consumed: the device may retry with
            # the correct code (matches SMART's usage).
            return VerificationResult.WRONG_MEASUREMENT
        challenge.used = True
        return VerificationResult.OK
