"""Attestation reports: SMART's wire format, HMAC'd and serialisable."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hmacmod import hmac_sha256, hmac_verify
from repro.errors import AttestationError

_MAGIC = b"ATTR"


@dataclass(frozen=True)
class AttestationReport:
    """MAC'd evidence: measurement, nonce, inputs, continuation address."""

    measurement: bytes
    nonce: bytes
    params: bytes
    dest_addr: int
    mac: bytes = b""

    def payload(self) -> bytes:
        """The MAC'd byte string."""
        return (_MAGIC
                + len(self.measurement).to_bytes(2, "little") + self.measurement
                + len(self.nonce).to_bytes(2, "little") + self.nonce
                + len(self.params).to_bytes(2, "little") + self.params
                + self.dest_addr.to_bytes(8, "little"))

    @classmethod
    def create(cls, key: bytes, measurement: bytes, nonce: bytes,
               params: bytes = b"", dest_addr: int = 0) -> "AttestationReport":
        """Build and MAC a report under the device key."""
        unsigned = cls(measurement, nonce, params, dest_addr)
        return cls(measurement, nonce, params, dest_addr,
                   mac=hmac_sha256(key, unsigned.payload()))

    def verify(self, key: bytes) -> bool:
        """True when the MAC binds this exact content under ``key``."""
        return hmac_verify(key, self.payload(), self.mac)

    # -- serialisation (reports travel through untrusted memory) -------------

    def pack(self) -> bytes:
        return self.payload() + len(self.mac).to_bytes(2, "little") + self.mac

    @classmethod
    def unpack(cls, data: bytes) -> "AttestationReport":
        """Parse a packed report; raises :class:`AttestationError` on junk."""
        try:
            if data[:4] != _MAGIC:
                raise AttestationError("bad report magic")
            offset = 4

            def take_block() -> bytes:
                nonlocal offset
                length = int.from_bytes(data[offset:offset + 2], "little")
                offset += 2
                block = data[offset:offset + length]
                if len(block) != length:
                    raise AttestationError("truncated report")
                offset += length
                return block

            measurement = take_block()
            nonce = take_block()
            params = take_block()
            dest = int.from_bytes(data[offset:offset + 8], "little")
            offset += 8
            mac_len = int.from_bytes(data[offset:offset + 2], "little")
            offset += 2
            mac = data[offset:offset + mac_len]
            if len(mac) != mac_len:
                raise AttestationError("truncated MAC")
            return cls(measurement, nonce, params, dest, mac)
        except (IndexError, AttestationError) as exc:
            raise AttestationError(f"malformed report: {exc}") from exc
