"""Attestation: measurements, MAC'd reports, remote-attestation protocol.

SMART's report format is followed closely: "an attestation report
containing the HMAC of the memory region, input parameters, a nonce and an
after-attestation destination address".  The same machinery backs the SGX
and TrustZone models' attestation (with their own keys and measurement
scopes).
"""

from repro.attestation.measure import Measurement, measure_memory
from repro.attestation.report import AttestationReport
from repro.attestation.protocol import RemoteVerifier, VerificationResult
from repro.attestation.cfa import (
    ControlFlowAttestor,
    expected_path_hash,
    hash_cflow_trace,
)

__all__ = [
    "AttestationReport",
    "ControlFlowAttestor",
    "Measurement",
    "RemoteVerifier",
    "VerificationResult",
    "expected_path_hash",
    "hash_cflow_trace",
    "measure_memory",
]
