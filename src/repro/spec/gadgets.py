"""The Spectre-scanner gadget corpus.

Thirteen small programs spanning the transient-execution design space the
paper surveys: the classic bounds-check bypass and its fenced / masked /
index-clamped safe variants, an indirect-predictor injection pair
(Spectre v2), Meltdown-style late-fault forwarding with and without KPTI,
L1TF stale-PTE forwarding with and without an L1 flush, a flush-based
transmission channel, and negative controls that hold or touch no secret.

Each :class:`Gadget` knows which microarchitectural *preconditions* its
leak needs (``requires``); the scanner compares the explorer's verdict on
every (gadget, config) pair against the expectation derived from those
preconditions, so a safe variant that leaks — or a vulnerable gadget a
permissive config fails to flag — is an expectation violation.

Builders place code and data at fixed offsets above 4 MiB into DRAM,
clear of the SGX enclave page cache (bottom 4 MiB of DRAM) and below the
TrustZone secure-world window, so the same corpus runs unmodified on
every architecture host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.common import PrivilegeLevel
from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.memory.paging import PAGE_SIZE, PageFlags

#: Offsets from ``soc.dram_base``; the 4 MiB floor skips the SGX EPC.
CODE_OFF = 0x400000
ARRAY_OFF = 0x410000
SECRET_OFF = 0x420000
PROBE_OFF = 0x430000
PUBLIC_OFF = 0x440000

#: In-bounds byte length of the victim array (power of two, for masking).
ARRAY_LEN = 64

#: The secret byte value planted at the secret word (any nonzero value).
SECRET_BYTE = 0x2A

#: Bump when the corpus changes shape: participates in the scan cache key.
CORPUS_REV = 1


@dataclass
class GadgetInstance:
    """One gadget, concretised onto a specific SoC."""

    program: Program
    entry: str | None
    regs: dict[int, int] = field(default_factory=dict)
    #: Physical word addresses holding secret data (taint sources).
    taint_words: tuple[int, ...] = ()
    #: Spectre-v2 model: predictor targets the attacker has planted.
    injection_targets: tuple[int, ...] = ()
    max_steps: int = 4096


@dataclass(frozen=True)
class Gadget:
    """A corpus entry: a builder plus its leak preconditions."""

    name: str
    family: str  # spectre-v1 | spectre-v2 | meltdown | l1tf | control
    vulnerable: bool
    #: Preconditions beyond speculation itself, drawn from
    #: {"btb-untagged", "fault-at-retirement", "l1tf-forward"}.
    requires: frozenset[str]
    description: str
    build: Callable  # (soc) -> GadgetInstance
    #: Smallest transient window that reaches the transmission point
    #: (exact instruction count of the wrong-path prefix up to and
    #: including the transmitting access — the tightness test holds the
    #: corpus to it).
    min_window: int = 8


def _layout(soc) -> dict[str, int]:
    base = soc.dram_base
    return {
        "code": base + CODE_OFF,
        "array": base + ARRAY_OFF,
        "secret": base + SECRET_OFF,
        "probe": base + PROBE_OFF,
        "public": base + PUBLIC_OFF,
    }


def _plant_data(soc, layout: dict[str, int]) -> None:
    soc.memory.write_word(layout["secret"], SECRET_BYTE)
    soc.memory.write_word(layout["public"], 0x11)
    for i in range(0, ARRAY_LEN, 8):
        soc.memory.write_word(layout["array"] + i, 0x01)


# -- Spectre v1 family -------------------------------------------------------

_V1_BODY = """
victim:
    li   r2, {array_len}
    bge  r1, r2, done
{hardening}    li   r3, {array}
    add  r3, r3, r1
    load r4, 0(r3)
    li   r6, 6
    shl  r4, r4, r6
    li   r5, {probe}
    add  r5, r5, r4
    load r6, 0(r5)
done:
    halt
"""


def _build_v1(soc, hardening: str = "", oob_target: str = "secret"
              ) -> GadgetInstance:
    lay = _layout(soc)
    _plant_data(soc, lay)
    text = _V1_BODY.format(array_len=ARRAY_LEN, array=lay["array"],
                           probe=lay["probe"], hardening=hardening)
    program = assemble(text, base=lay["code"], name="v1")
    # Out-of-bounds index that lands array_base + idx on the target word.
    oob_index = lay[oob_target] - lay["array"]
    return GadgetInstance(program, "victim", regs={1: oob_index},
                          taint_words=(lay["secret"],))


def _v1_bounds_bypass(soc) -> GadgetInstance:
    return _build_v1(soc)


def _v1_fence(soc) -> GadgetInstance:
    return _build_v1(soc, hardening="    fence\n")


def _v1_masked(soc) -> GadgetInstance:
    hardening = (f"    li   r7, {ARRAY_LEN - 1}\n"
                 "    and  r1, r1, r7\n")
    return _build_v1(soc, hardening=hardening)


def _v1_clamped(soc) -> GadgetInstance:
    # Branchless clamp: (idx - len) has its top bit set iff idx < len
    # (unsigned borrow), so shifting down 63 and negating yields an
    # all-ones mask in bounds and zero out of bounds.
    hardening = ("    sub  r7, r1, r2\n"
                 "    li   r8, 63\n"
                 "    shr  r7, r7, r8\n"
                 "    sub  r7, r0, r7\n"
                 "    and  r1, r1, r7\n")
    return _build_v1(soc, hardening=hardening)


def _v1_no_secret(soc) -> GadgetInstance:
    # Negative control: the out-of-bounds wrong-path load reaches only
    # public data, so nothing taint-dependent ever transmits.
    return _build_v1(soc, oob_target="public")


def _v1_arch_only(soc) -> GadgetInstance:
    # The secret is architecturally in a register, but the wrong path
    # performs only ALU work on it — taint without transmission.
    lay = _layout(soc)
    _plant_data(soc, lay)
    text = """
victim:
    li   r3, {secret}
    load r4, 0(r3)
    li   r1, 1
    li   r2, 2
    blt  r1, r2, done
    add  r5, r4, r4
    xor  r5, r5, r4
done:
    halt
""".format(secret=lay["secret"])
    program = assemble(text, base=lay["code"], name="v1-arch-only")
    return GadgetInstance(program, "victim",
                          taint_words=(lay["secret"],))


def _v1_flush_channel(soc) -> GadgetInstance:
    # Transmission via clflush at a secret-dependent address instead of a
    # cache fill (Flush+Flush-style wrong-path channel).
    lay = _layout(soc)
    _plant_data(soc, lay)
    text = """
victim:
    li   r2, {array_len}
    bge  r1, r2, done
    li   r3, {array}
    add  r3, r3, r1
    load r4, 0(r3)
    li   r6, 6
    shl  r4, r4, r6
    li   r5, {probe}
    add  r5, r5, r4
    flush 0(r5)
done:
    halt
""".format(array_len=ARRAY_LEN, array=lay["array"], probe=lay["probe"])
    program = assemble(text, base=lay["code"], name="v1-flush")
    oob_index = lay["secret"] - lay["array"]
    return GadgetInstance(program, "victim", regs={1: oob_index},
                          taint_words=(lay["secret"],))


# -- Spectre v2 family -------------------------------------------------------

_V2_BODY = """
victim:
    li   r15, {legit}
    ret
legit:
    halt
gadget:
    li   r3, {gadget_base}
    add  r3, r3, r7
    load r4, 0(r3)
    li   r6, 6
    shl  r4, r4, r6
    li   r5, {probe}
    add  r5, r5, r4
    load r6, 0(r5)
    halt
"""


def _build_v2(soc, gadget_target: str) -> GadgetInstance:
    lay = _layout(soc)
    _plant_data(soc, lay)
    # Two-pass assembly: the first pass resolves label addresses, the
    # second bakes the legitimate return target into the li immediate.
    draft = assemble(_V2_BODY.format(legit=0, gadget_base=lay[gadget_target],
                                     probe=lay["probe"]),
                     base=lay["code"], name="v2")
    text = _V2_BODY.format(legit=draft.address_of("legit"),
                           gadget_base=lay[gadget_target],
                           probe=lay["probe"])
    program = assemble(text, base=lay["code"], name="v2")
    return GadgetInstance(
        program, "victim", regs={7: 0},
        taint_words=(lay["secret"],),
        injection_targets=(program.address_of("gadget"),))


def _v2_btb_inject(soc) -> GadgetInstance:
    # The attacker plants the disclosure gadget's address in the indirect
    # predictor; the victim's return transiently executes it against the
    # secret region.
    return _build_v2(soc, gadget_target="secret")


def _v2_no_secret_gadget(soc) -> GadgetInstance:
    # Negative control: the injected target only ever reads public data.
    return _build_v2(soc, gadget_target="public")


# -- Meltdown / L1TF family --------------------------------------------------

_LATE_FAULT_BODY = """
attacker:
    load r2, 0(r1)
    li   r3, 255
    and  r2, r2, r3
    li   r4, 6
    shl  r2, r2, r4
    li   r3, {probe}
    add  r3, r3, r2
    load r5, 0(r3)
resume:
    halt
"""


def _user_page_table(soc, lay: dict[str, int], asid: int):
    pt = soc.make_page_table(asid=asid)
    user = PageFlags.PRESENT | PageFlags.USER | PageFlags.WRITABLE
    pt.map_range(lay["code"], lay["code"], 2 * PAGE_SIZE,
                 user | PageFlags.EXECUTE)
    pt.map_range(lay["probe"], lay["probe"], 4 * PAGE_SIZE, user)
    return pt


def _build_meltdown(soc, kpti: bool) -> GadgetInstance:
    lay = _layout(soc)
    _plant_data(soc, lay)
    kernel_va = lay["secret"]
    program = assemble(_LATE_FAULT_BODY.format(probe=lay["probe"]),
                       base=lay["code"], name="meltdown")
    core = soc.cores[0]
    pt = _user_page_table(soc, lay, asid=3)
    if not kpti:
        # Kernel data mapped but supervisor-only: the Meltdown
        # precondition.  Under KPTI the page is simply absent, so the
        # walk aborts with no physical address to forward from.
        pt.map(kernel_va, kernel_va,
               PageFlags.PRESENT | PageFlags.WRITABLE)
    core.mmu.set_context(pt.root, asid=3)
    core.privilege = PrivilegeLevel.USER
    core.fault_resume = program.address_of("resume")
    return GadgetInstance(program, "attacker", regs={1: kernel_va},
                          taint_words=(kernel_va,))


def _meltdown_late_fault(soc) -> GadgetInstance:
    return _build_meltdown(soc, kpti=False)


def _meltdown_kpti(soc) -> GadgetInstance:
    return _build_meltdown(soc, kpti=True)


def _build_l1tf(soc, flush_l1: bool) -> GadgetInstance:
    lay = _layout(soc)
    _plant_data(soc, lay)
    secret_va = lay["secret"]
    program = assemble(_LATE_FAULT_BODY.format(probe=lay["probe"]),
                       base=lay["code"], name="l1tf")
    core = soc.cores[0]
    pt = _user_page_table(soc, lay, asid=4)
    pt.map(secret_va, secret_va, PageFlags.PRESENT | PageFlags.WRITABLE)
    core.mmu.set_context(pt.root, asid=4)
    # Victim warm-up: privileged access pulls the secret into L1.
    core.read_mem(secret_va)
    if flush_l1:
        # The Foreshadow countermeasure: flush L1 before handing the CPU
        # to untrusted code, so the stale PTE matches no resident line.
        soc.hierarchy.flush_line(secret_va)
    # The OS (or the enclave swap path) clears the present bit; the PTE
    # still points at the frame — the L1TF precondition.
    pt.update_flags(secret_va, clear_flags=PageFlags.PRESENT)
    core.mmu.flush_tlb()
    core.privilege = PrivilegeLevel.USER
    core.fault_resume = program.address_of("resume")
    return GadgetInstance(program, "attacker", regs={1: secret_va},
                          taint_words=(secret_va,))


def _l1tf_stale_pte(soc) -> GadgetInstance:
    return _build_l1tf(soc, flush_l1=False)


def _l1tf_flushed(soc) -> GadgetInstance:
    return _build_l1tf(soc, flush_l1=True)


#: The corpus, in presentation order (reports preserve this order).
GADGETS: tuple[Gadget, ...] = (
    Gadget("v1-bounds-bypass", "spectre-v1", True, frozenset(),
           "classic bounds-check bypass: wrong-path OOB load, "
           "secret-indexed probe fill", _v1_bounds_bypass),
    Gadget("v1-fence", "spectre-v1", False, frozenset(),
           "bounds check with a fence: the excursion serialises before "
           "the OOB load", _v1_fence),
    Gadget("v1-masked", "spectre-v1", False, frozenset(),
           "index masked to the array size on both paths", _v1_masked),
    Gadget("v1-clamped", "spectre-v1", False, frozenset(),
           "branchless arithmetic clamp of the index", _v1_clamped),
    Gadget("v1-no-secret", "control", False, frozenset(),
           "negative control: the OOB wrong-path load only reaches "
           "public data", _v1_no_secret),
    Gadget("v1-arch-only", "control", False, frozenset(),
           "negative control: secret in a register, wrong path does "
           "ALU work only — taint without transmission", _v1_arch_only),
    Gadget("v1-flush-channel", "spectre-v1", True, frozenset(),
           "transmission via wrong-path clflush at a secret-dependent "
           "address", _v1_flush_channel),
    Gadget("v2-btb-inject", "spectre-v2", True, frozenset({"btb-untagged"}),
           "indirect-predictor injection steers a return into a "
           "disclosure gadget over the secret region", _v2_btb_inject),
    Gadget("v2-no-secret-gadget", "control", False,
           frozenset({"btb-untagged"}),
           "negative control: the injected gadget only reads public "
           "data", _v2_no_secret_gadget),
    Gadget("meltdown-late-fault", "meltdown", True,
           frozenset({"fault-at-retirement"}),
           "user load of a supervisor-only page forwards before the "
           "fault retires", _meltdown_late_fault, min_window=7),
    Gadget("meltdown-kpti", "meltdown", False,
           frozenset({"fault-at-retirement"}),
           "KPTI: the kernel page is unmapped, the walk aborts with no "
           "physical address to forward", _meltdown_kpti),
    Gadget("l1tf-stale-pte", "l1tf", True, frozenset({"l1tf-forward"}),
           "present bit cleared but data resident in L1: the stale PTE "
           "forwards the line", _l1tf_stale_pte, min_window=7),
    Gadget("l1tf-flushed", "l1tf", False, frozenset({"l1tf-forward"}),
           "L1 flushed before the untrusted code runs: the stale PTE "
           "matches nothing", _l1tf_flushed),
)

GADGETS_BY_NAME: dict[str, Gadget] = {g.name: g for g in GADGETS}
