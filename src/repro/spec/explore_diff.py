"""Lockstep differential harness: memoized vs reference exploration.

Three layers of equivalence, each strictly stronger than the verdict
the scanner actually reports:

1. **Explorer lockstep** — run the reference
   :class:`~repro.spec.explorer.SpeculationExplorer` and the
   :class:`~repro.spec.memo.MemoizedSpeculationExplorer` (frontier
   dedup on, window *not* inflated) over the same gadget on fresh SoCs
   and require the full ordered :class:`LeakEvent` sequence — every
   field, architectural events included — plus the final register
   taints and the truncation flag to match exactly.
2. **Row lockstep** — require ``_scan_gadget_memo`` (window-parametric
   replay from a shared memo) to produce the exact :class:`ScanRow`
   and retired-instruction count of the reference ``_scan_gadget``.
3. **Report bytes** — require ``run_scan(memo=True)`` to emit
   byte-identical JSON *and* rendered text.

Run as a module for the CI cross-check::

    python -m repro.spec.explore_diff [--quick]

Exit status 1 on any mismatch, with per-cell diagnostics on stderr.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from repro.spec.explorer import SpeculationExplorer
from repro.spec.gadgets import GADGETS, Gadget, GadgetInstance
from repro.spec.memo import ExplorationMemo, MemoizedSpeculationExplorer
from repro.spec.scanner import (
    ScanConfig,
    _scan_gadget,
    _scan_gadget_memo,
    full_config_names,
    quick_config_names,
    run_scan,
    scan_config_for,
)


def explore_with(explorer_cls, config: ScanConfig,
                 gadget: Gadget) -> SpeculationExplorer:
    """Run ``gadget`` on a fresh SoC of ``config`` under ``explorer_cls``."""
    soc = config.build()
    instance: GadgetInstance = gadget.build(soc)
    explorer = explorer_cls(soc)
    for word in instance.taint_words:
        explorer.taint.taint_word(word)
    explorer.injection_targets = list(instance.injection_targets)
    explorer.run(instance.program, instance.entry, regs=instance.regs,
                 max_steps=instance.max_steps)
    return explorer


@dataclass
class ExploreDiff:
    """Per-cell comparison outcome (``ok`` iff every layer agreed)."""

    config: str
    gadget: str
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def diff_cell(config: ScanConfig, gadget: Gadget,
              memo: ExplorationMemo | None = None) -> ExploreDiff:
    """Lockstep-compare one (config, gadget) cell across both layers."""
    diff = ExploreDiff(config=config.name, gadget=gadget.name)

    reference = explore_with(SpeculationExplorer, config, gadget)
    memoized = explore_with(MemoizedSpeculationExplorer, config, gadget)
    if memoized.leaks != reference.leaks:
        diff.mismatches.append(
            f"LeakEvent sequences differ: reference {len(reference.leaks)} "
            f"event(s), memoized {len(memoized.leaks)}")
    if memoized.truncated != reference.truncated:
        diff.mismatches.append(
            f"truncated differs: reference {reference.truncated}, "
            f"memoized {memoized.truncated}")
    if memoized.taint.regs != reference.taint.regs:
        diff.mismatches.append("final register taints differ")

    ref_row, ref_instret = _scan_gadget(config, gadget)
    memo_row, memo_instret = _scan_gadget_memo(
        config, gadget, memo if memo is not None else ExplorationMemo())
    if memo_row != ref_row:
        diff.mismatches.append(
            f"ScanRow differs: reference {ref_row.as_dict()!r}, "
            f"memoized {memo_row.as_dict()!r}")
    if memo_instret != ref_instret:
        diff.mismatches.append(
            f"instret differs: reference {ref_instret}, "
            f"memoized {memo_instret}")
    return diff


def diff_grid(quick: bool = False) -> list[ExploreDiff]:
    """Every (config, gadget) cell through :func:`diff_cell`.

    One memo is shared across all cells — replayed rows are compared
    against freshly computed reference rows, so cross-config sharing is
    exercised, not bypassed.
    """
    names = quick_config_names() if quick else full_config_names()
    memo = ExplorationMemo()
    return [diff_cell(scan_config_for(name), gadget, memo=memo)
            for name in names for gadget in GADGETS]


def diff_reports(quick: bool = False) -> list[str]:
    """Byte-compare full memoized vs reference reports (JSON + text)."""
    reference = run_scan(quick=quick)
    memoized = run_scan(quick=quick, memo=True)
    mismatches = []
    if memoized.to_json() != reference.to_json():
        mismatches.append("report JSON differs between memo and reference")
    if memoized.render() != reference.render():
        mismatches.append("rendered report differs between memo and "
                          "reference")
    return mismatches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="lockstep-diff the memoized explorer vs the reference")
    parser.add_argument("--quick", action="store_true",
                        help="quick grid only (drop narrow-window-4)")
    args = parser.parse_args(argv)

    diffs = diff_grid(quick=args.quick)
    bad = [d for d in diffs if not d.ok]
    for d in bad:
        for reason in d.mismatches:
            print(f"MISMATCH {d.config}/{d.gadget}: {reason}",
                  file=sys.stderr)
    report_mismatches = diff_reports(quick=args.quick)
    for reason in report_mismatches:
        print(f"MISMATCH report: {reason}", file=sys.stderr)
    grid = "quick" if args.quick else "full"
    if bad or report_mismatches:
        print(f"explore-diff: FAIL on the {grid} grid "
              f"({len(bad)}/{len(diffs)} cells, "
              f"{len(report_mismatches)} report mismatch(es))")
        return 1
    print(f"explore-diff: {len(diffs)} cells byte-identical on the "
          f"{grid} grid (events, verdicts, rows, report JSON and text)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
