"""Word-granular taint state for the speculation explorer.

Taint marks *secrets*: the analyst designates registers and physical
memory words as secret before a run, and the explorer propagates the
marks through ALU operations, loads, and address formation.  A leak is
then a taint-dependent microarchitectural effect (cache fill, flush,
branch target) on a transient path — the transmission step of every
transient-execution attack, independent of the specific gadget shape.

Granularity choices mirror the simulator's memory model: registers are
whole 64-bit words, and memory taint is keyed by *physical* word address
(the cache and the terminal-fault forwarding paths both operate
post-translation, so physical addressing is what the channels see).
"""

from __future__ import annotations

from repro.isa.instructions import NUM_REGS

#: Physical addresses are tainted at 8-byte word granularity.
WORD_ALIGN_MASK = ~0x7


class TaintState:
    """Taint marks over the register file and physical memory words."""

    __slots__ = ("regs", "_mem")

    def __init__(self) -> None:
        #: Per-register secret bit; ``regs[0]`` stays False (r0 reads 0).
        self.regs: list[bool] = [False] * NUM_REGS
        self._mem: set[int] = set()

    # -- memory taint ------------------------------------------------------

    def taint_word(self, paddr: int) -> None:
        """Mark the 8-byte word containing ``paddr`` as secret."""
        self._mem.add(paddr & WORD_ALIGN_MASK)

    def taint_range(self, paddr: int, size: int) -> None:
        """Mark every word overlapping ``[paddr, paddr + size)``."""
        start = paddr & WORD_ALIGN_MASK
        end = (paddr + max(size, 1) + 7) & WORD_ALIGN_MASK
        for addr in range(start, end, 8):
            self._mem.add(addr)

    def mem_tainted(self, paddr: int | None) -> bool:
        """Whether the word containing ``paddr`` holds secret data."""
        if paddr is None:
            return False
        return (paddr & WORD_ALIGN_MASK) in self._mem

    def set_mem(self, paddr: int, tainted: bool) -> None:
        """Strong update: a store overwrites the word's taint entirely."""
        word = paddr & WORD_ALIGN_MASK
        if tainted:
            self._mem.add(word)
        else:
            self._mem.discard(word)

    @property
    def tainted_words(self) -> int:
        return len(self._mem)

    # -- register taint ----------------------------------------------------

    def set_reg(self, idx: int, tainted: bool) -> None:
        if idx != 0:
            self.regs[idx] = tainted

    def reg_tainted(self, idx: int) -> bool:
        return False if idx == 0 else self.regs[idx]

    def taint_reg(self, idx: int) -> None:
        self.set_reg(idx, True)

    def copy_regs(self) -> list[bool]:
        """Snapshot of register taints (for seeding a transient path)."""
        return list(self.regs)
