"""Multi-path speculation analysis: explorer, taint, gadgets, scanner.

This package turns the simulator's transient-execution column from
*reproduced* (fixed scripted attacks) into *derived* (program analysis):

* :mod:`repro.spec.taint` — word-granular secret marks over registers
  and physical memory;
* :mod:`repro.spec.explorer` — a Pitchfork-style forking executor that
  explores both directions of every branch, injected indirect targets,
  and late-fault forwarding windows on a real
  :class:`~repro.cpu.speculative.SpeculativeCore`, flagging
  taint-dependent wrong-path effects as :class:`LeakEvent`s;
* :mod:`repro.spec.gadgets` — the scanner corpus: vulnerable gadgets,
  hardened variants, and negative controls for Spectre v1/v2, Meltdown,
  and L1TF;
* :mod:`repro.spec.scanner` — the gadget x architecture/knob sweep,
  dispatched through the supervised experiment runner (``repro scan``);
* :mod:`repro.spec.memo` — the memoized exploration engine: frontier
  dedup, cheap tuple snapshots, and window-parametric excursion
  recordings shared across the grid (``memo=``, on by default in the
  CLI; byte-identical reports, proven by
  :mod:`repro.spec.explore_diff`);
* :mod:`repro.spec.report` — the deterministic leak-report artifact.
"""

from repro.spec.explorer import CHANNELS, LeakEvent, SpeculationExplorer
from repro.spec.memo import (
    MEMO_CAPACITY,
    MEMO_WINDOW_FLOOR,
    ExplorationMemo,
    ExplorationRecord,
    MemoizedSpeculationExplorer,
    exploration_signature,
    record_exploration,
)
from repro.spec.gadgets import (
    CORPUS_REV,
    GADGETS,
    GADGETS_BY_NAME,
    Gadget,
    GadgetInstance,
)
from repro.spec.report import LeakReport, ScanRow
from repro.spec.scanner import (
    DEFAULT_SCAN_SEED,
    SCAN_CATEGORY,
    ScanConfig,
    execute_scan_cell,
    full_config_names,
    quick_config_names,
    run_scan,
    scan_config_for,
    scan_gadget,
    scan_grid,
    scan_specs,
)
from repro.spec.taint import TaintState

__all__ = [
    "CHANNELS",
    "CORPUS_REV",
    "DEFAULT_SCAN_SEED",
    "GADGETS",
    "GADGETS_BY_NAME",
    "Gadget",
    "GadgetInstance",
    "LeakEvent",
    "LeakReport",
    "MEMO_CAPACITY",
    "MEMO_WINDOW_FLOOR",
    "ExplorationMemo",
    "ExplorationRecord",
    "MemoizedSpeculationExplorer",
    "SCAN_CATEGORY",
    "ScanConfig",
    "ScanRow",
    "SpeculationExplorer",
    "TaintState",
    "execute_scan_cell",
    "exploration_signature",
    "record_exploration",
    "full_config_names",
    "quick_config_names",
    "run_scan",
    "scan_config_for",
    "scan_gadget",
    "scan_grid",
    "scan_specs",
]
