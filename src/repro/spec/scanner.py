"""The Spectre scanner: gadget corpus x architecture/knob grid sweep.

Each scan *cell* is one :class:`ScanConfig` — a SoC recipe (a
``SpeculativeConfig`` knob point or a full architecture host) — swept
across the whole gadget corpus by the multi-path explorer.  Cells are
dispatched through the supervised :class:`~repro.runner.ExperimentRunner`
as ``CellSpec``s with the dedicated ``spec-scan`` category, so scans get
caching, retries, timeouts, and chaos-proof supervision for free.

The quick grid mirrors the design points of TAB-S42
(:func:`repro.attacks.transient_oracle.TRANSIENT_DESIGN_POINTS`) plus
the four architecture hosts; the scanner's verdicts on those overlapping
configs are cross-checked against the scripted attacks' success/failure
by the differential suite — analysis and reproduction must agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.runner.engine import SCAN_CATEGORY
from repro.spec.explorer import SpeculationExplorer
from repro.spec.gadgets import CORPUS_REV, GADGETS, Gadget, GadgetInstance
from repro.spec.memo import (
    ExplorationMemo,
    exploration_signature,
    record_exploration,
)
from repro.spec.report import LeakReport, ScanRow

#: Default master seed for scan sweeps (per-cell seeds derive from it).
DEFAULT_SCAN_SEED = 0x5CA4


@dataclass(frozen=True)
class ScanConfig:
    """One column of the scan grid: a SoC recipe plus its knob summary.

    The boolean knob summary is what expectation checking reads; it must
    faithfully describe the SoC the builder returns.
    """

    name: str
    kind: str  # "knob" | "arch"
    description: str
    build: Callable  # () -> SoC, architecture installed when kind="arch"
    speculative: bool
    window: int
    fault_at_retirement: bool
    l1tf_forwarding: bool
    btb_tagged: bool

    def expects_leak(self, gadget: Gadget) -> bool:
        """Should ``gadget`` leak on this config, per its preconditions?"""
        if not gadget.vulnerable:
            return False
        if not self.speculative or self.window < gadget.min_window:
            return False
        if "btb-untagged" in gadget.requires and self.btb_tagged:
            return False
        if "fault-at-retirement" in gadget.requires \
                and not self.fault_at_retirement:
            return False
        if "l1tf-forward" in gadget.requires and not self.l1tf_forwarding:
            return False
        return True


def _knob_config(name: str, description: str, label: str) -> ScanConfig:
    """A scan config wrapping one TAB-S42 design point (by its label)."""
    from repro.attacks.transient_oracle import design_point, design_soc

    kwargs = design_point(label)
    speculative = kwargs.get("speculative", True)
    spec_probe = design_soc(label).config.spec

    def build():
        return design_soc(label)

    return ScanConfig(
        name=name, kind="knob", description=description, build=build,
        speculative=speculative,
        window=spec_probe.transient_window if speculative else 0,
        fault_at_retirement=spec_probe.fault_at_retirement,
        l1tf_forwarding=spec_probe.l1tf_forwarding,
        btb_tagged=spec_probe.predictor.btb_tag_with_asid)


def _arch_config(name: str, description: str, arch_name: str | None,
                 factory_name: str) -> ScanConfig:
    def build():
        from repro import arch as arch_mod
        from repro.cpu import soc as soc_mod
        soc = getattr(soc_mod, factory_name)()
        if arch_name is not None:
            getattr(arch_mod, arch_name)(soc)
        return soc

    probe = build()
    speculative = probe.config.speculative
    spec = probe.config.spec
    return ScanConfig(
        name=name, kind="arch", description=description, build=build,
        speculative=speculative,
        window=spec.transient_window if speculative else 0,
        fault_at_retirement=spec.fault_at_retirement,
        l1tf_forwarding=spec.l1tf_forwarding,
        btb_tagged=spec.predictor.btb_tag_with_asid)


def _build_grid() -> dict[str, ScanConfig]:
    """The full grid, insertion-ordered (reports preserve this order)."""
    from repro.attacks.transient_oracle import TRANSIENT_DESIGN_POINTS

    grid: dict[str, ScanConfig] = {}
    # Knob columns: one per TAB-S42 design point, under stable short
    # names (config names are CellSpec.platform strings and cache-key
    # material, so they must not drift with display labels).
    short = {
        "speculative (commodity)": "commodity-speculative",
        "in-order (embedded-class)": "in-order",
        "fault at issue (Meltdown fix)": "fault-at-issue",
        "no L1TF forwarding (Foreshadow fix)": "no-l1tf-forward",
        "BTB tagged per context (v2 fix)": "btb-tagged",
        "no transient window": "no-window",
    }
    for label, _ in TRANSIENT_DESIGN_POINTS:
        name = short[label]
        grid[name] = _knob_config(name, label, label)
    # Architecture hosts: the paper's Figure-1 rows.  The corpus runs on
    # the host core with the architecture's bus/walker/EPC machinery
    # installed; the verdict pattern is governed by the host core's
    # speculation knobs (the paper's point: TEEs do not, by themselves,
    # change the transient-execution column).
    grid["sgx-server"] = _arch_config(
        "sgx-server", "SGX on the server-class speculative host",
        "SGX", "make_server_soc")
    grid["sanctum-server"] = _arch_config(
        "sanctum-server", "Sanctum on the server-class speculative host",
        "Sanctum", "make_server_soc")
    grid["trustzone-mobile"] = _arch_config(
        "trustzone-mobile", "TrustZone on the mobile speculative host",
        "TrustZone", "make_mobile_soc")
    grid["embedded-inorder"] = _arch_config(
        "embedded-inorder", "bare in-order embedded host (SMART-class)",
        None, "make_embedded_soc")
    # Full-grid extras: a window too narrow for any corpus gadget to
    # reach its transmission point — the explorer must *derive* that the
    # leaks die, not just read the speculative bit.
    grid["narrow-window-4"] = _knob_narrow_window("narrow-window-4", 4)
    return grid


def _knob_narrow_window(name: str, window: int) -> ScanConfig:
    from repro.attacks.transient_oracle import design_soc_variant

    def build():
        return design_soc_variant(name, transient_window=window)

    return ScanConfig(
        name=name, kind="knob",
        description=f"speculative, {window}-instruction window", build=build,
        speculative=True, window=window, fault_at_retirement=True,
        l1tf_forwarding=True, btb_tagged=False)


_GRID: dict[str, ScanConfig] | None = None


def scan_grid() -> dict[str, ScanConfig]:
    global _GRID
    if _GRID is None:
        _GRID = _build_grid()
    return _GRID


#: Config names for the quick (CI-gating) sweep vs the full sweep.
def quick_config_names() -> tuple[str, ...]:
    return tuple(name for name in scan_grid() if name != "narrow-window-4")


def full_config_names() -> tuple[str, ...]:
    return tuple(scan_grid())


def scan_config_for(name: str) -> ScanConfig:
    try:
        return scan_grid()[name]
    except KeyError:
        raise KeyError(f"unknown scan config {name!r}") from None


# -- cell execution ----------------------------------------------------------


def _scan_gadget(config: ScanConfig, gadget: Gadget) -> tuple[ScanRow, int]:
    soc = config.build()
    instance: GadgetInstance = gadget.build(soc)
    explorer = SpeculationExplorer(soc)
    for word in instance.taint_words:
        explorer.taint.taint_word(word)
    explorer.injection_targets = list(instance.injection_targets)
    explorer.run(instance.program, instance.entry, regs=instance.regs,
                 max_steps=instance.max_steps)
    row = ScanRow(
        config=config.name, gadget=gadget.name, family=gadget.family,
        leaked=explorer.leaked, expected=config.expects_leak(gadget),
        channels=explorer.channels(), origins=explorer.origins(),
        events=len(explorer.transient_leaks()),
        window=config.window, truncated=explorer.truncated)
    return row, sum(core.instret for core in soc.cores)


def scan_gadget(config: ScanConfig, gadget: Gadget) -> ScanRow:
    """Run one gadget on a fresh SoC of ``config``; return its verdict."""
    return _scan_gadget(config, gadget)[0]


#: Process-global memo for memoized scans.  Recordings are keyed on the
#: full knob signature (corpus revision included), so sharing one memo
#: across scans is safe and is exactly what makes repeat sweeps cheap.
_SCAN_MEMO: ExplorationMemo | None = None


def _scan_memo() -> ExplorationMemo:
    global _SCAN_MEMO
    if _SCAN_MEMO is None:
        _SCAN_MEMO = ExplorationMemo()
    return _SCAN_MEMO


def _scan_gadget_memo(config: ScanConfig, gadget: Gadget,
                      memo: ExplorationMemo) -> tuple[ScanRow, int]:
    """Memoized ``_scan_gadget``: identical row bytes, shared walks.

    One window-inflated recording per (gadget, knob signature) serves
    every config in the column; the row for this config is derived by
    filtering the record's per-key minimum depths against the config's
    window.  A recording that hit an exploration cap is not replayable
    (the depth-filter argument needs complete depth profiles), so those
    cells fall back to the reference path wholesale.
    """
    signature = exploration_signature(config, gadget)
    record = memo.lookup(signature, config.window)
    if record is None:
        record = record_exploration(config, gadget)
        memo.store(signature, record)
        if not record.replayable:
            return _scan_gadget(config, gadget)
    leaked, channels, origins, events = record.verdict_for(config.window)
    row = ScanRow(
        config=config.name, gadget=gadget.name, family=gadget.family,
        leaked=leaked, expected=config.expects_leak(gadget),
        channels=channels, origins=origins, events=events,
        window=config.window, truncated=False)
    return row, record.instret


def execute_scan_cell(spec, memo: bool = False) -> dict:
    """Payload for one scan cell: the whole corpus on one config.

    ``spec.platform`` carries the scan-config name (scan cells are not
    tied to a ``PlatformClass``); the payload shape is deterministic and
    participates in the runner's integrity/caching machinery unchanged.
    ``memo`` is strategy, not measurement: the payload — rows *and*
    ``cell_instret`` — is byte-identical either way, so memoized and
    reference cells share cache entries.
    """
    config = scan_config_for(spec.platform)
    memo_cache = _scan_memo() if memo else None
    rows = []
    instret = 0
    for gadget in GADGETS:
        if memo_cache is not None:
            row, retired = _scan_gadget_memo(config, gadget, memo_cache)
        else:
            row, retired = _scan_gadget(config, gadget)
        rows.append(row)
        instret += retired
    return {
        "kind": SCAN_CATEGORY,
        "config": config.name,
        "config_kind": config.kind,
        "corpus_rev": CORPUS_REV,
        "rows": [row.as_dict() for row in rows],
        "cell_instret": instret,
    }


# -- the sweep ---------------------------------------------------------------


def scan_specs(quick: bool = True, seed: int = DEFAULT_SCAN_SEED) -> list:
    """CellSpecs for a sweep (one cell per config, corpus inside)."""
    from repro.runner import CellSpec, derive_seed

    names = quick_config_names() if quick else full_config_names()
    return [
        CellSpec(seed=derive_seed(seed, name, SCAN_CATEGORY),
                 platform=name, category=SCAN_CATEGORY,
                 knobs=(("corpus_rev", CORPUS_REV),))
        for name in names
    ]


def run_scan(quick: bool = True, runner=None,
             seed: int = DEFAULT_SCAN_SEED, memo: bool = False) -> LeakReport:
    """Sweep the corpus across the grid; return the leak report.

    With a runner, cells fan out/cache through the supervised executor
    (and the runner's own ``memo`` knob governs the strategy); without
    one, they execute serially in-process, memoized when ``memo`` is
    set.  Reports are byte-identical either way.
    """
    specs = scan_specs(quick=quick, seed=seed)
    if runner is not None:
        payloads = runner.run(specs)
        missing = [s.platform for s in specs if s not in payloads]
        if missing:
            raise RuntimeError(
                "scan cells failed after retries: " + ", ".join(missing))
        payload_list = [payloads[s] for s in specs]
    else:
        from repro.runner.engine import execute_spec
        payload_list = [execute_spec(s, memo=True) if memo
                        else execute_spec(s) for s in specs]
    rows = [ScanRow.from_dict(row)
            for payload in payload_list for row in payload["rows"]]
    return LeakReport(rows, seed=seed, corpus_rev=CORPUS_REV)
