"""Multi-path speculative executor with taint tracking (Pitchfork-style).

The :class:`~repro.cpu.speculative.SpeculativeCore` replays *one*
mispredicted path per branch, chosen by its trained predictor.  The
explorer is the analysis-strength version of the same hardware model: it
steps a program architecturally on a real core and, at **every** branch,
return, and late-faulting load, forks a bounded transient excursion down
the non-architectural path — so wrong-path behaviour is covered
exhaustively rather than only where training happened to mispredict.

Along both the architectural walk and every transient path it propagates
word-granular taint (:mod:`repro.spec.taint`) from attacker-designated
secret registers/memory through ALU ops, loads, and address formation.
A :class:`LeakEvent` is recorded whenever a microarchitecturally visible
effect — a cache-filling load, a flush, a store, or a branch/indirect
target — depends on tainted data.  Spectre v1/v2, Meltdown, and L1TF
transmission all surface as special cases of that single rule.

Design constraints:

* **No pollution.**  Transient probe loads translate and read through the
  real MMU/bus (so permission checks and forwarding knobs act exactly as
  in :meth:`SpeculativeCore._transient_load`) but do *not* touch the
  cache hierarchy or the L1 data view — analysing a program must not
  perturb the microarchitectural state it is analysing.
* **Determinism.**  The fork queue is a FIFO ``deque`` with a fixed push
  order (taken direction first), leaks deduplicate through an
  insertion-ordered dict, and no container iteration depends on hash
  order — reports are byte-identical across ``PYTHONHASHSEED``.
* **Boundedness.**  Each path inherits the core's ``transient_window``
  budget; global caps on forked states and total transient instructions
  guarantee termination on cyclic wrong paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import MemoryFault, PageFault
from repro.isa.instructions import INSTR_SIZE, Instruction, InstrKind, WORD_MASK
from repro.isa.program import Program
from repro.spec.taint import TaintState

#: Transient leak channels, in documentation order.
CHANNELS = ("branch-target", "cache-fill", "flush", "store")

#: Fork-site origins: how the wrong path was entered.
ORIGINS = ("arch", "branch", "btb-inject", "late-fault", "ret")

_ALU_KINDS = frozenset({
    InstrKind.ADD, InstrKind.SUB, InstrKind.AND, InstrKind.OR,
    InstrKind.XOR, InstrKind.SHL, InstrKind.SHR, InstrKind.MUL,
})

#: Instructions that end a transient excursion (serialising or trapping).
_EXCURSION_ENDERS = frozenset({
    InstrKind.FENCE, InstrKind.ECALL, InstrKind.HALT, InstrKind.CSRW,
})


@dataclass(frozen=True)
class LeakEvent:
    """One taint-dependent microarchitectural effect.

    ``transient`` is True for wrong-path events (the transient-execution
    channels); False marks *architectural* secret-dependent effects
    (classic cache-timing/branch leaks), recorded for diagnostics but not
    counted as speculation leaks by the scanner.
    """

    channel: str  # one of CHANNELS
    origin: str  # one of ORIGINS
    fork_pc: int  # address of the branch/ret/faulting load that forked
    pc: int  # address of the leaking instruction
    depth: int  # transient instructions executed before the leak
    transient: bool
    address: int | None = None  # the tainted address, when applicable

    def describe(self) -> str:
        kind = "transient" if self.transient else "architectural"
        return (f"{kind} {self.channel} at {self.pc:#x} "
                f"(forked at {self.fork_pc:#x} via {self.origin}, "
                f"depth {self.depth})")


class SpeculationExplorer:
    """Forking speculative executor over one core of a SoC.

    Usage::

        explorer = SpeculationExplorer(soc)
        explorer.taint.taint_range(secret_paddr, 8)
        explorer.run(program, entry="victim", regs={1: attacker_index})
        assert not explorer.leaked

    The explorer attaches itself to the core for the duration of
    :meth:`run` (via the ``explorer`` attribute consulted by
    :class:`~repro.cpu.speculative.SpeculativeCore`); a plain in-order
    :class:`~repro.cpu.core.Core` has no fork sites, so in-order hosts
    report no transient leaks by construction.
    """

    def __init__(self, soc, core_id: int = 0, max_states: int = 64,
                 max_transient_instrs: int = 4096) -> None:
        self.soc = soc
        self.core = soc.cores[core_id]
        self.max_states = max_states
        self.max_transient_instrs = max_transient_instrs
        self.taint = TaintState()
        #: Spectre v2 model: indirect-predictor entries the attacker has
        #: planted.  Each return site additionally forks to these targets
        #: (unless the BTB is context-tagged).
        self.injection_targets: list[int] = []
        self.leaks: list[LeakEvent] = []
        self.truncated = False
        self._seen: dict[tuple, None] = {}
        self._transient_instrs = 0
        self._program: Program | None = None

    def _reset_run_state(self) -> None:
        """Clear per-run state at the top of :meth:`run`.

        Reusing one explorer for a second program must not report the
        first run's leaks, suppress re-exploration through the stale
        dedup set, or inherit a spent transient-instruction budget.
        Taint and injection targets are *not* cleared: they are the
        caller's pre-run configuration, not run results.
        """
        self.leaks = []
        self.truncated = False
        self._seen = {}
        self._transient_instrs = 0

    # -- results -----------------------------------------------------------

    @property
    def leaked(self) -> bool:
        """Any taint-dependent effect on a transient path?"""
        return any(event.transient for event in self.leaks)

    def transient_leaks(self) -> list[LeakEvent]:
        return [event for event in self.leaks if event.transient]

    def channels(self) -> tuple[str, ...]:
        return tuple(sorted({e.channel for e in self.leaks if e.transient}))

    def origins(self) -> tuple[str, ...]:
        return tuple(sorted({e.origin for e in self.leaks if e.transient}))

    # -- the architectural walk --------------------------------------------

    def run(self, program: Program, entry: str | None = None,
            regs: dict[int, int] | None = None,
            max_steps: int = 100_000) -> None:
        """Execute ``program`` architecturally, exploring every fork site.

        ``regs`` preloads architectural registers (attacker-controlled
        inputs).  The core's privilege, MMU context, and ``fault_resume``
        are taken as already configured by the caller (gadget setup).
        """
        self._reset_run_state()
        core = self.core
        core.load_program(program, entry)
        for idx, value in (regs or {}).items():
            core.set_reg(idx, value)
        self._program = program
        hooked = hasattr(core, "explorer")
        if hooked:
            core.explorer = self
        try:
            steps = 0
            while steps < max_steps and not core.halted:
                pc_before = core.pc
                entry_t = program.decoded_entry(pc_before)
                pre_regs = list(core.regs) if entry_t is not None else None
                traps_before = len(core.trap_log)
                core.step()
                steps += 1
                # Apply architectural taint transfer only for retired
                # instructions: a trapped step wrote no destination.
                if entry_t is not None and \
                        len(core.trap_log) == traps_before:
                    self._arch_transfer(entry_t[1], pre_regs, pc_before)
        finally:
            if hooked:
                core.explorer = None

    def _arch_transfer(self, instr: Instruction, pre_regs: list[int],
                       pc: int) -> None:
        """Propagate taint across one retired architectural instruction."""
        taint = self.taint
        t = taint.regs
        k = instr.kind
        if k in _ALU_KINDS:
            taint.set_reg(instr.rd, t[instr.rs1] or t[instr.rs2])
        elif k is InstrKind.ADDI:
            taint.set_reg(instr.rd, t[instr.rs1])
        elif k is InstrKind.LI:
            taint.set_reg(instr.rd, False)
        elif k in (InstrKind.CSRR, InstrKind.RDCYCLE):
            taint.set_reg(instr.rd, False)
        elif k is InstrKind.LOAD:
            va = (pre_regs[instr.rs1] + instr.imm) & WORD_MASK \
                if instr.rs1 else instr.imm & WORD_MASK
            paddr = self._arch_paddr(va, "read")
            if t[instr.rs1]:
                self._record("cache-fill", "arch", pc, pc, 0,
                             transient=False, address=va)
            taint.set_reg(instr.rd, taint.mem_tainted(paddr))
        elif k is InstrKind.STORE:
            va = (pre_regs[instr.rs1] + instr.imm) & WORD_MASK \
                if instr.rs1 else instr.imm & WORD_MASK
            paddr = self._arch_paddr(va, "write")
            if t[instr.rs1]:
                self._record("store", "arch", pc, pc, 0,
                             transient=False, address=va)
            if paddr is not None:
                taint.set_mem(paddr, t[instr.rs2])
        elif k is InstrKind.FLUSH:
            if t[instr.rs1]:
                va = (pre_regs[instr.rs1] + instr.imm) & WORD_MASK
                self._record("flush", "arch", pc, pc, 0,
                             transient=False, address=va)
        elif instr.is_branch:
            if t[instr.rs1] or t[instr.rs2]:
                self._record("branch-target", "arch", pc, pc, 0,
                             transient=False)
        elif k is InstrKind.JAL:
            taint.set_reg(15, False)
        elif k is InstrKind.RET:
            if t[15]:
                self._record("branch-target", "arch", pc, pc, 0,
                             transient=False)

    def _arch_paddr(self, va: int, access: str) -> int | None:
        """Physical address of a retired access (None if it faulted)."""
        core = self.core
        try:
            tr = core.mmu.translate(va, access, core.privilege,
                                    secure=core.world.is_secure)
        except MemoryFault:
            return None
        return tr.paddr

    # -- fork-site hooks (called by SpeculativeCore) -----------------------

    def _fork_window(self, core) -> int:
        """Transient window budget granted to excursions.

        Overridable: the memoized explorer records at an inflated window
        and derives narrower-window verdicts by depth filtering.
        """
        return core.spec.transient_window

    def on_branch(self, core, instr: Instruction, branch_pc: int,
                  taken: bool, target: int, fallthrough: int) -> None:
        """Fork down the non-architectural direction of a branch."""
        if self._fork_window(core) <= 0:
            return
        wrong_path = fallthrough if taken else target
        if wrong_path is None:
            return
        self._explore(core, wrong_path, "branch", branch_pc)

    def on_ret(self, core, ret_pc: int, target: int) -> None:
        """Fork to attacker-planted indirect-predictor targets (v2)."""
        if self._fork_window(core) <= 0:
            return
        if core.spec.predictor.btb_tag_with_asid:
            # Context-tagged BTB: cross-context injections never match.
            return
        for injected in self.injection_targets:
            if injected != target:
                self._explore(core, injected, "btb-inject", ret_pc)

    def on_late_fault(self, core, instr: Instruction, fault: PageFault,
                      next_pc: int) -> None:
        """Fork past a faulting load with its transiently forwarded value.

        Meltdown (``fault_at_retirement``) and L1TF (``l1tf_forwarding``)
        differ only in where the forwarded data comes from; both are
        resolved by the core's own :meth:`_forwarded_value`, so the knob
        semantics here are exactly the attack model's.
        """
        if self._fork_window(core) <= 0:
            return
        forwarded = core._forwarded_value(fault)
        if forwarded is None:
            return
        paddr = getattr(fault, "paddr", None)
        tainted = self.taint.mem_tainted(paddr)
        if tainted and fault.reason in ("not-present", "reserved"):
            # L1TF forwards L1 *data*, not memory: the secret only travels
            # if its line is actually resident (flushing L1 on exit — the
            # real Foreshadow mitigation — kills the taint here).
            tainted = core.hierarchy.present_in_l1(core.config.core_id,
                                                   paddr)
        self._explore(core, next_pc, "late-fault", core.pc,
                      preload={instr.rd: (forwarded, tainted)})

    # -- the forking transient walk ----------------------------------------

    def _explore(self, core, start_pc: int, origin: str, fork_pc: int,
                 preload: dict[int, tuple[int, bool]] | None = None) -> None:
        """Walk every wrong path reachable from ``start_pc`` in-window."""
        program = core.program
        if program is None:
            return
        regs = list(core.regs)
        taints = self.taint.copy_regs()
        for rd, (value, tainted) in (preload or {}).items():
            if rd != 0:
                regs[rd] = value & WORD_MASK
                taints[rd] = tainted
        window = self._fork_window(core)
        # FIFO over (pc, regs, taints, budget, depth): breadth-first in
        # fork order, fully deterministic (no hash-ordered iteration).
        # Budget and depth move in lockstep (budget == window - depth on
        # every state, forks included), which is what lets the memoized
        # subclass derive narrower-window verdicts by depth filtering.
        self._begin_excursion(start_pc, regs, taints, window)
        queue: deque = deque()
        queue.append((start_pc, regs, taints, window, 0))
        states = 1
        while queue:
            pc, regs, taints, budget, depth = self._pop_state(queue)
            while budget > 0:
                if self._transient_instrs >= self.max_transient_instrs:
                    self.truncated = True
                    return
                entry = program.decoded_entry(pc)
                if entry is None:
                    break  # off-program fetch: the excursion dies
                _, instr, static_target = entry
                self._transient_instrs += 1
                budget -= 1
                depth += 1
                k = instr.kind
                next_pc = pc + INSTR_SIZE
                if k in _EXCURSION_ENDERS:
                    break
                if k is InstrKind.NOP:
                    pc = next_pc
                    continue
                if k is InstrKind.LI:
                    self._put(regs, taints, instr.rd, instr.imm, False)
                elif k is InstrKind.ADDI:
                    self._put(regs, taints, instr.rd,
                              self._get(regs, instr.rs1) + instr.imm,
                              taints[instr.rs1])
                elif k in _ALU_KINDS:
                    value = core._alu(k, self._get(regs, instr.rs1),
                                      self._get(regs, instr.rs2))
                    self._put(regs, taints, instr.rd, value,
                              taints[instr.rs1] or taints[instr.rs2])
                elif k is InstrKind.LOAD:
                    va = (self._get(regs, instr.rs1) + instr.imm) & WORD_MASK
                    if taints[instr.rs1]:
                        # Secret-dependent cache fill: the Spectre/Meltdown
                        # transmission channel.
                        self._record("cache-fill", origin, fork_pc, pc,
                                     depth, transient=True, address=va)
                    value, tainted = self._transient_probe(core, va)
                    if value is None:
                        break  # denied with no forwarding: excursion ends
                    self._put(regs, taints, instr.rd, value, tainted)
                elif k is InstrKind.STORE:
                    # Buffered and squashed — but a store-buffer entry at a
                    # secret-dependent address is itself observable
                    # (store-to-load forwarding, 4K aliasing).
                    if taints[instr.rs1]:
                        va = (self._get(regs, instr.rs1) + instr.imm) \
                            & WORD_MASK
                        self._record("store", origin, fork_pc, pc, depth,
                                     transient=True, address=va)
                elif k is InstrKind.FLUSH:
                    if taints[instr.rs1]:
                        va = (self._get(regs, instr.rs1) + instr.imm) \
                            & WORD_MASK
                        self._record("flush", origin, fork_pc, pc, depth,
                                     transient=True, address=va)
                elif k in (InstrKind.CSRR, InstrKind.RDCYCLE):
                    self._put(regs, taints, instr.rd, core.cycles, False)
                elif instr.is_branch:
                    if taints[instr.rs1] or taints[instr.rs2]:
                        self._record("branch-target", origin, fork_pc, pc,
                                     depth, transient=True)
                    if static_target is None:
                        break  # unresolvable label: nothing to walk
                    a = self._get(regs, instr.rs1)
                    b = self._get(regs, instr.rs2)
                    if k is InstrKind.BEQ:
                        taken = a == b
                    elif k is InstrKind.BNE:
                        taken = a != b
                    elif k is InstrKind.BLT:
                        taken = a < b
                    else:
                        taken = a >= b
                    follow = static_target if taken else next_pc
                    forked = next_pc if taken else static_target
                    # Nested fork: the *other* direction of an in-window
                    # branch is also a transient path.
                    if budget > 0 and states < self.max_states:
                        if self._enqueue_fork(queue, forked, regs, taints,
                                              budget, depth):
                            states += 1
                    elif states >= self.max_states:
                        self.truncated = True
                    pc = follow
                    continue
                elif k is InstrKind.JMP:
                    if static_target is None:
                        break
                    pc = static_target
                    continue
                elif k is InstrKind.JAL:
                    if static_target is None:
                        break
                    self._put(regs, taints, 15, next_pc, False)
                    pc = static_target
                    continue
                elif k is InstrKind.RET:
                    if taints[15]:
                        self._record("branch-target", origin, fork_pc, pc,
                                     depth, transient=True)
                    pc = self._get(regs, 15)
                    continue
                pc = next_pc

    # -- frontier hooks (overridden by the memoized explorer) --------------

    def _begin_excursion(self, start_pc: int, regs: list[int],
                         taints: list[bool], window: int) -> None:
        """Called once per excursion before the frontier walk starts."""

    def _enqueue_fork(self, queue: deque, forked: int, regs: list[int],
                      taints: list[bool], budget: int, depth: int) -> bool:
        """Push a nested fork; return True if it was actually enqueued.

        The base explorer always enqueues (the reference semantics); the
        memoized explorer prunes states already visited this excursion.
        """
        queue.append((forked, list(regs), list(taints), budget, depth))
        return True

    @staticmethod
    def _pop_state(queue: deque) -> tuple:
        """Next frontier state as (pc, regs, taints, budget, depth)."""
        return queue.popleft()

    @staticmethod
    def _get(regs: list[int], idx: int) -> int:
        return 0 if idx == 0 else regs[idx]

    @staticmethod
    def _put(regs: list[int], taints: list[bool], idx: int, value: int,
             tainted: bool) -> None:
        if idx != 0:
            regs[idx] = value & WORD_MASK
            taints[idx] = tainted

    def _transient_probe(self, core, va: int) -> tuple[int | None, bool]:
        """A wrong-path load's (value, taint), without cache pollution.

        Mirrors :meth:`SpeculativeCore._transient_load` — including nested
        terminal-fault forwarding — but never touches the hierarchy or the
        L1 data view: the analysis must not perturb measured state.
        """
        try:
            tr = core.mmu.translate(va, "read", core.privilege,
                                    secure=core.world.is_secure)
        except PageFault as fault:
            forwarded = core._forwarded_value(fault)
            if forwarded is None:
                return None, False
            paddr = getattr(fault, "paddr", None)
            tainted = self.taint.mem_tainted(paddr)
            if tainted and fault.reason in ("not-present", "reserved"):
                tainted = core.hierarchy.present_in_l1(
                    core.config.core_id, paddr)
            return forwarded, tainted
        except MemoryFault:
            return None, False
        try:
            value = core.bus.read_word(core.master, tr.paddr,
                                       secure=core.world.is_secure,
                                       pc=core.pc)
        except MemoryFault:
            return None, False
        return value, self.taint.mem_tainted(tr.paddr)

    # -- leak recording ----------------------------------------------------

    def _record(self, channel: str, origin: str, fork_pc: int, pc: int,
                depth: int, transient: bool, address: int | None = None
                ) -> None:
        key = (channel, origin, fork_pc, pc, transient)
        if key in self._seen:
            return
        self._seen[key] = None
        self.leaks.append(LeakEvent(channel=channel, origin=origin,
                                    fork_pc=fork_pc, pc=pc, depth=depth,
                                    transient=transient, address=address))
