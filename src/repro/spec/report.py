"""Deterministic leak-report table for the Spectre scanner.

A report is a canonically ordered list of (config, gadget) rows, each
carrying the explorer's verdict, the expectation derived from the
gadget's preconditions, and the observed transmission channels.  The
JSON form is byte-identical across runs, processes, and
``PYTHONHASHSEED`` values: rows sort on explicit keys, every collection
serialises from sorted tuples, and ``json.dumps(sort_keys=True)``
canonicalises the rest.  That byte-identity is what lets the runner
cache scan cells and what the determinism regression tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Schema tag for the JSON artifact; bump on incompatible shape changes.
SCHEMA = "repro-spec-scan/v1"


@dataclass(frozen=True)
class ScanRow:
    """One (config, gadget) verdict."""

    config: str
    gadget: str
    family: str
    leaked: bool  # explorer found a taint-dependent transient effect
    expected: bool  # preconditions say the leak should manifest
    channels: tuple[str, ...]  # sorted transient channels observed
    origins: tuple[str, ...]  # sorted fork-site origins observed
    events: int  # distinct transient leak events
    window: int  # effective transient window of the config
    truncated: bool = False  # exploration hit a state/instruction cap

    @property
    def verdict(self) -> str:
        return "LEAK" if self.leaked else "clean"

    @property
    def ok(self) -> bool:
        return self.leaked == self.expected

    def as_dict(self) -> dict:
        return {
            "config": self.config,
            "gadget": self.gadget,
            "family": self.family,
            "leaked": self.leaked,
            "expected": self.expected,
            "channels": list(self.channels),
            "origins": list(self.origins),
            "events": self.events,
            "window": self.window,
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScanRow":
        return cls(config=data["config"], gadget=data["gadget"],
                   family=data["family"], leaked=data["leaked"],
                   expected=data["expected"],
                   channels=tuple(data["channels"]),
                   origins=tuple(data["origins"]),
                   events=data["events"], window=data["window"],
                   truncated=data.get("truncated", False))


class LeakReport:
    """The gadget x config verdict table, canonically ordered."""

    def __init__(self, rows: list[ScanRow], seed: int,
                 corpus_rev: int) -> None:
        self.rows = sorted(rows, key=lambda r: (r.config, r.gadget))
        self.seed = seed
        self.corpus_rev = corpus_rev

    # -- verdict aggregation ----------------------------------------------

    def violations(self) -> list[str]:
        """Human-readable expectation mismatches (empty = gate passes)."""
        out = []
        for row in self.rows:
            if row.ok:
                continue
            if row.leaked:
                out.append(
                    f"{row.config} / {row.gadget}: leaked "
                    f"({', '.join(row.channels)}) but the gadget/config "
                    f"pair should be safe")
            else:
                out.append(
                    f"{row.config} / {row.gadget}: reported clean but "
                    f"this known-vulnerable gadget should leak here")
        return out

    def leaks(self) -> list[ScanRow]:
        return [row for row in self.rows if row.leaked]

    def summary(self) -> dict:
        leaked = sum(1 for r in self.rows if r.leaked)
        return {
            "rows": len(self.rows),
            "leaked": leaked,
            "clean": len(self.rows) - leaked,
            "violations": len(self.violations()),
        }

    # -- serialisation ----------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON artifact (byte-identical for identical scans)."""
        doc = {
            "schema": SCHEMA,
            "seed": self.seed,
            "corpus_rev": self.corpus_rev,
            "summary": self.summary(),
            "violations": self.violations(),
            "rows": [row.as_dict() for row in self.rows],
        }
        return json.dumps(doc, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "LeakReport":
        doc = json.loads(text)
        return cls([ScanRow.from_dict(row) for row in doc["rows"]],
                   seed=doc["seed"], corpus_rev=doc["corpus_rev"])

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """Fixed-width text table grouped by config."""
        headers = ["config", "gadget", "family", "verdict", "expected",
                   "channels"]
        table_rows = []
        for row in self.rows:
            flag = "" if row.ok else "  <-- VIOLATION"
            table_rows.append([
                row.config, row.gadget, row.family,
                row.verdict + ("*" if row.truncated else ""),
                "leak" if row.expected else "clean",
                ",".join(row.channels) + flag,
            ])
        widths = [max(len(headers[i]),
                      *(len(r[i]) for r in table_rows)) if table_rows
                  else len(headers[i]) for i in range(len(headers))]
        lines = [
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
            "  ".join("-" * w for w in widths),
        ]
        previous_config = None
        for row_cells in table_rows:
            if previous_config not in (None, row_cells[0]):
                lines.append("")
            previous_config = row_cells[0]
            lines.append("  ".join(
                cell.ljust(widths[i]) for i, cell in enumerate(row_cells)))
        stats = self.summary()
        lines.append("")
        lines.append(
            f"{stats['rows']} rows: {stats['leaked']} leak / "
            f"{stats['clean']} clean, {stats['violations']} expectation "
            f"violation(s)")
        return "\n".join(lines)
