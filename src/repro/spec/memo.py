"""Memoized path exploration for the Spectre scanner.

The reference :class:`~repro.spec.explorer.SpeculationExplorer` re-walks
every transient excursion from scratch for each (config, gadget) cell —
~11 configs x 13 gadgets, most of which explore *identical* paths.  Two
observations make the scan cheap without changing a single report byte:

1. **Frontier dedup.**  Within one excursion, nested wrong-path forks
   frequently reconverge to a state already on the frontier: same pc,
   same remaining window budget, same register values and register
   taints.  (Word-memory taint never mutates during an excursion —
   transient stores are squashed and only *record* events — so it is not
   part of the state.)  The fork queue is FIFO and the original state is
   enqueued before any duplicate of it, so every leak event is first
   recorded via the original's walk; pruning the duplicate leaves the
   ``LeakEvent`` sequence byte-identical and only skips redundant work.

2. **Window-parametric excursion memoization.**  With an explorer
   attached the core never runs its own transient replay, so the
   architectural walk — and therefore the set of fork sites — depends
   only on the gadget and the forwarding knobs, *not* on the window.
   Budget and depth move in lockstep in ``_explore`` (budget ==
   window - depth on every frontier state), so exploring once at an
   inflated window W and tracking each distinct leak key's **minimum**
   depth d yields the verdict for every narrower window w for free: the
   key manifests under w iff d <= w.  One recording per
   (gadget, knob-signature) therefore serves the whole grid column —
   commodity/SGX/Sanctum/TrustZone hosts, the no-window point, and the
   ``--full`` narrow-window column all replay from the same record.

Equivalence with the reference explorer is not assumed: it is proven by
the lockstep harness (:mod:`repro.spec.explore_diff`) and the hypothesis
differential suite, and the scanner falls back to the reference path for
any recording that hit an exploration cap (``truncated``), where the
depth-filtering argument no longer applies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.spec.explorer import SpeculationExplorer
from repro.spec.gadgets import CORPUS_REV, Gadget, GadgetInstance

#: Recording window for speculative signatures.  Any config whose window
#: is <= the floor replays from the same recording; wider windows record
#: at their own width (lookup refuses a narrower record).
MEMO_WINDOW_FLOOR = 128

#: Default memo capacity (recordings, FIFO-evicted).  The full grid
#: needs one arch + at most four spec signatures per gadget, so the
#: default never evicts on the shipped corpus; the cap bounds memory for
#: callers that sweep synthetic corpora through one memo.
MEMO_CAPACITY = 256


class MemoizedSpeculationExplorer(SpeculationExplorer):
    """The reference explorer plus frontier dedup and cheap snapshots.

    Frontier states are snapshotted as tuples — built once and shared
    between the visited-set key and the queue entry — instead of the
    base class's two fresh lists per fork.  ``window`` overrides the
    core's transient window at every fork site so one run can record at
    :data:`MEMO_WINDOW_FLOOR` on a narrower-window SoC.

    Event *sequences* (and so every scanner verdict) are byte-identical
    to the reference explorer whenever neither run hits an exploration
    cap; the differential suite asserts exactly that.  ``min_depths``
    additionally tracks, per distinct transient leak key, the shallowest
    depth at which it occurs — including occurrences the first-seen
    dedup in ``_record`` suppresses — which is the replay metadata for
    window-parametric memoization.
    """

    def __init__(self, soc, core_id: int = 0, max_states: int = 64,
                 max_transient_instrs: int = 4096,
                 window: int | None = None) -> None:
        super().__init__(soc, core_id=core_id, max_states=max_states,
                         max_transient_instrs=max_transient_instrs)
        self._window = window
        self.pruned_states = 0
        self._visited: set[tuple] = set()
        #: (channel, origin, fork_pc, pc) -> minimum depth observed.
        self.min_depths: dict[tuple, int] = {}

    def _reset_run_state(self) -> None:
        super()._reset_run_state()
        self.pruned_states = 0
        self._visited = set()
        self.min_depths = {}

    # -- frontier hooks ----------------------------------------------------

    def _fork_window(self, core) -> int:
        if self._window is not None:
            return self._window
        return core.spec.transient_window

    def _begin_excursion(self, start_pc: int, regs: list[int],
                         taints: list[bool], window: int) -> None:
        # The visited set must not cross excursions: events carry their
        # origin and fork_pc, so the same state reached from a different
        # fork site records *different* events and must be re-walked.
        self._visited = {(start_pc, window, tuple(regs), tuple(taints))}

    def _enqueue_fork(self, queue, forked: int, regs: list[int],
                      taints: list[bool], budget: int, depth: int) -> bool:
        regs_snap = tuple(regs)
        taints_snap = tuple(taints)
        key = (forked, budget, regs_snap, taints_snap)
        if key in self._visited:
            self.pruned_states += 1
            return False
        self._visited.add(key)
        queue.append((forked, regs_snap, taints_snap, budget, depth))
        return True

    @staticmethod
    def _pop_state(queue) -> tuple:
        pc, regs, taints, budget, depth = queue.popleft()
        # Queue entries hold shared tuple snapshots; the walk mutates
        # registers/taints in place, so thaw on pop.
        return pc, list(regs), list(taints), budget, depth

    # -- replay metadata ---------------------------------------------------

    def _record(self, channel: str, origin: str, fork_pc: int, pc: int,
                depth: int, transient: bool, address: int | None = None
                ) -> None:
        if transient:
            key = (channel, origin, fork_pc, pc)
            prev = self.min_depths.get(key)
            if prev is None or depth < prev:
                self.min_depths[key] = depth
        super()._record(channel, origin, fork_pc, pc, depth,
                        transient=transient, address=address)


@dataclass(frozen=True)
class ExplorationRecord:
    """One memoized exploration: the replay metadata for a grid column.

    ``events`` holds one ``(channel, origin, min_depth)`` triple per
    distinct transient leak key, in first-occurrence order.  A key
    manifests under window ``w`` iff ``min_depth <= w`` (the budget ==
    window - depth lockstep), so one record answers every window up to
    the one it was explored at.
    """

    window: int  # the window this record was explored at
    events: tuple[tuple[str, str, int], ...]
    instret: int  # architectural instructions retired by the gadget run
    replayable: bool  # False if exploration hit a state/instruction cap

    def verdict_for(self, window: int
                    ) -> tuple[bool, tuple[str, ...], tuple[str, ...], int]:
        """(leaked, channels, origins, events) at ``window``."""
        live = [e for e in self.events if e[2] <= window]
        channels = tuple(sorted({e[0] for e in live}))
        origins = tuple(sorted({e[1] for e in live}))
        return bool(live), channels, origins, len(live)


class ExplorationMemo:
    """FIFO-bounded store of :class:`ExplorationRecord` by signature."""

    def __init__(self, capacity: int = MEMO_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("memo capacity must be >= 1")
        self.capacity = capacity
        self._records: OrderedDict[tuple, ExplorationRecord] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._records)

    def lookup(self, signature: tuple,
               window: int) -> ExplorationRecord | None:
        record = self._records.get(signature)
        if record is None or not record.replayable \
                or record.window < window:
            # A record explored at a narrower window cannot answer a
            # wider one (its depth profile is truncated): re-record.
            self.misses += 1
            return None
        self.hits += 1
        return record

    def store(self, signature: tuple, record: ExplorationRecord) -> None:
        if signature in self._records:
            del self._records[signature]
        self._records[signature] = record
        while len(self._records) > self.capacity:
            self._records.popitem(last=False)
            self.evictions += 1


_DRAM_BASE: dict[str, int] = {}


def _dram_base_for(config) -> int:
    """DRAM base of a config's SoC (probed once per config name).

    Gadget programs embed absolute addresses derived from the SoC's DRAM
    base, so two configs share an exploration only if their address maps
    agree — the base is part of every signature.
    """
    base = _DRAM_BASE.get(config.name)
    if base is None:
        base = _DRAM_BASE[config.name] = config.build().dram_base
    return base


def exploration_signature(config, gadget: Gadget) -> tuple:
    """The knob signature an exploration's outcome depends on.

    Non-speculative hosts have no fork sites at all, so every in-order
    config shares one class per gadget.  Speculative hosts share a class
    when the fork-relevant forwarding knobs agree; the window is *not*
    part of the signature — it is the replay parameter.
    """
    base = _dram_base_for(config)
    if not config.speculative:
        return ("arch", CORPUS_REV, gadget.name, base)
    return ("spec", CORPUS_REV, gadget.name, base,
            config.fault_at_retirement, config.l1tf_forwarding,
            config.btb_tagged)


def record_exploration(config, gadget: Gadget) -> ExplorationRecord:
    """Explore ``gadget`` once on ``config``'s SoC, window-inflated.

    Speculative configs record at ``max(window, MEMO_WINDOW_FLOOR)`` so
    the record replays for every grid column sharing the signature;
    non-speculative configs run plain (no fork sites to inflate).
    """
    soc = config.build()
    instance: GadgetInstance = gadget.build(soc)
    window = max(config.window, MEMO_WINDOW_FLOOR) \
        if config.speculative else None
    explorer = MemoizedSpeculationExplorer(soc, window=window)
    for word in instance.taint_words:
        explorer.taint.taint_word(word)
    explorer.injection_targets = list(instance.injection_targets)
    explorer.run(instance.program, instance.entry, regs=instance.regs,
                 max_steps=instance.max_steps)
    events = tuple((channel, origin, depth)
                   for (channel, origin, _fork_pc, _pc), depth
                   in explorer.min_depths.items())
    return ExplorationRecord(
        window=window if window is not None else 0,
        events=events,
        instret=sum(core.instret for core in soc.cores),
        replayable=not explorer.truncated)
