"""Command-line entry point: regenerate the paper's artefacts.

Usage::

    python -m repro figure1            # Figure 1 from live attacks
    python -m repro                    # same (figure1 is the default)
    python -m repro figure1 --jobs 4   # ... cells fanned over 4 workers
    python -m repro figure1 --full     # ... non-quick attack sizing
    python -m repro architectures      # TAB-S3 feature comparison
    python -m repro cache              # TAB-S41 cache side channels
    python -m repro transient          # TAB-S42 transient attacks
    python -m repro advisor            # Section-6 recommendations demo
    python -m repro all                # everything above

Evaluation as a service (the crash-safe multi-host job layer,
:mod:`repro.service`)::

    python -m repro submit --queue DIR             # enqueue the quick matrix
    python -m repro serve --queue DIR --workers 2  # run a worker fleet
    python -m repro worker --queue DIR             # one worker, drain & exit
    python -m repro status --queue DIR             # job progress snapshot

``submit`` publishes an atomic, content-addressed job file;
``serve``/``worker`` processes claim cells via leased single-flight on
the shared result cache and survive SIGKILL of any member (leases
expire and survivors take over); ``--chaos RATE`` under ``serve`` turns
on the *host-kill* chaos controller, which SIGKILLs and respawns fleet
members to prove it.  ``submit --from-manifest PATH`` cold-resumes the
campaign a RunManifest describes — cells the shared cache already
holds are skipped, not recomputed.

Observability (``--trace``, ``--metrics``, ``--manifest``) makes a
figure1 run emit machine-readable evidence: a Chrome ``trace_event``
file of every runner/cell/attack phase, a Prometheus (or JSON) metrics
snapshot, and a diffable per-run manifest.  All three default to off,
which keeps execution on the unobserved fast path.

Cell results are memoised on disk (``~/.cache/repro/cells`` or
``$REPRO_CACHE_DIR``) keyed by (package version, knobs, seed, platform,
category); ``--no-cache`` bypasses the cache and ``--clear-cache``
explicitly invalidates it first.  Runner statistics (mode, per-cell wall
time, cache hits/misses, worker utilisation) are printed after every
measured run.

Execution is supervised: each cell runs under a ``--timeout``, failing
cells are retried ``--retries`` times with deterministic-jitter backoff,
hung or crashed workers are replaced, and cells that still fail render
as explicitly not-evaluated (``--fail-fast`` restores the historical
abort-on-first-error behaviour).  ``--chaos RATE`` turns the repo's
fault-injection discipline on the harness itself.
"""

from __future__ import annotations

import argparse
import sys


def _make_observer(args):
    """An :class:`~repro.obs.Observability` sink, or ``None`` when no
    telemetry artefact was requested (the no-op fast path)."""
    if not (args.trace or args.metrics or args.manifest):
        return None
    from repro.obs import Observability
    command = "repro " + " ".join(
        part for part in (args.command, "--full" if args.full else "")
        if part)
    return Observability(run_seed=0x2019, command=command)


def _write_artifacts(args, observer) -> None:
    if observer is None:
        return
    for path in observer.write_artifacts(trace=args.trace,
                                         metrics=args.metrics,
                                         manifest=args.manifest):
        print(f"wrote {path}")


def _make_runner(args, observer=None, memo=False):
    from repro.runner import (
        ChaosConfig,
        ExperimentRunner,
        ResultCache,
        RetryPolicy,
    )
    cache = ResultCache()
    if args.clear_cache:
        removed = cache.clear()
        print(f"cache cleared: {removed} entries removed")
    chaos = ChaosConfig(rate=args.chaos) if args.chaos > 0 else None
    return ExperimentRunner(
        jobs=args.jobs,
        cache=None if args.no_cache else cache,
        timeout_s=args.timeout if args.timeout > 0 else None,
        retry=RetryPolicy(max_retries=args.retries),
        chaos=chaos,
        fail_fast=args.fail_fast,
        observer=observer,
        memo=memo)


def _figure1(args) -> None:
    from repro.core import generate_figure1
    observer = _make_observer(args)
    runner = _make_runner(args, observer=observer)
    figure = generate_figure1(quick=not args.full, runner=runner)
    print(figure.render())
    print(f"\ncell agreement with the published Figure 1: "
          f"{figure.agreement_with_paper():.0%}")
    print(f"\n{runner.stats.summary()}")
    if args.profile:
        print(f"\n{runner.stats.profile()}")
    _write_artifacts(args, observer)


def _architectures(args) -> None:
    from repro.core.comparison import (
        architecture_feature_table,
        render_table,
    )
    headers, rows = architecture_feature_table()
    print(render_table(headers, rows))


def _cache(args) -> None:
    from repro.core.comparison import (
        cache_defence_table,
        render_cache_defence_table,
    )
    rows = cache_defence_table(quick=not args.full, jobs=args.jobs)
    print(render_cache_defence_table(rows))


def _transient(args) -> None:
    from repro.core.comparison import (
        render_table,
        transient_applicability_table,
    )
    headers, rows = transient_applicability_table()
    print(render_table(headers, rows))


def _scan(args) -> int:
    from repro.spec import run_scan
    memo = not args.no_memo
    runner = _make_runner(args, memo=memo)
    report = run_scan(quick=not args.full, runner=runner)
    print(report.render())
    print(f"\n{runner.stats.summary()}")
    if args.profile:
        print(f"\n{runner.stats.profile()}")
    if args.report_json:
        with open(args.report_json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"wrote {args.report_json}")
    if args.report_txt:
        with open(args.report_txt, "w", encoding="utf-8") as fh:
            fh.write(report.render() + "\n")
        print(f"wrote {args.report_txt}")
    violations = report.violations()
    if violations:
        print("\nEXPECTATION VIOLATIONS:")
        for violation in violations:
            print(f"  {violation}")
        if args.check:
            return 1
    return 0


def _advisor(args) -> None:
    from repro.attacks.base import AttackCategory
    from repro.common import PlatformClass
    from repro.core import Requirements, recommend_architecture
    for platform in PlatformClass:
        reqs = Requirements(
            platform=platform,
            threats=frozenset({AttackCategory.REMOTE, AttackCategory.LOCAL,
                               AttackCategory.MICROARCHITECTURAL}),
            need_multiple_enclaves=True)
        print(f"\n{platform.value}:")
        for advice in recommend_architecture(reqs)[:2]:
            print(f"  {advice}")


def _queue_root(args):
    import os
    from pathlib import Path
    if args.queue:
        return Path(args.queue)
    env = os.environ.get("REPRO_QUEUE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "queue"


def _service_parts(args):
    from repro.runner import ResultCache
    from repro.service import Coordinator, JobQueue
    queue = JobQueue(_queue_root(args))
    cache_root = args.cache_dir or (queue.root / "cells")
    cache = ResultCache(cache_root)
    return queue, cache_root, cache, Coordinator(queue, cache)


def _submit(args) -> None:
    from repro.service import JobSpec
    queue, _, cache, coordinator = _service_parts(args)
    if args.from_manifest:
        from repro.obs.manifest import RunManifest
        job = JobSpec.from_manifest(RunManifest.read(args.from_manifest))
        print(f"resuming campaign from {args.from_manifest}")
    else:
        job = JobSpec.matrix(quick=not args.full)
    job_id = queue.submit(job)
    status = coordinator.status(job)
    print(f"submitted {job_id}: {len(job.cells())} cells "
          f"({status.done} already cached) -> {queue.root}")


def _status(args) -> None:
    _, _, _, coordinator = _service_parts(args)
    statuses = coordinator.statuses()
    if not statuses:
        print("no jobs in queue")
        return
    for status in statuses:
        print(status.summary())
    if args.metrics:
        print(f"wrote {coordinator.write_metrics(args.metrics)}")


def _worker(args) -> None:
    from repro.service import run_worker_process
    queue, cache_root, _, _ = _service_parts(args)
    stats = run_worker_process(
        str(queue.root), str(cache_root),
        ttl_s=args.lease_ttl, poll_s=args.poll, forever=args.forever,
        timeout_s=args.timeout if args.timeout > 0 else None)
    print(stats.summary())


def _serve(args) -> None:
    from repro.service import HostChaosConfig, WorkerFleet
    queue, cache_root, _, coordinator = _service_parts(args)
    chaos = (HostChaosConfig(kill_rate=args.chaos, kill_interval_s=2.0)
             if args.chaos > 0 else None)
    fleet = WorkerFleet(queue.root, cache_root, size=args.workers,
                        ttl_s=args.lease_ttl, poll_s=args.poll,
                        chaos=chaos)
    job_ids = queue.job_ids()
    if not job_ids:
        print("no jobs in queue; submit one first")
        return

    def on_poll(status):
        fleet.poll()
        if args.progress:
            coordinator.append_progress(args.progress, status)

    with fleet:
        for job_id in job_ids:
            job = queue.load(job_id)
            if job is None:
                continue
            status = coordinator.wait(job, timeout_s=args.wait_timeout,
                                      poll_s=args.poll, on_poll=on_poll)
            print(status.summary())
            if args.manifest:
                path = coordinator.manifest(
                    job, command="repro serve").write(args.manifest)
                print(f"wrote {path}")
        fleet.drain(timeout_s=30.0)
    if fleet.kills:
        print(f"chaos: {fleet.kills} worker(s) SIGKILLed, "
              f"{fleet.respawns} respawned")
    if args.metrics:
        print(f"wrote {coordinator.write_metrics(args.metrics)}")


_COMMANDS = {
    "figure1": _figure1,
    "architectures": _architectures,
    "cache": _cache,
    "transient": _transient,
    "advisor": _advisor,
}

#: Service verbs: excluded from ``all`` (``serve`` blocks on a fleet).
_SERVICE_COMMANDS = {
    "submit": _submit,
    "serve": _serve,
    "worker": _worker,
    "status": _status,
}

#: Analysis verbs: excluded from ``all`` (``scan --check`` is a CI gate
#: with its own exit-code semantics).
_ANALYSIS_COMMANDS = {
    "scan": _scan,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate artefacts of 'In Hardware We Trust' "
                    "(DAC 2019) from simulation.")
    parser.add_argument("command",
                        choices=[*_COMMANDS, *_SERVICE_COMMANDS,
                                 *_ANALYSIS_COMMANDS, "all"],
                        nargs="?", default="figure1",
                        help="which artefact to regenerate, a service "
                             "verb (submit/serve/worker/status), or "
                             "'scan' (the Spectre gadget-corpus sweep) "
                             "(default: figure1)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent cells "
                             "(default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell; skip the on-disk "
                             "result cache")
    parser.add_argument("--clear-cache", action="store_true",
                        help="invalidate the on-disk result cache before "
                             "running")
    parser.add_argument("--full", action="store_true",
                        help="full (non-quick) attack sizing: more "
                             "traces, longer secrets, bigger keys")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-cell profile (wall time, "
                             "simulated instructions/second, and outcome/"
                             "retry status) after figure1 or scan runs — "
                             "for scans that is a per-config timing "
                             "summary (one cell per config)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="per-cell wall-time budget before a worker "
                             "counts as hung and is replaced (default: "
                             "120; 0 disables)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="re-executions permitted per failing cell, "
                             "with capped exponential backoff and "
                             "deterministic jitter (default: 2)")
    parser.add_argument("--chaos", type=float, default=0.0, metavar="RATE",
                        help="inject harness faults (worker crash/hang/"
                             "raise/corrupt) into this fraction of cell "
                             "attempts — exercises the recovery paths "
                             "(default: 0, off)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first cell failure instead of "
                             "recording it as a not-evaluated outcome "
                             "(the historical behaviour)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace_event JSON of the run "
                             "(open in chrome://tracing or Perfetto) plus "
                             "a sibling .jsonl of the raw records "
                             "(figure1 runs only)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write run metrics: Prometheus text "
                             "exposition, or JSON when PATH ends in "
                             ".json (figure1 runs only)")
    parser.add_argument("--manifest", metavar="PATH", default=None,
                        help="write the diffable RunManifest JSON "
                             "(version, knobs, seeds, outcomes, payload "
                             "fingerprints, metric snapshot) "
                             "(figure1 runs only)")
    parser.add_argument("--queue", metavar="DIR", default=None,
                        help="service queue directory (default: "
                             "$REPRO_QUEUE_DIR or ~/.cache/repro/queue)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="shared result-cache directory for service "
                             "verbs (default: <queue>/cells)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="fleet size for 'serve' (default: 2)")
    parser.add_argument("--lease-ttl", type=float, default=30.0,
                        metavar="SECONDS",
                        help="lease TTL: how long after a host stops "
                             "heartbeating its cells are reclaimed "
                             "(default: 30)")
    parser.add_argument("--poll", type=float, default=0.2,
                        metavar="SECONDS",
                        help="worker/coordinator poll interval "
                             "(default: 0.2)")
    parser.add_argument("--wait-timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="'serve': max wall time to wait per job "
                             "before reporting it incomplete "
                             "(default: 600)")
    parser.add_argument("--forever", action="store_true",
                        help="'worker': keep polling for new jobs "
                             "instead of exiting once drained")
    parser.add_argument("--from-manifest", metavar="PATH", default=None,
                        help="'submit': reconstruct and resubmit the "
                             "campaign a RunManifest describes "
                             "(cold resume; cached cells are skipped)")
    parser.add_argument("--progress", metavar="PATH", default=None,
                        help="'serve': append JSONL progress records "
                             "per poll to PATH")
    parser.add_argument("--check", action="store_true",
                        help="'scan': exit nonzero on any expectation "
                             "violation (safe gadget leaking or "
                             "vulnerable gadget reported clean) — the "
                             "CI gate")
    parser.add_argument("--report-json", metavar="PATH", default=None,
                        help="'scan': write the canonical JSON leak "
                             "report to PATH")
    parser.add_argument("--report-txt", metavar="PATH", default=None,
                        help="'scan': write the rendered leak-report "
                             "table to PATH")
    parser.add_argument("--no-memo", action="store_true",
                        help="'scan': use the reference (unmemoized) "
                             "explorer instead of the memoized engine — "
                             "slower, byte-identical reports (the CI "
                             "cross-check lane)")
    args = parser.parse_args(argv)
    if args.command == "all":
        for name, command in _COMMANDS.items():
            print(f"\n{'=' * 20} {name} {'=' * 20}")
            command(args)
    else:
        command = {**_COMMANDS, **_SERVICE_COMMANDS,
                   **_ANALYSIS_COMMANDS}[args.command]
        return int(command(args) or 0)
    return 0


if __name__ == "__main__":
    sys.exit(main())
