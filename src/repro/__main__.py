"""Command-line entry point: regenerate the paper's artefacts.

Usage::

    python -m repro figure1            # Figure 1 from live attacks
    python -m repro                    # same (figure1 is the default)
    python -m repro figure1 --jobs 4   # ... cells fanned over 4 workers
    python -m repro figure1 --full     # ... non-quick attack sizing
    python -m repro architectures      # TAB-S3 feature comparison
    python -m repro cache              # TAB-S41 cache side channels
    python -m repro transient          # TAB-S42 transient attacks
    python -m repro advisor            # Section-6 recommendations demo
    python -m repro all                # everything above

Observability (``--trace``, ``--metrics``, ``--manifest``) makes a
figure1 run emit machine-readable evidence: a Chrome ``trace_event``
file of every runner/cell/attack phase, a Prometheus (or JSON) metrics
snapshot, and a diffable per-run manifest.  All three default to off,
which keeps execution on the unobserved fast path.

Cell results are memoised on disk (``~/.cache/repro/cells`` or
``$REPRO_CACHE_DIR``) keyed by (package version, knobs, seed, platform,
category); ``--no-cache`` bypasses the cache and ``--clear-cache``
explicitly invalidates it first.  Runner statistics (mode, per-cell wall
time, cache hits/misses, worker utilisation) are printed after every
measured run.

Execution is supervised: each cell runs under a ``--timeout``, failing
cells are retried ``--retries`` times with deterministic-jitter backoff,
hung or crashed workers are replaced, and cells that still fail render
as explicitly not-evaluated (``--fail-fast`` restores the historical
abort-on-first-error behaviour).  ``--chaos RATE`` turns the repo's
fault-injection discipline on the harness itself.
"""

from __future__ import annotations

import argparse
import sys


def _make_observer(args):
    """An :class:`~repro.obs.Observability` sink, or ``None`` when no
    telemetry artefact was requested (the no-op fast path)."""
    if not (args.trace or args.metrics or args.manifest):
        return None
    from repro.obs import Observability
    command = "repro " + " ".join(
        part for part in (args.command, "--full" if args.full else "")
        if part)
    return Observability(run_seed=0x2019, command=command)


def _write_artifacts(args, observer) -> None:
    if observer is None:
        return
    for path in observer.write_artifacts(trace=args.trace,
                                         metrics=args.metrics,
                                         manifest=args.manifest):
        print(f"wrote {path}")


def _make_runner(args, observer=None):
    from repro.runner import (
        ChaosConfig,
        ExperimentRunner,
        ResultCache,
        RetryPolicy,
    )
    cache = ResultCache()
    if args.clear_cache:
        removed = cache.clear()
        print(f"cache cleared: {removed} entries removed")
    chaos = ChaosConfig(rate=args.chaos) if args.chaos > 0 else None
    return ExperimentRunner(
        jobs=args.jobs,
        cache=None if args.no_cache else cache,
        timeout_s=args.timeout if args.timeout > 0 else None,
        retry=RetryPolicy(max_retries=args.retries),
        chaos=chaos,
        fail_fast=args.fail_fast,
        observer=observer)


def _figure1(args) -> None:
    from repro.core import generate_figure1
    observer = _make_observer(args)
    runner = _make_runner(args, observer=observer)
    figure = generate_figure1(quick=not args.full, runner=runner)
    print(figure.render())
    print(f"\ncell agreement with the published Figure 1: "
          f"{figure.agreement_with_paper():.0%}")
    print(f"\n{runner.stats.summary()}")
    if args.profile:
        print(f"\n{runner.stats.profile()}")
    _write_artifacts(args, observer)


def _architectures(args) -> None:
    from repro.core.comparison import (
        architecture_feature_table,
        render_table,
    )
    headers, rows = architecture_feature_table()
    print(render_table(headers, rows))


def _cache(args) -> None:
    from repro.core.comparison import (
        cache_defence_table,
        render_cache_defence_table,
    )
    rows = cache_defence_table(quick=not args.full, jobs=args.jobs)
    print(render_cache_defence_table(rows))


def _transient(args) -> None:
    from repro.core.comparison import (
        render_table,
        transient_applicability_table,
    )
    headers, rows = transient_applicability_table()
    print(render_table(headers, rows))


def _advisor(args) -> None:
    from repro.attacks.base import AttackCategory
    from repro.common import PlatformClass
    from repro.core import Requirements, recommend_architecture
    for platform in PlatformClass:
        reqs = Requirements(
            platform=platform,
            threats=frozenset({AttackCategory.REMOTE, AttackCategory.LOCAL,
                               AttackCategory.MICROARCHITECTURAL}),
            need_multiple_enclaves=True)
        print(f"\n{platform.value}:")
        for advice in recommend_architecture(reqs)[:2]:
            print(f"  {advice}")


_COMMANDS = {
    "figure1": _figure1,
    "architectures": _architectures,
    "cache": _cache,
    "transient": _transient,
    "advisor": _advisor,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate artefacts of 'In Hardware We Trust' "
                    "(DAC 2019) from simulation.")
    parser.add_argument("command", choices=[*_COMMANDS, "all"],
                        nargs="?", default="figure1",
                        help="which artefact to regenerate "
                             "(default: figure1)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent cells "
                             "(default: 1, serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every cell; skip the on-disk "
                             "result cache")
    parser.add_argument("--clear-cache", action="store_true",
                        help="invalidate the on-disk result cache before "
                             "running")
    parser.add_argument("--full", action="store_true",
                        help="full (non-quick) attack sizing: more "
                             "traces, longer secrets, bigger keys")
    parser.add_argument("--profile", action="store_true",
                        help="print a per-cell profile (wall time, "
                             "simulated instructions/second, and outcome/"
                             "retry status) after figure1 runs")
    parser.add_argument("--timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="per-cell wall-time budget before a worker "
                             "counts as hung and is replaced (default: "
                             "120; 0 disables)")
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="re-executions permitted per failing cell, "
                             "with capped exponential backoff and "
                             "deterministic jitter (default: 2)")
    parser.add_argument("--chaos", type=float, default=0.0, metavar="RATE",
                        help="inject harness faults (worker crash/hang/"
                             "raise/corrupt) into this fraction of cell "
                             "attempts — exercises the recovery paths "
                             "(default: 0, off)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first cell failure instead of "
                             "recording it as a not-evaluated outcome "
                             "(the historical behaviour)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace_event JSON of the run "
                             "(open in chrome://tracing or Perfetto) plus "
                             "a sibling .jsonl of the raw records "
                             "(figure1 runs only)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write run metrics: Prometheus text "
                             "exposition, or JSON when PATH ends in "
                             ".json (figure1 runs only)")
    parser.add_argument("--manifest", metavar="PATH", default=None,
                        help="write the diffable RunManifest JSON "
                             "(version, knobs, seeds, outcomes, payload "
                             "fingerprints, metric snapshot) "
                             "(figure1 runs only)")
    args = parser.parse_args(argv)
    if args.command == "all":
        for name, command in _COMMANDS.items():
            print(f"\n{'=' * 20} {name} {'=' * 20}")
            command(args)
    else:
        _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
