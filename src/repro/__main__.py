"""Command-line entry point: regenerate the paper's artefacts.

Usage::

    python -m repro figure1          # Figure 1 from live attacks
    python -m repro architectures    # TAB-S3 feature comparison
    python -m repro cache            # TAB-S41 cache side channels
    python -m repro transient        # TAB-S42 transient attacks
    python -m repro advisor          # Section-6 recommendations demo
    python -m repro all              # everything above
"""

from __future__ import annotations

import argparse
import sys


def _figure1() -> None:
    from repro.core import generate_figure1
    figure = generate_figure1(quick=True)
    print(figure.render())
    print(f"\ncell agreement with the published Figure 1: "
          f"{figure.agreement_with_paper():.0%}")


def _architectures() -> None:
    from repro.core.comparison import (
        architecture_feature_table,
        render_table,
    )
    headers, rows = architecture_feature_table()
    print(render_table(headers, rows))


def _cache() -> None:
    from repro.core.comparison import (
        cache_defence_table,
        render_cache_defence_table,
    )
    print(render_cache_defence_table(cache_defence_table(quick=True)))


def _transient() -> None:
    from repro.core.comparison import (
        render_table,
        transient_applicability_table,
    )
    headers, rows = transient_applicability_table()
    print(render_table(headers, rows))


def _advisor() -> None:
    from repro.attacks.base import AttackCategory
    from repro.common import PlatformClass
    from repro.core import Requirements, recommend_architecture
    for platform in PlatformClass:
        reqs = Requirements(
            platform=platform,
            threats=frozenset({AttackCategory.REMOTE, AttackCategory.LOCAL,
                               AttackCategory.MICROARCHITECTURAL}),
            need_multiple_enclaves=True)
        print(f"\n{platform.value}:")
        for advice in recommend_architecture(reqs)[:2]:
            print(f"  {advice}")


_COMMANDS = {
    "figure1": _figure1,
    "architectures": _architectures,
    "cache": _cache,
    "transient": _transient,
    "advisor": _advisor,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate artefacts of 'In Hardware We Trust' "
                    "(DAC 2019) from simulation.")
    parser.add_argument("command", choices=[*_COMMANDS, "all"],
                        help="which artefact to regenerate")
    args = parser.parse_args(argv)
    if args.command == "all":
        for name, command in _COMMANDS.items():
            print(f"\n{'=' * 20} {name} {'=' * 20}")
            command()
    else:
        _COMMANDS[args.command]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
