"""Exception hierarchy shared across the simulation.

Faults mirror real hardware: a :class:`MemoryFault` carries the faulting
address and access type, and :class:`PageFault` additionally carries which
permission check failed — Foreshadow, for instance, depends on
distinguishing a *present-bit* fault (terminal fault) from a permission
fault.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class ConfigurationError(ReproError):
    """A component was wired or parameterised inconsistently."""


class MemoryFault(ReproError):
    """An access was rejected by the memory system.

    Attributes:
        addr: faulting (virtual or physical) address.
        access: one of ``"read"``, ``"write"``, ``"execute"``.
        reason: short machine-readable cause, e.g. ``"unmapped"``.
    """

    def __init__(self, addr: int, access: str, reason: str) -> None:
        super().__init__(f"{access} fault at {addr:#x}: {reason}")
        self.addr = addr
        self.access = access
        self.reason = reason


class AccessFault(MemoryFault):
    """A bus-level access-control unit (TZASC, MPU, DMA filter) said no."""


class PageFault(MemoryFault):
    """The MMU rejected a translation.

    ``reason`` is one of ``"not-present"``, ``"reserved"``, ``"privilege"``,
    ``"write-protect"``, ``"no-execute"``, ``"unmapped"``.  A ``"not-present"``
    or ``"reserved"`` fault on a page whose data still sits in L1 is exactly
    Intel's *L1 Terminal Fault* precondition.
    """


class SecurityViolation(ReproError):
    """A TEE invariant was violated (e.g. writing a locked MPU)."""


class AttestationError(ReproError):
    """An attestation report failed verification."""


class EnclaveError(ReproError):
    """Enclave lifecycle misuse (double create, call before init, ...)."""


class FaultInjectionError(ReproError):
    """The fault-injection engine was asked for an impossible glitch."""


class DeviceError(ReproError):
    """A peripheral/device model failed."""
