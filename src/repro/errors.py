"""Exception hierarchy shared across the simulation.

Faults mirror real hardware: a :class:`MemoryFault` carries the faulting
address and access type, and :class:`PageFault` additionally carries which
permission check failed — Foreshadow, for instance, depends on
distinguishing a *present-bit* fault (terminal fault) from a permission
fault.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class ConfigurationError(ReproError):
    """A component was wired or parameterised inconsistently."""


class MemoryFault(ReproError):
    """An access was rejected by the memory system.

    Attributes:
        addr: faulting (virtual or physical) address.
        access: one of ``"read"``, ``"write"``, ``"execute"``.
        reason: short machine-readable cause, e.g. ``"unmapped"``.
    """

    def __init__(self, addr: int, access: str, reason: str) -> None:
        super().__init__(f"{access} fault at {addr:#x}: {reason}")
        self.addr = addr
        self.access = access
        self.reason = reason


class AccessFault(MemoryFault):
    """A bus-level access-control unit (TZASC, MPU, DMA filter) said no."""


class PageFault(MemoryFault):
    """The MMU rejected a translation.

    ``reason`` is one of ``"not-present"``, ``"reserved"``, ``"privilege"``,
    ``"write-protect"``, ``"no-execute"``, ``"unmapped"``.  A ``"not-present"``
    or ``"reserved"`` fault on a page whose data still sits in L1 is exactly
    Intel's *L1 Terminal Fault* precondition.
    """


class SecurityViolation(ReproError):
    """A TEE invariant was violated (e.g. writing a locked MPU)."""


class AttestationError(ReproError):
    """An attestation report failed verification."""


class EnclaveError(ReproError):
    """Enclave lifecycle misuse (double create, call before init, ...)."""


class FaultInjectionError(ReproError):
    """The fault-injection engine was asked for an impossible glitch."""


class DeviceError(ReproError):
    """A peripheral/device model failed."""


class HarnessError(ReproError):
    """The experiment *harness* (not the simulated hardware) failed.

    Distinct from the simulation faults above: a :class:`MemoryFault` is a
    measurement, a :class:`HarnessError` is the measuring apparatus
    breaking.  The supervised runner converts these into per-cell
    outcomes unless ``fail_fast`` asks for the old abort behaviour.
    """


class CellExecutionError(HarnessError):
    """A cell raised (or its worker died) on every permitted attempt.

    Attributes:
        platform/category: the failing cell's coordinates.
        attempts: how many times the cell was executed.
        cause: short machine-readable failure kind (``"raised"``,
            ``"worker-crash"``, ``"corrupt-payload"``, ...).
    """

    def __init__(self, platform: str, category: str, attempts: int,
                 cause: str, detail: str = "") -> None:
        message = (f"cell {platform}/{category} failed after "
                   f"{attempts} attempt(s): {cause}")
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.platform = platform
        self.category = category
        self.attempts = attempts
        self.cause = cause
        self.detail = detail


class CellTimeoutError(CellExecutionError):
    """A cell's worker ran past the per-cell timeout and was replaced."""

    def __init__(self, platform: str, category: str, attempts: int,
                 timeout_s: float) -> None:
        super().__init__(platform, category, attempts, "timed-out",
                         f"exceeded {timeout_s:.1f}s per-cell timeout")
        self.timeout_s = timeout_s


class PayloadCorruptionError(HarnessError):
    """A worker returned (or the cache held) a payload whose integrity
    digest does not match its contents."""


class ChaosError(HarnessError):
    """Deliberate failure injected by :mod:`repro.runner.chaos`.

    Raised by the ``"raise"`` chaos mode, and substituted for the
    ``"crash"``/``"hang"`` modes when a cell executes in the parent
    process (where a real ``os._exit`` would kill the whole run, not a
    disposable worker).
    """

