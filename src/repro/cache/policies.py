"""Replacement policies for set-associative caches.

A policy instance manages one cache *set* of ``ways`` slots, identified by
way index.  The cache calls :meth:`on_hit`/:meth:`on_fill` to record usage
and :meth:`victim` to choose an eviction way.  Policies are deliberately
deterministic (RandomPolicy is seeded) so side-channel experiments are
reproducible.
"""

from __future__ import annotations

import random
from typing import Protocol


class ReplacementPolicy(Protocol):
    """Per-set replacement state."""

    def on_hit(self, way: int) -> None:
        """Record a hit in ``way``."""

    def on_fill(self, way: int) -> None:
        """Record a fill into ``way``."""

    def victim(self, occupied: list[bool], allowed: list[bool]) -> int:
        """Pick a way to evict/fill.

        ``occupied[w]`` tells whether way ``w`` holds a valid line;
        ``allowed[w]`` restricts the choice (way partitioning).  Empty
        allowed ways are preferred over evicting.
        """

    def victim_full(self) -> int:
        """Victim for the common case: every way occupied, every way
        allowed.  Must pick the same way :meth:`victim` would; the cache
        calls this directly on unpartitioned sets to skip the vector
        bookkeeping."""


def _first_free(occupied: list[bool], allowed: list[bool]) -> int | None:
    for way, (occ, ok) in enumerate(zip(occupied, allowed)):
        if ok and not occ:
            return way
    return None


class LRUPolicy:
    """True least-recently-used."""

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self._stamp = 0
        self._last_use = [0] * ways

    def on_hit(self, way: int) -> None:
        self._stamp += 1
        self._last_use[way] = self._stamp

    def on_fill(self, way: int) -> None:
        self.on_hit(way)

    def victim(self, occupied: list[bool], allowed: list[bool]) -> int:
        free = _first_free(occupied, allowed)
        if free is not None:
            return free
        # Inline argmin over allowed ways (strict < keeps the first minimum,
        # matching min() over an ascending candidate list).
        last_use = self._last_use
        best = -1
        best_stamp = 0
        for way, ok in enumerate(allowed):
            if ok and (best < 0 or last_use[way] < best_stamp):
                best = way
                best_stamp = last_use[way]
        if best < 0:
            raise ValueError("no way allowed for this domain")
        return best

    def victim_full(self) -> int:
        last_use = self._last_use
        return last_use.index(min(last_use))


class FIFOPolicy:
    """First-in-first-out: hits do not refresh a line's age."""

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self._stamp = 0
        self._filled_at = [0] * ways

    def on_hit(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        self._stamp += 1
        self._filled_at[way] = self._stamp

    def victim(self, occupied: list[bool], allowed: list[bool]) -> int:
        free = _first_free(occupied, allowed)
        if free is not None:
            return free
        candidates = [w for w in range(self.ways) if allowed[w]]
        if not candidates:
            raise ValueError("no way allowed for this domain")
        return min(candidates, key=lambda w: self._filled_at[w])

    def victim_full(self) -> int:
        filled_at = self._filled_at
        return filled_at.index(min(filled_at))


class RandomPolicy:
    """Seeded uniform-random victim selection.

    Random replacement weakens (but does not eliminate) eviction-set
    construction — a useful contrast case for the ABL-1 defence ablation.
    """

    def __init__(self, ways: int, seed: int = 0) -> None:
        self.ways = ways
        self._rng = random.Random(seed)

    def on_hit(self, way: int) -> None:
        pass

    def on_fill(self, way: int) -> None:
        pass

    def victim(self, occupied: list[bool], allowed: list[bool]) -> int:
        free = _first_free(occupied, allowed)
        if free is not None:
            return free
        candidates = [w for w in range(self.ways) if allowed[w]]
        if not candidates:
            raise ValueError("no way allowed for this domain")
        return self._rng.choice(candidates)

    def victim_full(self) -> int:
        # choice(range) draws identically to choice over the full
        # candidate list, so the RNG stream is unchanged.
        return self._rng.choice(range(self.ways))


class TreePLRUPolicy:
    """Tree pseudo-LRU, the common hardware approximation.

    Maintains a binary tree of direction bits over a power-of-two number of
    ways; hits flip the bits along the path away from the used way, and the
    victim follows the bits from the root.
    """

    def __init__(self, ways: int) -> None:
        if ways & (ways - 1):
            raise ValueError("TreePLRU requires a power-of-two way count")
        self.ways = ways
        self._bits = [0] * max(ways - 1, 1)

    def _update(self, way: int) -> None:
        node = 0
        span = self.ways
        while span > 1:
            span //= 2
            if way < span:
                self._bits[node] = 1  # point away: right next time
                node = 2 * node + 1
            else:
                self._bits[node] = 0
                node = 2 * node + 2
                way -= span

    def on_hit(self, way: int) -> None:
        if self.ways > 1:
            self._update(way)

    def on_fill(self, way: int) -> None:
        self.on_hit(way)

    def victim(self, occupied: list[bool], allowed: list[bool]) -> int:
        free = _first_free(occupied, allowed)
        if free is not None:
            return free
        if not any(allowed):
            raise ValueError("no way allowed for this domain")
        way = self.victim_full()
        if allowed[way]:
            return way
        # Partitioned sets may exclude the tree's choice; fall back to the
        # first allowed way (hardware PLRU with way-locking does the same).
        return next(w for w in range(self.ways) if allowed[w])

    def victim_full(self) -> int:
        if self.ways == 1:
            return 0
        node = 0
        way = 0
        span = self.ways
        while span > 1:
            span //= 2
            if self._bits[node]:
                # Bit points right: the victim lives in the right subtree.
                node = 2 * node + 2
                way += span
            else:
                node = 2 * node + 1
        return way
