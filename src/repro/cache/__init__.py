"""Cache structures and the timing channels they create.

Every attack in Section 4 of the paper ultimately measures one of these
structures.  The models are behavioural but cycle-attributed: an access
returns which level hit and a latency, which is exactly the signal
Evict+Time / Prime+Probe / Flush+Reload quantify.

* :class:`Cache` — physically-indexed set-associative cache with pluggable
  replacement and index functions.
* :class:`CacheHierarchy` — per-core L1s over a shared last-level cache,
  with the defences the paper contrasts: way partitioning [39], randomised
  index mapping [40], page colouring (Sanctum), and cache exclusion
  (Sanctuary).
* :class:`TLB` / :class:`BranchTargetBuffer` — "any cache structure shared
  by the attacker and the victim can be exploited".
"""

from repro.cache.policies import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    TreePLRUPolicy,
)
from repro.cache.cache import AccessResult, Cache, CacheStats
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig, MemoryAccess
from repro.cache.tlb import TLB
from repro.cache.btb import BranchTargetBuffer
from repro.cache.partition import WayPartition, color_of, frames_of_color
from repro.cache.randmap import RandomizedIndexing

__all__ = [
    "AccessResult",
    "BranchTargetBuffer",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "FIFOPolicy",
    "HierarchyConfig",
    "LRUPolicy",
    "MemoryAccess",
    "RandomPolicy",
    "RandomizedIndexing",
    "ReplacementPolicy",
    "TLB",
    "TreePLRUPolicy",
    "WayPartition",
    "color_of",
    "frames_of_color",
]
