"""Randomised address-to-set mapping (RPcache/CEASER family, paper ref [40]).

Instead of partitioning, the cache scrambles which set an address maps to
using a keyed permutation.  An attacker who cannot learn the key cannot
build eviction sets by address arithmetic; re-keying periodically destroys
any eviction sets learned by brute force.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """Cheap invertible-ish mixing (xorshift-multiply)."""
    x &= _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    x ^= x >> 33
    return x


class RandomizedIndexing:
    """Keyed set-index function; install as ``Cache.index_fn``.

    Use :meth:`rekey` to model periodic re-randomisation.  ``epoch`` counts
    re-keys so experiments can correlate attack success with key lifetime.
    """

    def __init__(self, key: int, line_size: int = 64) -> None:
        self._key = key & _MASK64
        self.line_size = line_size
        self.epoch = 0

    def __call__(self, addr: int) -> int:
        line = addr // self.line_size
        return _mix(line ^ self._key)

    def rekey(self, new_key: int) -> None:
        """Change the index key (the defender's periodic re-randomisation).

        Note: in this model the caller must also flush the cache — with a
        new mapping, resident lines would otherwise be found in stale sets.
        Real CEASER migrates lines gradually; flush-on-rekey is the
        conservative approximation.
        """
        self._key = new_key & _MASK64
        self.epoch += 1

    def colliding_addresses(self, target: int, candidates: list[int]) -> list[int]:
        """Which candidate addresses map to the same set as ``target``.

        Exists for *tests and oracle-grade analysis only* — a software
        attacker has no such oracle, which is exactly the defence's point.
        """
        want = self(target)
        return [addr for addr in candidates if self(addr) == want]
