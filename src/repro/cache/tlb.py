"""Translation Lookaside Buffer.

Modelled as a set-associative structure over virtual page numbers so that
TLB *contention* is real: two pages whose VPNs share a set compete for
ways, which is the signal the TLB side-channel attack (Gras et al.,
paper ref [15]) measures.  The TLB may be shared between hardware threads
(``shared=True``) to model SMT co-residency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.paging import PAGE_SHIFT, PageFlags


@dataclass
class _TLBEntry:
    asid: int
    vpn: int
    paddr: int
    flags: PageFlags
    stamp: int


class TLB:
    """Set-associative TLB with LRU replacement.

    ``lookup``/``insert`` match the duck-typed interface
    :class:`repro.memory.mmu.MMU` expects.  Entries with
    :data:`PageFlags.GLOBAL` match any ASID and survive ASID-scoped
    flushes.
    """

    def __init__(self, num_sets: int = 16, ways: int = 4,
                 hit_latency: int = 1, miss_penalty: int = 20) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self.hit_latency = hit_latency
        self.miss_penalty = miss_penalty
        self._sets: list[list[_TLBEntry | None]] = [
            [None] * ways for _ in range(num_sets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    def _set_index(self, va_page: int) -> int:
        return (va_page >> PAGE_SHIFT) % self.num_sets

    def lookup(self, asid: int, va_page: int) -> tuple[int, PageFlags] | None:
        """Return (physical page address, flags) on hit, else None."""
        vpn = va_page >> PAGE_SHIFT
        entries = self._sets[self._set_index(va_page)]
        for entry in entries:
            if entry is None or entry.vpn != vpn:
                continue
            if entry.asid != asid and not entry.flags & PageFlags.GLOBAL:
                continue
            self._stamp += 1
            entry.stamp = self._stamp
            self.hits += 1
            return entry.paddr, entry.flags
        self.misses += 1
        return None

    def insert(self, asid: int, va_page: int, paddr: int,
               flags: PageFlags) -> int | None:
        """Fill an entry; returns the evicted VPN's page address, if any."""
        vpn = va_page >> PAGE_SHIFT
        idx = self._set_index(va_page)
        entries = self._sets[idx]
        self._stamp += 1
        # Refill over an existing entry for the same page, if present.
        for way, entry in enumerate(entries):
            if entry is not None and entry.vpn == vpn and entry.asid == asid:
                entries[way] = _TLBEntry(asid, vpn, paddr, flags, self._stamp)
                return None
        for way, entry in enumerate(entries):
            if entry is None:
                entries[way] = _TLBEntry(asid, vpn, paddr, flags, self._stamp)
                return None
        victim_way = min(range(self.ways), key=lambda w: entries[w].stamp)
        evicted = entries[victim_way].vpn << PAGE_SHIFT
        entries[victim_way] = _TLBEntry(asid, vpn, paddr, flags, self._stamp)
        return evicted

    def flush(self, asid: int | None = None) -> int:
        """Drop entries (all, or one ASID's non-global); returns count."""
        count = 0
        for entries in self._sets:
            for way, entry in enumerate(entries):
                if entry is None:
                    continue
                if asid is not None and (
                        entry.asid != asid or entry.flags & PageFlags.GLOBAL):
                    continue
                entries[way] = None
                count += 1
        return count

    def contains(self, asid: int, va_page: int) -> bool:
        """Presence probe without updating LRU state."""
        vpn = va_page >> PAGE_SHIFT
        for entry in self._sets[self._set_index(va_page)]:
            if entry is None or entry.vpn != vpn:
                continue
            if entry.asid == asid or entry.flags & PageFlags.GLOBAL:
                return True
        return False

    def set_occupancy(self, va_page: int) -> int:
        """Valid entries in the set ``va_page`` maps to (contention probe)."""
        return sum(1 for entry in self._sets[self._set_index(va_page)]
                   if entry is not None)

    def access_latency(self, hit: bool) -> int:
        """Cycle cost the core charges for a translation."""
        return self.hit_latency if hit else self.miss_penalty
