"""Multi-core cache hierarchy: private L1s over a shared, inclusive LLC.

The shared last-level cache is the paper's central microarchitectural
battleground: SGX and TrustZone leave it shared and unpartitioned
(attackable), Sanctum partitions it by page colour, Sanctuary excludes
enclave memory from it entirely.  All three configurations are expressible
on this one model:

* way partitioning / page colouring — install a partition or allocate
  coloured frames; the LLC is physically indexed so colouring works as in
  real hardware;
* exclusion — pass ``cacheable=False`` (derived from the memory region);
* flush-on-context-switch — :meth:`flush_core`.

The LLC is *inclusive*: evicting an LLC line back-invalidates it from all
L1s.  Inclusivity is what makes cross-core Prime+Probe work on real Intel
parts, and it does here too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.cache import Cache
from repro.cache.policies import LRUPolicy


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latency parameters.

    Defaults model a small high-end part: 16 KiB 4-way L1s per core and a
    256 KiB 8-way shared LLC, 64-byte lines.  The latency staircase
    (4 / 20 / 140 cycles) gives attackers an unambiguous hit/miss signal,
    as on real hardware.
    """

    num_cores: int = 2
    line_size: int = 64
    l1_sets: int = 64
    l1_ways: int = 4
    l2_sets: int = 512
    l2_ways: int = 8
    l1_latency: int = 4
    l2_latency: int = 16
    dram_latency: int = 120


@dataclass(frozen=True)
class MemoryAccess:
    """Where an access was served and what it cost/displaced."""

    level: str  # "l1" | "l2" | "dram" | "uncached"
    latency: int
    l1_evicted: int | None = None
    l2_evicted: int | None = None

    @property
    def hit(self) -> bool:
        return self.level in ("l1", "l2")


class CacheHierarchy:
    """Per-core L1 caches over one shared inclusive LLC."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config or HierarchyConfig()
        cfg = self.config
        self.l1s = [
            Cache(f"l1-core{i}", cfg.l1_sets, cfg.l1_ways, cfg.line_size,
                  hit_latency=cfg.l1_latency, policy_factory=LRUPolicy)
            for i in range(cfg.num_cores)
        ]
        self.l2 = Cache("llc", cfg.l2_sets, cfg.l2_ways, cfg.line_size,
                        hit_latency=cfg.l2_latency, policy_factory=LRUPolicy)
        #: Physical ranges served by core-private caches only (Sanctuary's
        #: "exclude enclave memory from the shared caches").
        self._llc_excluded: list[tuple[int, int]] = []
        # Hot-path allocation avoidance: MemoryAccess is frozen, so the
        # no-eviction outcomes (the overwhelming majority once caches warm
        # up) are shared singletons; only accesses that displace a line
        # allocate a fresh record carrying the victim addresses.
        self._lat_l1_l2 = cfg.l1_latency + cfg.l2_latency
        self._lat_l1_dram = cfg.l1_latency + cfg.dram_latency
        self._lat_full = cfg.l1_latency + cfg.l2_latency + cfg.dram_latency
        self._uncached_result = MemoryAccess("uncached", cfg.dram_latency)
        self._l1_hit_result = MemoryAccess("l1", cfg.l1_latency)
        self._l2_hit_result = MemoryAccess("l2", self._lat_l1_l2)
        self._dram_result = MemoryAccess("dram", self._lat_full)
        self._dram_excluded_result = MemoryAccess("dram", self._lat_l1_dram)

    def exclude_from_llc(self, base: int, size: int) -> None:
        """Mark ``[base, base+size)`` as never cached in the shared LLC."""
        self._llc_excluded.append((base, base + size))

    def _llc_allowed(self, paddr: int) -> bool:
        return all(not (base <= paddr < end)
                   for base, end in self._llc_excluded)

    # -- main access path ------------------------------------------------------

    def access(self, core: int, paddr: int, is_write: bool = False,
               domain: str | None = None,
               cacheable: bool = True) -> MemoryAccess:
        """Serve one physical access for ``core``; returns level + latency."""
        if not cacheable:
            return self._uncached_result

        r1 = self.l1s[core].access(paddr, is_write, domain)
        if r1.hit:
            return self._l1_hit_result
        l1_evicted = r1.evicted

        if self._llc_excluded and not self._llc_allowed(paddr):
            # LLC-excluded range: L1 miss goes straight to DRAM and the
            # shared cache never learns the address.
            if l1_evicted is None:
                return self._dram_excluded_result
            return MemoryAccess("dram", self._lat_l1_dram,
                                l1_evicted=l1_evicted)

        r2 = self.l2.access(paddr, is_write, domain)
        if r2.hit:
            if l1_evicted is None:
                return self._l2_hit_result
            return MemoryAccess("l2", self._lat_l1_l2, l1_evicted=l1_evicted)

        # LLC miss -> DRAM fill.  Inclusive LLC: its victim must leave
        # every L1 as well.
        l2_evicted = r2.evicted
        if l2_evicted is not None:
            for other in self.l1s:
                other.flush_line(l2_evicted)
        elif l1_evicted is None:
            return self._dram_result
        return MemoryAccess("dram", self._lat_full,
                            l1_evicted=l1_evicted, l2_evicted=l2_evicted)

    # -- timing probe (the attacker's measurement primitive) --------------------

    def timed_access(self, core: int, paddr: int,
                     domain: str | None = None) -> int:
        """Latency of a read — what ``rdcycle``-bracketed loads measure."""
        return self.access(core, paddr, is_write=False, domain=domain).latency

    @property
    def hit_threshold(self) -> int:
        """Latency below which an access certainly hit in some cache."""
        cfg = self.config
        return cfg.l1_latency + cfg.l2_latency + cfg.dram_latency // 2

    # -- maintenance operations -------------------------------------------------

    def flush_line(self, paddr: int) -> bool:
        """clflush semantics: evict the line from every level, every core."""
        found = False
        for l1 in self.l1s:
            found |= l1.flush_line(paddr)
        found |= self.l2.flush_line(paddr)
        return found

    def flush_core(self, core: int) -> int:
        """Flush one core's private L1 (enclave context-switch defence)."""
        return self.l1s[core].flush_all()

    def flush_domain(self, domain: str | None) -> int:
        """Flush a domain's lines from every level."""
        count = self.l2.flush_domain(domain)
        for l1 in self.l1s:
            count += l1.flush_domain(domain)
        return count

    def flush_all(self) -> int:
        """Cold-cache reset."""
        count = self.l2.flush_all()
        for l1 in self.l1s:
            count += l1.flush_all()
        return count

    # -- inspection -------------------------------------------------------------

    def present_in_l1(self, core: int, paddr: int) -> bool:
        return self.l1s[core].probe(paddr)

    def present_in_llc(self, paddr: int) -> bool:
        return self.l2.probe(paddr)

    def stats_summary(self) -> dict[str, float]:
        """Aggregate hit rates (used by the performance/energy model)."""
        summary = {"llc_hit_rate": self.l2.stats.hit_rate}
        for i, l1 in enumerate(self.l1s):
            summary[f"l1_core{i}_hit_rate"] = l1.stats.hit_rate
        return summary

    def metrics_into(self, registry) -> None:
        """Export every level's counters into a ``MetricsRegistry``.

        Absolute snapshots are fine here: one hierarchy is exported once,
        at the end of its cell's execution, into a fresh per-cell
        registry; the runner merges registries across cells by addition.
        """
        events = registry.counter(
            "repro_cache_events_total",
            "Cache hits / misses / evictions / flushes per level")
        rates = registry.gauge(
            "repro_cache_hit_rate",
            "Hit fraction per cache level")
        for cache in (*self.l1s, self.l2):
            stats = cache.stats
            for event, count in (("hit", stats.hits),
                                 ("miss", stats.misses),
                                 ("eviction", stats.evictions),
                                 ("flush", stats.flushes)):
                if count:
                    events.inc(count, level=cache.name, event=event)
            rates.set(stats.hit_rate, level=cache.name)
