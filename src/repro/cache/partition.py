"""Cache partitioning defences: way partitioning and page colouring.

Two of the hardware countermeasures the paper lists for software cache
side channels:

* **Way partitioning** ("some sort of cache partitioning" [39], DAWG-like):
  each security domain may only fill a disjoint subset of ways, so an
  attacker in one domain can never evict another domain's lines.
* **Page colouring** (Sanctum's LLC defence): the set-index bits above the
  page offset define a page *colour*; by giving an enclave physical frames
  of colours nobody else is allocated, its lines land in LLC sets the OS
  and other enclaves cannot touch.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.memory.paging import PAGE_SHIFT, PAGE_SIZE


class WayPartition:
    """Maps security domains to allowed way masks.

    Unassigned domains share the ``default_mask``.  Masks may deliberately
    overlap (a misconfiguration the tests exercise: overlap reintroduces
    the channel).
    """

    def __init__(self, ways: int, default_mask: int | None = None) -> None:
        if ways <= 0:
            raise ConfigurationError("ways must be positive")
        self.ways = ways
        self._full = (1 << ways) - 1
        self.default_mask = self._full if default_mask is None \
            else default_mask & self._full
        self._masks: dict[str, int] = {}

    def assign(self, domain: str, mask: int) -> None:
        """Restrict ``domain`` to the ways set in ``mask``."""
        mask &= self._full
        if mask == 0:
            raise ConfigurationError(f"domain {domain!r} assigned zero ways")
        self._masks[domain] = mask

    def mask_of(self, domain: str | None) -> int:
        if domain is None:
            return self.default_mask
        return self._masks.get(domain, self.default_mask)

    def allowed_ways(self, domain: str | None, ways: int) -> list[bool]:
        """Boolean allow-list per way, as the cache expects."""
        mask = self.mask_of(domain)
        return [bool(mask >> w & 1) for w in range(ways)]

    def isolated(self, domain_a: str, domain_b: str) -> bool:
        """True when the two domains' way masks are disjoint."""
        return not (self.mask_of(domain_a) & self.mask_of(domain_b))

    @classmethod
    def split_evenly(cls, ways: int, domains: list[str]) -> "WayPartition":
        """Partition ``ways`` ways evenly and disjointly across ``domains``."""
        if not domains:
            raise ConfigurationError("need at least one domain")
        if ways < len(domains):
            raise ConfigurationError(
                f"{ways} ways cannot host {len(domains)} disjoint domains")
        partition = cls(ways, default_mask=0)
        share = ways // len(domains)
        for i, domain in enumerate(domains):
            start = i * share
            width = share if i < len(domains) - 1 else ways - start
            partition.assign(domain, ((1 << width) - 1) << start)
        return partition


def color_of(paddr: int, num_sets: int, line_size: int = 64) -> int:
    """Page colour of a physical address for the given LLC geometry.

    The colour is the part of the set index contributed by address bits at
    or above :data:`PAGE_SHIFT` — the bits the OS/monitor controls through
    frame allocation.
    """
    sets_per_page = PAGE_SIZE // line_size
    num_colors = max(num_sets // sets_per_page, 1)
    return (paddr >> PAGE_SHIFT) % num_colors


def num_colors(num_sets: int, line_size: int = 64) -> int:
    """How many distinct page colours the LLC geometry offers."""
    sets_per_page = PAGE_SIZE // line_size
    return max(num_sets // sets_per_page, 1)


def frames_of_color(color: int, base: int, size: int, num_sets: int,
                    line_size: int = 64) -> list[int]:
    """All page-frame base addresses of ``color`` within ``[base, base+size)``.

    This is the allocator Sanctum's monitor uses: enclave frames come only
    from the enclave's reserved colours.
    """
    colors = num_colors(num_sets, line_size)
    if not 0 <= color < colors:
        raise ConfigurationError(f"color {color} out of range (<{colors})")
    frames = []
    first = base & ~(PAGE_SIZE - 1)
    if first < base:
        first += PAGE_SIZE
    addr = first
    while addr + PAGE_SIZE <= base + size:
        if color_of(addr, num_sets, line_size) == color:
            frames.append(addr)
        addr += PAGE_SIZE
    return frames
