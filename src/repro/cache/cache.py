"""Physically-indexed, physically-tagged set-associative cache."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.cache.policies import LRUPolicy, ReplacementPolicy

#: Signature for custom set-index functions (randomised mapping).
IndexFn = Callable[[int], int]


@dataclass
class CacheStats:
    """Running counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    set_index: int
    latency: int
    evicted: int | None = None  # line base address displaced by this fill
    filled: bool = True


@dataclass
class _Line:
    tag: int
    addr: int  # line base address (for eviction reporting / inclusion)
    domain: str | None = None
    dirty: bool = False


class Cache:
    """One cache level.

    Addresses are *physical*; the MMU translates before the hierarchy is
    consulted.  ``domain`` labels the security domain of each access
    (process, enclave id, world); a :class:`~repro.cache.partition.WayPartition`
    installed via :attr:`partition` limits which ways a domain may fill —
    the paper's "cache partitioning" defence [39].  ``index_fn`` overrides
    the set-index computation — the "randomised mapping" defence [40].
    """

    def __init__(self, name: str, num_sets: int, ways: int,
                 line_size: int = 64, hit_latency: int = 4,
                 policy_factory: Callable[[int], ReplacementPolicy] = LRUPolicy,
                 index_fn: IndexFn | None = None) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        if line_size & (line_size - 1):
            raise ValueError("line_size must be a power of two")
        self.name = name
        self.num_sets = num_sets
        self.ways = ways
        self.line_size = line_size
        self.hit_latency = hit_latency
        self.index_fn = index_fn
        self.partition = None  # WayPartition | None
        self.stats = CacheStats()
        self._sets: list[list[_Line | None]] = [
            [None] * ways for _ in range(num_sets)]
        #: Tag array mirroring ``_sets`` (``None`` = invalid way).  The hot
        #: lookup scans this flat int list with ``list.index`` instead of
        #: walking ``_Line`` objects.
        self._tags: list[list[int | None]] = [
            [None] * ways for _ in range(num_sets)]
        self._policies = [policy_factory(ways) for _ in range(num_sets)]
        # Hot-path allocation avoidance: per-set-index AccessResult
        # singletons (results are frozen, so sharing is safe even when a
        # caller holds several across calls), plus reusable all-True /
        # all-occupied vectors for the unpartitioned victim query.
        self._hit_results: list[AccessResult | None] = [None] * num_sets
        self._fill_results: list[AccessResult | None] = [None] * num_sets
        self._nofill_results: list[AccessResult | None] = [None] * num_sets
        self._allowed_all = [True] * ways
        self._occupied_full = [True] * ways
        self._victim_full = [getattr(p, "victim_full", None)
                             for p in self._policies]

    # -- geometry ------------------------------------------------------------

    def line_addr(self, addr: int) -> int:
        """Base address of the line containing ``addr``."""
        return addr & ~(self.line_size - 1)

    def set_index(self, addr: int) -> int:
        """Set index for ``addr`` (honouring a custom index function)."""
        line = addr // self.line_size
        if self.index_fn is not None:
            return self.index_fn(addr) % self.num_sets
        return line % self.num_sets

    def _tag(self, addr: int) -> int:
        return addr // self.line_size

    def _allowed_ways(self, domain: str | None) -> list[bool]:
        if self.partition is None:
            return [True] * self.ways
        return self.partition.allowed_ways(domain, self.ways)

    # -- operations ------------------------------------------------------------

    def access(self, addr: int, is_write: bool = False,
               domain: str | None = None, fill: bool = True) -> AccessResult:
        """Look up ``addr``; on miss, optionally fill (evicting a victim)."""
        tag = addr // self.line_size
        if self.index_fn is None:
            idx = tag % self.num_sets
        else:
            idx = self.index_fn(addr) % self.num_sets
        tags = self._tags[idx]
        policy = self._policies[idx]

        try:
            way = tags.index(tag)
        except ValueError:
            way = -1
        if way >= 0:
            self.stats.hits += 1
            policy.on_hit(way)
            if is_write:
                self._sets[idx][way].dirty = True
            result = self._hit_results[idx]
            if result is None:
                result = self._hit_results[idx] = AccessResult(
                    True, idx, self.hit_latency)
            return result

        self.stats.misses += 1
        if not fill:
            result = self._nofill_results[idx]
            if result is None:
                result = self._nofill_results[idx] = AccessResult(
                    False, idx, self.hit_latency, filled=False)
            return result

        ways = self._sets[idx]
        if self.partition is None:
            # Unpartitioned fast path: every policy prefers the first free
            # way (victim() returns _first_free when one exists), and with
            # all ways allowed that is exactly ``tags.index(None)``.
            try:
                way = tags.index(None)
            except ValueError:
                vf = self._victim_full[idx]
                way = vf() if vf is not None else policy.victim(
                    self._occupied_full, self._allowed_all)
        else:
            allowed = self.partition.allowed_ways(domain, self.ways)
            occupied = [t is not None for t in tags]
            way = policy.victim(occupied, allowed)
        old = ways[way]
        tags[way] = tag
        if old is None:
            ways[way] = _Line(tag=tag, addr=addr & ~(self.line_size - 1),
                              domain=domain, dirty=is_write)
            policy.on_fill(way)
            result = self._fill_results[idx]
            if result is None:
                result = self._fill_results[idx] = AccessResult(
                    False, idx, self.hit_latency)
            return result
        # Evicting fill: recycle the line record (never exposed outside
        # this class) instead of allocating a fresh one.
        evicted = old.addr
        old.tag = tag
        old.addr = addr & ~(self.line_size - 1)
        old.domain = domain
        old.dirty = is_write
        policy.on_fill(way)
        self.stats.evictions += 1
        return AccessResult(False, idx, self.hit_latency, evicted=evicted)

    def probe(self, addr: int) -> bool:
        """Presence check without touching replacement state."""
        return self._tag(addr) in self._tags[self.set_index(addr)]

    def flush_line(self, addr: int) -> bool:
        """Invalidate the line containing ``addr``; True if it was present."""
        idx = self.set_index(addr)
        tags = self._tags[idx]
        try:
            way = tags.index(self._tag(addr))
        except ValueError:
            return False
        self._sets[idx][way] = None
        tags[way] = None
        self.stats.flushes += 1
        return True

    def flush_all(self) -> int:
        """Invalidate everything; returns the number of lines dropped."""
        count = 0
        for ways, tags in zip(self._sets, self._tags):
            for way, line in enumerate(ways):
                if line is not None:
                    ways[way] = None
                    tags[way] = None
                    count += 1
        self.stats.flushes += count
        return count

    def flush_domain(self, domain: str | None) -> int:
        """Invalidate every line filled by ``domain`` (enclave exit flush)."""
        count = 0
        for ways, tags in zip(self._sets, self._tags):
            for way, line in enumerate(ways):
                if line is not None and line.domain == domain:
                    ways[way] = None
                    tags[way] = None
                    count += 1
        self.stats.flushes += count
        return count

    # -- inspection ------------------------------------------------------------

    def resident_lines(self) -> list[int]:
        """Base addresses of all valid lines (diagnostics/tests)."""
        return [line.addr for ways in self._sets for line in ways
                if line is not None]

    def set_occupancy(self, idx: int) -> int:
        """Number of valid lines in set ``idx``."""
        return sum(1 for line in self._sets[idx] if line is not None)

    def domain_of_line(self, addr: int) -> str | None:
        """Filling domain of the resident line containing ``addr``."""
        idx = self.set_index(addr)
        tag = self._tag(addr)
        for line in self._sets[idx]:
            if line is not None and line.tag == tag:
                return line.domain
        return None
