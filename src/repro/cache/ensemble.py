"""Struct-of-arrays mirror of :class:`~repro.cache.hierarchy.CacheHierarchy`.

The ensemble execution engine (:mod:`repro.cpu.ensemble`) advances N
independent ``(seed, config)`` SoC instances in lockstep.  Every scalar
hierarchy keeps its state in per-set Python lists (``Cache._tags``,
``LRUPolicy._last_use``), which is exactly the wrong layout for advancing
many instances at once — so this module *adopts* each instance's cache
state into padded numpy arrays indexed ``[instance, set, way]``, serves
vectorized accesses for whole groups of instances per step, and
*scatters* the arrays back into the original ``Cache``/``LRUPolicy``
objects so post-run state is indistinguishable from a scalar run.

Heterogeneous geometries (the matrix's platforms differ in sets, ways
and latencies) share one array set: arrays are padded to the largest
geometry in the ensemble, with sentinel tags that never match and never
look free, and sentinel LRU stamps that never win a victim election.

The bit-identity contract is the same one the fast core dispatch and the
batched power kernels are held to: after :meth:`scatter`, every counter
(hits/misses/evictions/flushes), every resident line, every dirty bit
and every per-set LRU stamp equals what the scalar path would have
produced.  Anything the arrays cannot represent exactly — way
partitions, custom index functions, non-LRU policies, LLC exclusions,
domain-tagged lines, warm L1s on non-running cores — is reported as
ineligible by :func:`adoption_blocker`, and the owning instance peels
off to the retained scalar path instead.
"""

from __future__ import annotations

import numpy as np

from repro.cache.cache import Cache, _Line
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.policies import LRUPolicy

#: Tag sentinel for an invalid (fillable) way.
_FREE = -1
#: Tag sentinel for a padding way that neither matches nor fills.
_PAD = -2
#: LRU stamp for padding ways: loses every victim election.
_PAD_STAMP = 1 << 62


def _cache_blocker(cache: Cache) -> str | None:
    """Why ``cache`` cannot be adopted into arrays (``None`` = adoptable)."""
    if type(cache) is not Cache:
        return f"cache subclass {type(cache).__name__}"
    if cache.partition is not None:
        return "way partition installed"
    if cache.index_fn is not None:
        return "custom index function"
    if any(type(p) is not LRUPolicy for p in cache._policies):
        return "non-LRU replacement policy"
    if cache.num_sets & (cache.num_sets - 1):
        return "non-power-of-two set count"
    for ways in cache._sets:
        for line in ways:
            if line is not None and line.domain is not None:
                return "domain-tagged resident line"
    return None


def adoption_blocker(hierarchy: CacheHierarchy, core_id: int) -> str | None:
    """Why ``hierarchy`` cannot be adopted for ``core_id`` (``None`` = ok).

    Non-running cores' L1s must be empty: the vectorized path models only
    the running core's private cache, which is exact *because* an empty
    L1 can never hit, fill, or lose a line to inclusive back-invalidation
    while its core is idle.
    """
    if type(hierarchy) is not CacheHierarchy:
        return f"hierarchy subclass {type(hierarchy).__name__}"
    if hierarchy._llc_excluded:
        return "LLC exclusion ranges configured"
    if not (0 <= core_id < len(hierarchy.l1s)):
        return f"no L1 for core {core_id}"
    for idx, l1 in enumerate(hierarchy.l1s):
        if idx == core_id:
            continue
        if any(t is not None for row in l1._tags for t in row):
            return f"non-running core {idx} has a warm L1"
    for cache in (hierarchy.l1s[core_id], hierarchy.l2):
        reason = _cache_blocker(cache)
        if reason is not None:
            return f"{cache.name}: {reason}"
    return None


class _LevelArrays:
    """One cache level across all managed instances, padded SoA form."""

    def __init__(self, n: int, max_sets: int, max_ways: int) -> None:
        self.tags = np.full((n, max_sets, max_ways), _PAD, dtype=np.int64)
        self.lu = np.full((n, max_sets, max_ways), _PAD_STAMP,
                          dtype=np.int64)
        self.stamp = np.zeros((n, max_sets), dtype=np.int64)
        self.dirty = np.zeros((n, max_sets, max_ways), dtype=bool)
        self.sets = np.ones(n, dtype=np.int64)
        #: ``sets - 1``: scalar ``Cache`` set counts are powers of two
        #: (validated in :meth:`adopt`), so ``tag & set_mask`` is the
        #: scalar ``tag % num_sets`` index function.
        self.set_mask = np.zeros(n, dtype=np.int64)
        self.ways = np.ones(n, dtype=np.int64)
        self.hits = np.zeros(n, dtype=np.int64)
        self.misses = np.zeros(n, dtype=np.int64)
        self.evictions = np.zeros(n, dtype=np.int64)
        self.flushes = np.zeros(n, dtype=np.int64)

    def adopt(self, i: int, cache: Cache) -> None:
        s, w = cache.num_sets, cache.ways
        self.sets[i], self.ways[i] = s, w
        self.set_mask[i] = s - 1
        stats = cache.stats
        # Lines enter only through access misses and replacement stamps
        # only move on hits/fills, so a cache that has never hit or
        # missed is empty with virgin policy state — skip the per-line
        # walk (the common adopt-at-construction case).
        cold = (stats.hits == 0 and stats.misses == 0
                and all(p._stamp == 0 for p in cache._policies))
        self.tags[i, :s, :w] = _FREE
        self.lu[i, :s, :w] = 0
        self.stamp[i, :s] = 0
        self.dirty[i, :s, :w] = False
        if not cold:
            self.tags[i, :s, :w] = [
                [_FREE if t is None else t for t in row]
                for row in cache._tags]
            self.lu[i, :s, :w] = [p._last_use for p in cache._policies]
            self.stamp[i, :s] = [p._stamp for p in cache._policies]
            self.dirty[i, :s, :w] = [
                [line is not None and line.dirty for line in ways]
                for ways in cache._sets]
        self.hits[i] = stats.hits
        self.misses[i] = stats.misses
        self.evictions[i] = stats.evictions
        self.flushes[i] = stats.flushes

    def scatter(self, i: int, cache: Cache, line_size: int) -> None:
        s, w = cache.num_sets, cache.ways
        # One bulk tolist per array: native Python ints/bools, exactly
        # what the scalar objects store, without per-element numpy boxing.
        tags = self.tags[i, :s, :w].tolist()
        dirty = self.dirty[i, :s, :w].tolist()
        lu = self.lu[i, :s, :w].tolist()
        stamp = self.stamp[i, :s].tolist()
        for idx in range(s):
            trow = tags[idx]
            cache._tags[idx] = [
                None if t == _FREE else t for t in trow]
            cache._sets[idx] = [
                None if t == _FREE else _Line(
                    tag=t, addr=t * line_size, domain=None, dirty=d)
                for t, d in zip(trow, dirty[idx])]
            policy = cache._policies[idx]
            policy._stamp = stamp[idx]
            policy._last_use = lu[idx]
        stats = cache.stats
        stats.hits = int(self.hits[i])
        stats.misses = int(self.misses[i])
        stats.evictions = int(self.evictions[i])
        stats.flushes = int(self.flushes[i])

    def lookup(self, rows: np.ndarray, tag: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-row set index, hit mask, and hit way for ``tag``."""
        idx = tag & self.set_mask[rows]
        eq = self.tags[rows, idx] == tag[:, None]
        return idx, eq.any(axis=1), np.argmax(eq, axis=1)

    def touch(self, rows: np.ndarray, idx: np.ndarray, way: np.ndarray,
              is_write: bool) -> None:
        """``on_hit`` semantics: bump the per-set stamp, refresh the way."""
        self.stamp[rows, idx] += 1
        self.lu[rows, idx, way] = self.stamp[rows, idx]
        if is_write:
            self.dirty[rows, idx, way] = True

    def fill(self, rows: np.ndarray, idx: np.ndarray, tag: np.ndarray,
             is_write: bool) -> np.ndarray:
        """Fill ``tag`` per scalar victim selection; returns the evicted
        tag per row (``_FREE`` where the chosen way was empty).

        Matches ``Cache.access`` exactly: first invalid way when one
        exists (``tags.index(None)``), else the LRU way with the first
        minimal stamp (``LRUPolicy.victim_full``); the fill then counts
        as a use (``on_fill`` == ``on_hit``).
        """
        set_tags = self.tags[rows, idx]
        free = set_tags == _FREE
        way = np.where(free.any(axis=1), np.argmax(free, axis=1),
                       np.argmin(self.lu[rows, idx], axis=1))
        old = set_tags[np.arange(len(rows)), way]
        self.evictions[rows[old >= 0]] += 1
        self.tags[rows, idx, way] = tag
        self.dirty[rows, idx, way] = is_write
        self.touch(rows, idx, way, is_write=False)
        return old

    def invalidate(self, rows: np.ndarray, tag: np.ndarray) -> np.ndarray:
        """``flush_line`` semantics; returns the mask of rows that held
        the line (replacement state is deliberately left untouched,
        exactly as the scalar flush does)."""
        idx, present, way = self.lookup(rows, tag)
        hr = present
        self.tags[rows[hr], idx[hr], way[hr]] = _FREE
        self.flushes[rows[hr]] += 1
        return present


class HierarchyEnsemble:
    """N cache hierarchies advanced by vectorized per-group operations.

    ``hierarchies[i]`` and ``core_ids[i]`` describe instance ``i``;
    instances whose hierarchy reports an :func:`adoption_blocker` are
    left unmanaged (``managed[i]`` False) — the core ensemble peels them
    to the scalar path and never routes their accesses here.
    """

    def __init__(self, hierarchies: list[CacheHierarchy],
                 core_ids: list[int]) -> None:
        if len(hierarchies) != len(core_ids):
            raise ValueError("one core_id per hierarchy required")
        n = len(hierarchies)
        self._hierarchies = list(hierarchies)
        self._core_ids = list(core_ids)
        self.managed = np.zeros(n, dtype=bool)
        self.blockers: list[str | None] = [None] * n

        adoptable = []
        for i, (h, core_id) in enumerate(zip(hierarchies, core_ids)):
            reason = adoption_blocker(h, core_id)
            self.blockers[i] = reason
            if reason is None:
                adoptable.append(i)
                self.managed[i] = True

        def dim(fn, default=1):
            vals = [fn(self._hierarchies[i]) for i in adoptable]
            return max(vals) if vals else default

        self.l1 = _LevelArrays(
            n, dim(lambda h: h.l1s[0].num_sets),
            dim(lambda h: max(c.ways for c in h.l1s)))
        self.l2 = _LevelArrays(n, dim(lambda h: h.l2.num_sets),
                               dim(lambda h: h.l2.ways))
        self.line_shift = np.full(n, 6, dtype=np.int64)
        self.lat_l1 = np.zeros(n, dtype=np.int64)
        self.lat_l1_l2 = np.zeros(n, dtype=np.int64)
        self.lat_full = np.zeros(n, dtype=np.int64)
        self.lat_l2 = np.zeros(n, dtype=np.int64)

        for i in adoptable:
            h = self._hierarchies[i]
            cfg = h.config
            if cfg.line_size & (cfg.line_size - 1):
                raise ValueError("line_size must be a power of two")
            self.line_shift[i] = cfg.line_size.bit_length() - 1
            self.lat_l1[i] = cfg.l1_latency
            self.lat_l1_l2[i] = cfg.l1_latency + cfg.l2_latency
            self.lat_full[i] = (cfg.l1_latency + cfg.l2_latency
                                + cfg.dram_latency)
            self.lat_l2[i] = cfg.l2_latency
            self.l1.adopt(i, h.l1s[self._core_ids[i]])
            self.l2.adopt(i, h.l2)

    # -- vectorized operations ------------------------------------------------

    def access(self, rows: np.ndarray, addrs: np.ndarray,
               is_write: bool) -> np.ndarray:
        """Serve one cacheable access per row; returns latencies.

        Mirrors ``CacheHierarchy.access`` step for step: L1 lookup/fill,
        then LLC lookup/fill for L1 misses, then inclusive
        back-invalidation of the running core's L1 when the LLC evicts
        (every other L1 is empty by the adoption contract, so the scalar
        loop over ``self.l1s`` degenerates to exactly this).
        """
        tag = addrs >> self.line_shift[rows]
        latency = np.empty(len(rows), dtype=np.int64)

        idx, hit, way = self.l1.lookup(rows, tag)
        hr = rows[hit]
        self.l1.hits[hr] += 1
        self.l1.touch(hr, idx[hit], way[hit], is_write)
        latency[hit] = self.lat_l1[hr]

        miss = ~hit
        mrows, mtag, midx = rows[miss], tag[miss], idx[miss]
        if mrows.size == 0:
            return latency
        self.l1.misses[mrows] += 1
        self.l1.fill(mrows, midx, mtag, is_write)

        idx2, hit2, way2 = self.l2.lookup(mrows, mtag)
        h2 = mrows[hit2]
        self.l2.hits[h2] += 1
        self.l2.touch(h2, idx2[hit2], way2[hit2], is_write)

        miss2 = ~hit2
        drows = mrows[miss2]
        if drows.size:
            self.l2.misses[drows] += 1
            evicted = self.l2.fill(drows, idx2[miss2], mtag[miss2],
                                   is_write)
            er = evicted >= 0
            if er.any():
                # Inclusive LLC: its victim leaves the (only warm) L1 too.
                brows, btag = drows[er], evicted[er]
                bidx = btag & self.l1.set_mask[brows]
                beq = self.l1.tags[brows, bidx] == btag[:, None]
                bhit = beq.any(axis=1)
                bway = np.argmax(beq, axis=1)
                self.l1.tags[brows[bhit], bidx[bhit], bway[bhit]] = _FREE
                self.l1.flushes[brows[bhit]] += 1

        lat_miss = np.where(hit2, self.lat_l1_l2[mrows],
                            self.lat_full[mrows])
        latency[miss] = lat_miss
        return latency

    def flush_line(self, rows: np.ndarray, addrs: np.ndarray) -> None:
        """clflush per row: drop the line from the running L1 and the
        LLC (idle cores' L1s are empty, so the scalar sweep over them is
        a no-op)."""
        tag = addrs >> self.line_shift[rows]
        self.l1.invalidate(rows, tag)
        self.l2.invalidate(rows, tag)

    # -- scatter back ---------------------------------------------------------

    def scatter_instance(self, i: int) -> None:
        """Write instance ``i``'s arrays back into its scalar objects."""
        if not self.managed[i]:
            return
        h = self._hierarchies[i]
        line_size = h.config.line_size
        self.l1.scatter(i, h.l1s[self._core_ids[i]], line_size)
        self.l2.scatter(i, h.l2, line_size)

    def scatter(self) -> None:
        for i in range(len(self._hierarchies)):
            self.scatter_instance(i)
