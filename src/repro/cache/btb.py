"""Branch Target Buffer.

Two properties drive the attacks built on this structure:

* **Virtual-address indexing, no domain tag** (the commodity-CPU default
  the paper cites via [21]): entries are matched purely on branch PC bits,
  so an attacker that places a branch at an aliasing virtual address in
  *its own* process mistrains the victim's prediction — Spectre v2.
* **Observability**: entry presence/absence is a timing signal (predicted
  vs mispredicted branches), exploited by branch shadowing [28] to infer
  which way an enclave's branch went.

Setting ``tag_with_asid=True`` models the mitigated design (per-context
tagging, as in DAWG-style isolation) and makes cross-address-space
mistraining fail — one of the toggle points the transient-attack bench
sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class _BTBEntry:
    partial_tag: int
    asid: int
    target: int
    stamp: int


class BranchTargetBuffer:
    """Set-associative BTB keyed on low PC bits with a *partial* tag.

    The partial tag (``tag_bits`` wide) is what makes aliasing possible:
    two different branch addresses with equal index and partial tag are
    indistinguishable, exactly the collision Spectre v2 engineering relies
    on.  :meth:`aliasing_pc` constructs such a collision for a given
    victim branch.
    """

    def __init__(self, num_sets: int = 64, ways: int = 4, tag_bits: int = 8,
                 tag_with_asid: bool = False) -> None:
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        self.num_sets = num_sets
        self.ways = ways
        self.tag_bits = tag_bits
        self.tag_with_asid = tag_with_asid
        self._sets: list[list[_BTBEntry | None]] = [
            [None] * ways for _ in range(num_sets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.num_sets - 1)

    def _partial_tag(self, pc: int) -> int:
        index_bits = self.num_sets.bit_length() - 1
        return (pc >> (2 + index_bits)) & ((1 << self.tag_bits) - 1)

    def _matches(self, entry: _BTBEntry, pc: int, asid: int) -> bool:
        if entry.partial_tag != self._partial_tag(pc):
            return False
        return not self.tag_with_asid or entry.asid == asid

    def predict(self, pc: int, asid: int = 0) -> int | None:
        """Predicted target for a branch at ``pc``, or None (no entry)."""
        entries = self._sets[self._index(pc)]
        for entry in entries:
            if entry is not None and self._matches(entry, pc, asid):
                self._stamp += 1
                entry.stamp = self._stamp
                self.hits += 1
                return entry.target
        self.misses += 1
        return None

    def update(self, pc: int, target: int, asid: int = 0) -> None:
        """Record that the branch at ``pc`` went to ``target``."""
        entries = self._sets[self._index(pc)]
        self._stamp += 1
        for way, entry in enumerate(entries):
            if entry is not None and self._matches(entry, pc, asid):
                entries[way] = _BTBEntry(self._partial_tag(pc), asid, target,
                                         self._stamp)
                return
        for way, entry in enumerate(entries):
            if entry is None:
                entries[way] = _BTBEntry(self._partial_tag(pc), asid, target,
                                         self._stamp)
                return
        victim = min(range(self.ways), key=lambda w: entries[w].stamp)
        entries[victim] = _BTBEntry(self._partial_tag(pc), asid, target,
                                    self._stamp)

    def evict(self, pc: int, asid: int = 0) -> bool:
        """Drop the entry matching ``pc`` (branch-shadowing reset step)."""
        entries = self._sets[self._index(pc)]
        for way, entry in enumerate(entries):
            if entry is not None and self._matches(entry, pc, asid):
                entries[way] = None
                return True
        return False

    def flush(self) -> int:
        """Drop all entries; returns the count (context-switch mitigation)."""
        count = 0
        for entries in self._sets:
            for way, entry in enumerate(entries):
                if entry is not None:
                    entries[way] = None
                    count += 1
        return count

    def contains(self, pc: int, asid: int = 0) -> bool:
        """Presence probe without updating recency."""
        return any(entry is not None and self._matches(entry, pc, asid)
                   for entry in self._sets[self._index(pc)])

    def aliasing_pc(self, victim_pc: int, attacker_base: int) -> int:
        """An attacker-space PC that collides with ``victim_pc`` in the BTB.

        Returns the smallest PC >= ``attacker_base`` with the same set index
        and partial tag — the address where Spectre v2 places its training
        branch.
        """
        index_bits = self.num_sets.bit_length() - 1
        period = 1 << (2 + index_bits + self.tag_bits)
        low = victim_pc % period
        candidate = (attacker_base - low + period - 1) // period * period + low
        return candidate
