"""Stable seed derivation for experiment cells.

Python's builtin ``hash()`` on strings is salted per process
(``PYTHONHASHSEED``), so ``seed ^ hash(platform)`` — the scheme this
module replaces — produced a *different* RNG stream in every interpreter.
Cells must instead derive their seed from a cryptographic digest of their
coordinates: the same ``(seed, platform, category)`` triple yields the
same stream in any process, on any machine, in any run order.
"""

from __future__ import annotations

import hashlib


def derive_seed(*parts: object) -> int:
    """A 64-bit seed from the SHA-256 of ``":"``-joined ``parts``.

    Parts are stringified, so enums should be passed as their ``.value``.
    Returns a non-zero value (xorshift state must not be all-zero).
    """
    material = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") or 1


def derive_cell_seed(seed: int, platform: str, category: str) -> int:
    """Seed for one ``(platform, category)`` cell of the evaluation grid.

    Exactly ``sha256(f"{seed}:{platform}:{category}")`` truncated to 64
    bits — each cell gets an independent stream, so reordering cells or
    adding a category cannot perturb any other cell's measurement.
    """
    return derive_seed(seed, platform, category)
