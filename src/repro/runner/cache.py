"""Content-addressed on-disk cache for cell results.

Entries are keyed by the SHA-256 of the cell's full input description —
package version, knobs, seed, platform, category — so a hit can only ever
return the payload that cell would recompute.  Bumping
``repro.__version__`` therefore invalidates every entry implicitly;
:meth:`ResultCache.clear` invalidates explicitly.

The cache is deliberately forgiving, and crash-safe by construction:

* :meth:`ResultCache.put` writes to a uniquely named ``*.tmp`` file in
  the cache root, fsyncs it, and ``os.replace``\\ s it into place — a
  run SIGKILLed mid-write leaves at worst an ignorable temp file, never
  a torn ``*.json`` entry a later run could trust;
* a truncated or hand-edited entry is discarded (and deleted) rather
  than allowed to poison a run, and an optional ``validator`` lets the
  caller reject entries that parse but whose *contents* are wrong (the
  runner passes its payload-integrity check);
* leftover temp files from killed runs are swept opportunistically.
"""

from __future__ import annotations

import json
import os
from itertools import count
from pathlib import Path
from typing import Callable

#: Per-process counter making concurrent same-key writers collision-free.
_TMP_COUNTER = count()


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/cells``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "cells"


class ResultCache:
    """One JSON file per cell under ``root``, named by content key.

    ``validator``, when given, is applied to every parsed payload; an
    entry it rejects is quarantined (deleted and counted in
    ``corrupt_discarded``) exactly like unparseable JSON.
    """

    def __init__(self, root: str | Path | None = None,
                 validator: Callable[[dict], bool] | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.validator = validator
        #: Entries discarded because they could not be parsed or trusted.
        self.corrupt_discarded = 0
        #: Orphaned temp files from killed runs removed by :meth:`sweep`.
        self.stale_tmp_removed = 0
        #: Optional telemetry hook ``(event, key)`` with event one of
        #: ``"hit" | "miss" | "quarantine" | "put"``; the runner points
        #: it at its observer.  Must never raise into cache operations.
        self.on_event: Callable[[str, str], None] | None = None

    def _emit(self, event: str, key: str) -> None:
        if self.on_event is not None:
            self.on_event(event, key)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached payload, or ``None`` on miss *or* corruption."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache payload must be an object")
            if self.validator is not None and not self.validator(payload):
                raise ValueError("cache payload failed validation")
        except (ValueError, TypeError):
            self.quarantine(key)
            return None
        return payload

    def quarantine(self, key: str) -> None:
        """Discard an entry that parsed but cannot be trusted."""
        self.corrupt_discarded += 1
        self._emit("quarantine", key)
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def put(self, key: str, payload: dict) -> None:
        """Crash-safely persist ``payload``.

        The temp file lives in the cache root (same filesystem, so the
        final ``os.replace`` is atomic) under a unique non-``.json``
        name, and is fsynced before the rename: a SIGKILL at any point
        leaves either the old entry, the new entry, or an orphaned temp
        file — never a torn ``*.json``.  An unwritable cache (root
        shadowed by a file, permissions, disk full) degrades to no
        memoisation — it must never abort the measurement run that
        produced the payload.
        """
        tmp: Path | None = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.path_for(key)
            tmp = self.root / (f"{key}.{os.getpid()}."
                               f"{next(_TMP_COUNTER)}.tmp")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                os.write(fd, json.dumps(payload,
                                        sort_keys=True).encode("utf-8"))
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, path)
        except OSError:
            if tmp is not None:
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def sweep(self) -> int:
        """Remove orphaned ``*.tmp`` files left by killed writers.

        Only this process's *own* stale files are certainly dead; other
        pids' temp files could belong to a live concurrent run, so only
        files that have stopped changing (any existing ``*.tmp`` here,
        since writers replace within milliseconds) are collected.  Safe
        to call any time; returns how many were removed.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*.tmp"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.stale_tmp_removed += removed
        return removed

    def clear(self) -> int:
        """Explicit invalidation: delete all entries, return the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        self.sweep()
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
