"""Content-addressed on-disk cache for cell results.

Entries are keyed by the SHA-256 of the cell's full input description —
package version, knobs, seed, platform, category — so a hit can only ever
return the payload that cell would recompute.  Bumping
``repro.__version__`` therefore invalidates every entry implicitly;
:meth:`ResultCache.clear` invalidates explicitly.

The cache is deliberately forgiving, and crash-safe by construction:

* :meth:`ResultCache.put` writes to a uniquely named ``*.tmp`` file in
  the cache root, fsyncs it, and ``os.replace``\\ s it into place — a
  run SIGKILLed mid-write leaves at worst an ignorable temp file, never
  a torn ``*.json`` entry a later run could trust;
* a truncated or hand-edited entry is discarded (and deleted) rather
  than allowed to poison a run, and an optional ``validator`` lets the
  caller reject entries that parse but whose *contents* are wrong (the
  runner passes its payload-integrity check);
* leftover temp files from killed runs are swept opportunistically.
"""

from __future__ import annotations

import json
import os
import re
import socket
import time
from itertools import count
from pathlib import Path
from typing import Callable

#: Per-process counter making concurrent same-key writers collision-free.
_TMP_COUNTER = count()

#: Per-process random nonce: with the cache root on a *shared*
#: filesystem, hostname+pid alone is not unique — two hosts can run the
#: same pid, and pid reuse after a crash could collide with a dead
#: writer's orphan.  The nonce survives ``fork`` (the child's pid
#: changes, which restores uniqueness) and makes writer tags
#: collision-free across hosts and across time.
_WRITER_NONCE = os.urandom(4).hex()

#: Seconds a *foreign* writer's temp file must sit untouched before
#: :meth:`ResultCache.sweep` treats it as a dead host's orphan.  Live
#: writers replace their temp file within milliseconds, so anything
#: older by minutes is wreckage; anything younger could be a concurrent
#: host's in-flight write and must be left alone.
DEFAULT_TMP_GRACE_S = 120.0


def writer_tag() -> str:
    """This process's globally distinguishable cache-writer identity."""
    host = re.sub(r"[^A-Za-z0-9-]", "-", socket.gethostname()) or "host"
    return f"{host}-{os.getpid()}-{_WRITER_NONCE}"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/cells``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "cells"


class ResultCache:
    """One JSON file per cell under ``root``, named by content key.

    ``validator``, when given, is applied to every parsed payload; an
    entry it rejects is quarantined (deleted and counted in
    ``corrupt_discarded``) exactly like unparseable JSON.
    """

    def __init__(self, root: str | Path | None = None,
                 validator: Callable[[dict], bool] | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.validator = validator
        #: Entries discarded because they could not be parsed or trusted.
        self.corrupt_discarded = 0
        #: Orphaned temp files from killed runs removed by :meth:`sweep`.
        self.stale_tmp_removed = 0
        #: Optional telemetry hook ``(event, key)`` with event one of
        #: ``"hit" | "miss" | "quarantine" | "put"``; the runner points
        #: it at its observer.  Must never raise into cache operations.
        self.on_event: Callable[[str, str], None] | None = None

    def _emit(self, event: str, key: str) -> None:
        if self.on_event is not None:
            self.on_event(event, key)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached payload, or ``None`` on miss *or* corruption."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache payload must be an object")
            if self.validator is not None and not self.validator(payload):
                raise ValueError("cache payload failed validation")
        except (ValueError, TypeError):
            self.quarantine(key)
            return None
        return payload

    def quarantine(self, key: str) -> None:
        """Discard an entry that parsed but cannot be trusted."""
        self.corrupt_discarded += 1
        self._emit("quarantine", key)
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def put(self, key: str, payload: dict) -> None:
        """Crash-safely persist ``payload``.

        The temp file lives in the cache root (same filesystem, so the
        final ``os.replace`` is atomic) under a unique non-``.json``
        name, and is fsynced before the rename: a SIGKILL at any point
        leaves either the old entry, the new entry, or an orphaned temp
        file — never a torn ``*.json``.  The temp name embeds
        :func:`writer_tag` (hostname + pid + per-process nonce), so on
        a cache directory *shared between hosts* two writers racing on
        one key can never collide on the temp file either — last
        ``os.replace`` wins and both renames install an intact entry.
        An unwritable cache (root shadowed by a file, permissions, disk
        full) degrades to no memoisation — it must never abort the
        measurement run that produced the payload.
        """
        tmp: Path | None = None
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.path_for(key)
            tmp = self.root / (f"{key}.{writer_tag()}."
                               f"{next(_TMP_COUNTER)}.tmp")
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                os.write(fd, json.dumps(payload,
                                        sort_keys=True).encode("utf-8"))
                os.fsync(fd)
            finally:
                os.close(fd)
            os.replace(tmp, path)
        except OSError:
            if tmp is not None:
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def sweep(self, grace_s: float = DEFAULT_TMP_GRACE_S) -> int:
        """Remove orphaned ``*.tmp`` files left by *dead* writers.

        This process's own temp files (matched by :func:`writer_tag` in
        the name) are always wreckage — the writer either replaced or
        unlinked them inline — and are reaped immediately.  A *foreign*
        temp file could belong to a live writer on another host
        mid-``put``, so it is only reaped once its mtime is older than
        ``grace_s`` (writers replace within milliseconds; a dead host's
        orphan only ever ages).  ``grace_s=0`` restores the take-
        everything behaviour for single-host cleanup like
        :meth:`clear`.  Safe to call any time; returns how many were
        removed.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        own_marker = f".{writer_tag()}."
        now = time.time()
        for path in self.root.glob("*.tmp"):
            if own_marker not in path.name and grace_s > 0:
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age < grace_s:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.stale_tmp_removed += removed
        return removed

    def clear(self) -> int:
        """Explicit invalidation: delete all entries, return the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        self.sweep(grace_s=0.0)
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
