"""Content-addressed on-disk cache for cell results.

Entries are keyed by the SHA-256 of the cell's full input description —
package version, knobs, seed, platform, category — so a hit can only ever
return the payload that cell would recompute.  Bumping
``repro.__version__`` therefore invalidates every entry implicitly;
:meth:`ResultCache.clear` invalidates explicitly.

The cache is deliberately forgiving: a truncated or hand-edited entry is
discarded (and deleted) rather than allowed to poison a run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/cells``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "cells"


class ResultCache:
    """One JSON file per cell under ``root``, named by content key."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        #: Entries discarded because they could not be parsed.
        self.corrupt_discarded = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached payload, or ``None`` on miss *or* corruption."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache payload must be an object")
        except (ValueError, TypeError):
            self.corrupt_discarded += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` (write-to-temp, then rename).

        An unwritable cache (root shadowed by a file, permissions, disk
        full) degrades to no memoisation — it must never abort the
        measurement run that produced the payload.
        """
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.path_for(key)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(payload, sort_keys=True),
                           encoding="utf-8")
            os.replace(tmp, path)
        except OSError:
            pass

    def clear(self) -> int:
        """Explicit invalidation: delete all entries, return the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
