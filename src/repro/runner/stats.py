"""Measured metadata of one runner invocation."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunnerStats:
    """What one :class:`~repro.runner.engine.ExperimentRunner.run` cost.

    ``cell_times`` maps ``(platform, category)`` to the wall time of the
    cell's execution *inside its worker*; ``wall_time_s`` is the caller's
    end-to-end wall time; the gap between ``busy_time_s`` spread over
    ``jobs`` workers and the elapsed wall time is ``worker_utilisation``.
    """

    jobs: int = 1
    mode: str = "serial"
    cache_hits: int = 0
    cache_misses: int = 0
    corrupt_entries: int = 0
    wall_time_s: float = 0.0
    cell_times: dict[tuple[str, str], float] = field(default_factory=dict)

    @property
    def cells_total(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cells_executed(self) -> int:
        return len(self.cell_times)

    @property
    def busy_time_s(self) -> float:
        return sum(self.cell_times.values())

    @property
    def worker_utilisation(self) -> float:
        """Fraction of available worker-seconds spent inside cells."""
        if self.wall_time_s <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(self.busy_time_s / (self.wall_time_s * self.jobs), 1.0)

    @property
    def hit_rate(self) -> float:
        if self.cells_total == 0:
            return 0.0
        return self.cache_hits / self.cells_total

    def slowest_cells(self, count: int = 3) -> list[tuple[str, str, float]]:
        ranked = sorted(self.cell_times.items(), key=lambda kv: -kv[1])
        return [(platform, category, seconds)
                for (platform, category), seconds in ranked[:count]]

    def summary(self) -> str:
        """One human-readable block for CLI / benchmark output."""
        lines = [
            f"runner: mode={self.mode} jobs={self.jobs} "
            f"wall={self.wall_time_s:.2f}s "
            f"utilisation={self.worker_utilisation:.0%}",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses"
            + (f" ({self.corrupt_entries} corrupt discarded)"
               if self.corrupt_entries else ""),
        ]
        if self.cell_times:
            slow = ", ".join(f"{p}/{c} {t:.2f}s"
                             for p, c, t in self.slowest_cells())
            lines.append(f"slowest cells: {slow}")
        return "\n".join(lines)
