"""Measured metadata of one runner invocation."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunnerStats:
    """What one :class:`~repro.runner.engine.ExperimentRunner.run` cost.

    ``cell_times`` maps ``(platform, category)`` to the wall time of the
    cell's execution *inside its worker*; ``wall_time_s`` is the caller's
    end-to-end wall time; the gap between ``busy_time_s`` spread over
    ``jobs`` workers and the elapsed wall time is ``worker_utilisation``.
    """

    jobs: int = 1
    mode: str = "serial"
    cache_hits: int = 0
    cache_misses: int = 0
    corrupt_entries: int = 0
    wall_time_s: float = 0.0
    cell_times: dict[tuple[str, str], float] = field(default_factory=dict)
    #: Simulated instructions retired per executed cell (all cores).
    cell_instrets: dict[tuple[str, str], int] = field(default_factory=dict)

    @property
    def cells_total(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cells_executed(self) -> int:
        return len(self.cell_times)

    @property
    def busy_time_s(self) -> float:
        return sum(self.cell_times.values())

    @property
    def worker_utilisation(self) -> float:
        """Fraction of available worker-seconds spent inside cells."""
        if self.wall_time_s <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(self.busy_time_s / (self.wall_time_s * self.jobs), 1.0)

    @property
    def hit_rate(self) -> float:
        if self.cells_total == 0:
            return 0.0
        return self.cache_hits / self.cells_total

    @property
    def instructions_total(self) -> int:
        return sum(self.cell_instrets.values())

    @property
    def instructions_per_s(self) -> float:
        """Simulated instructions retired per busy worker-second."""
        if self.busy_time_s <= 0.0:
            return 0.0
        return self.instructions_total / self.busy_time_s

    def slowest_cells(self, count: int = 3) -> list[tuple[str, str, float]]:
        ranked = sorted(self.cell_times.items(), key=lambda kv: -kv[1])
        return [(platform, category, seconds)
                for (platform, category), seconds in ranked[:count]]

    def summary(self) -> str:
        """One human-readable block for CLI / benchmark output."""
        lines = [
            f"runner: mode={self.mode} jobs={self.jobs} "
            f"wall={self.wall_time_s:.2f}s "
            f"utilisation={self.worker_utilisation:.0%}",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses"
            + (f" ({self.corrupt_entries} corrupt discarded)"
               if self.corrupt_entries else ""),
        ]
        if self.cell_times:
            slow = ", ".join(f"{p}/{c} {t:.2f}s"
                             for p, c, t in self.slowest_cells())
            lines.append(f"slowest cells: {slow}")
        return "\n".join(lines)

    def profile(self) -> str:
        """Per-cell profile table: wall time and simulated throughput.

        Only cells *executed* this run appear — cache hits cost no
        simulation and carry no timings.  The throughput column is the
        engine-speed figure the micro-benchmarks track (``make bench``).
        """
        if not self.cell_times:
            return "profile: no cells executed (all served from cache)"
        header = f"{'cell':<38} {'wall':>9} {'instret':>10} {'instr/s':>12}"
        lines = ["profile (executed cells, slowest first):", header]
        ranked = sorted(self.cell_times.items(), key=lambda kv: -kv[1])
        for (platform, category), seconds in ranked:
            instret = self.cell_instrets.get((platform, category), 0)
            rate = instret / seconds if seconds > 0 else 0.0
            lines.append(f"{platform + '/' + category:<38} "
                         f"{seconds * 1e3:>7.1f}ms {instret:>10} "
                         f"{rate:>12,.0f}")
        lines.append(f"{'total':<38} {self.busy_time_s * 1e3:>7.1f}ms "
                     f"{self.instructions_total:>10} "
                     f"{self.instructions_per_s:>12,.0f}")
        return "\n".join(lines)
