"""Measured metadata of one runner invocation."""

from __future__ import annotations

from dataclasses import dataclass, field

#: The full outcome taxonomy, in "healthiest first" display order.
OUTCOME_STATUSES = ("ok", "ok-after-retry", "degraded-to-serial",
                    "timed-out", "failed")


@dataclass(frozen=True)
class CellOutcome:
    """How one cell's execution ended, structurally.

    ``status`` is one of :data:`OUTCOME_STATUSES`:

    * ``"ok"`` — first attempt succeeded (or the payload came from
      cache, in which case ``attempts`` is 0);
    * ``"ok-after-retry"`` — succeeded, but only after ≥1 retry;
    * ``"degraded-to-serial"`` — succeeded, but in the parent process
      after the worker pool was abandoned;
    * ``"timed-out"`` — every permitted attempt exceeded the per-cell
      timeout; no payload exists;
    * ``"failed"`` — every permitted attempt raised, crashed its
      worker, or returned a corrupt payload; no payload exists.

    ``attempts`` counts executions (0 = pure cache hit); ``error`` holds
    the last failure's description for the unhealthy statuses.
    """

    status: str
    attempts: int = 1
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether a trustworthy payload exists for this cell."""
        return self.status in ("ok", "ok-after-retry", "degraded-to-serial")

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)

    def label(self) -> str:
        """Compact rendering for tables: ``ok``, ``ok-after-retry(2)``."""
        if self.retries:
            return f"{self.status}({self.attempts})"
        return self.status


@dataclass
class RunnerStats:
    """What one :class:`~repro.runner.engine.ExperimentRunner.run` cost.

    ``cell_times`` maps ``(platform, category)`` to the wall time of the
    cell's execution *inside its worker*; ``wall_time_s`` is the caller's
    end-to-end wall time; the gap between ``busy_time_s`` spread over
    ``jobs`` workers and the elapsed wall time is ``worker_utilisation``.
    ``outcomes`` carries one :class:`CellOutcome` per requested cell —
    including the failed ones, which have no ``cell_times`` entry.
    """

    jobs: int = 1
    mode: str = "serial"
    cache_hits: int = 0
    cache_misses: int = 0
    corrupt_entries: int = 0
    wall_time_s: float = 0.0
    cell_times: dict[tuple[str, str], float] = field(default_factory=dict)
    #: Simulated instructions retired per executed cell (all cores).
    cell_instrets: dict[tuple[str, str], int] = field(default_factory=dict)
    #: Structured per-cell outcome (ok / retried / timed-out / failed ...).
    outcomes: dict[tuple[str, str], CellOutcome] = field(default_factory=dict)
    #: Queue-to-outcome duration per cell as seen by the caller — unlike
    #: ``cell_times`` this includes queueing, retries and backoff sleeps.
    cell_spans: dict[tuple[str, str], float] = field(default_factory=dict)
    #: Worker pools torn down and rebuilt (hang or crash recovery).
    pool_rebuilds: int = 0

    @property
    def cells_total(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def cells_executed(self) -> int:
        return len(self.cell_times)

    @property
    def cells_failed(self) -> int:
        return sum(1 for o in self.outcomes.values() if not o.ok)

    @property
    def cells_retried(self) -> int:
        return sum(1 for o in self.outcomes.values()
                   if o.ok and o.retries > 0)

    @property
    def retries_total(self) -> int:
        return sum(o.retries for o in self.outcomes.values())

    @property
    def busy_time_s(self) -> float:
        return sum(self.cell_times.values())

    @property
    def worker_utilisation(self) -> float:
        """Fraction of available worker-seconds spent inside cells."""
        if self.wall_time_s <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(self.busy_time_s / (self.wall_time_s * self.jobs), 1.0)

    @property
    def hit_rate(self) -> float:
        if self.cells_total == 0:
            return 0.0
        return self.cache_hits / self.cells_total

    @property
    def instructions_total(self) -> int:
        return sum(self.cell_instrets.values())

    @property
    def instructions_per_s(self) -> float:
        """Simulated instructions retired per busy worker-second."""
        if self.busy_time_s <= 0.0:
            return 0.0
        return self.instructions_total / self.busy_time_s

    def failed_cells(self) -> list[tuple[str, str, CellOutcome]]:
        """The cells without a trustworthy payload, with their outcomes."""
        return [(platform, category, outcome)
                for (platform, category), outcome in sorted(
                    self.outcomes.items())
                if not outcome.ok]

    def slowest_cells(self, count: int = 3) -> list[tuple[str, str, float]]:
        ranked = sorted(self.cell_times.items(), key=lambda kv: -kv[1])
        return [(platform, category, seconds)
                for (platform, category), seconds in ranked[:count]]

    def summary(self) -> str:
        """One human-readable block for CLI / benchmark output."""
        lines = [
            f"runner: mode={self.mode} jobs={self.jobs} "
            f"wall={self.wall_time_s:.2f}s "
            f"utilisation={self.worker_utilisation:.0%}",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses"
            + (f" ({self.corrupt_entries} corrupt discarded)"
               if self.corrupt_entries else ""),
        ]
        if self.retries_total or self.cells_failed or self.pool_rebuilds:
            lines.append(
                f"faults: {self.cells_failed} cells failed, "
                f"{self.cells_retried} recovered by retry "
                f"({self.retries_total} retries), "
                f"{self.pool_rebuilds} pool rebuilds")
        for platform, category, outcome in self.failed_cells():
            lines.append(f"  not evaluated: {platform}/{category} "
                         f"[{outcome.label()}] {outcome.error or ''}".rstrip())
        if self.cell_times:
            slow = ", ".join(f"{p}/{c} {t:.2f}s"
                             for p, c, t in self.slowest_cells())
            lines.append(f"slowest cells: {slow}")
        return "\n".join(lines)

    def profile(self) -> str:
        """Per-cell profile table: wall time, span, throughput, outcome.

        Executed cells rank by wall time; cells that never produced a
        payload (timed out / failed) follow, so a flaky or dead cell is
        visible at a glance rather than silently absent.  ``wall`` is the
        in-worker execution time, ``span`` the caller-side queue-to-
        outcome duration (queueing + retries + backoff); a large gap
        between the two is the runner's overhead, not the engine's.  The
        throughput column is the engine-speed figure the
        micro-benchmarks track (``make bench``).  The cell column is
        sized to the longest cell name so wide matrices keep every
        column aligned.
        """
        if not self.cell_times and not self.cells_failed:
            return "profile: no cells executed (all served from cache)"
        cells = set(self.cell_times) | set(self.outcomes)
        names = [f"{platform}/{category}" for platform, category in cells]
        width = max([38] + [len(name) for name in names])

        def span_col(cell: tuple[str, str]) -> str:
            seconds = self.cell_spans.get(cell)
            if seconds is None:
                return f"{'-':>9}"
            return f"{seconds * 1e3:>7.1f}ms"

        header = (f"{'cell':<{width}} {'wall':>9} {'span':>9} "
                  f"{'instret':>10} {'instr/s':>12}  outcome")
        lines = ["profile (executed cells, slowest first):", header]
        ranked = sorted(self.cell_times.items(), key=lambda kv: -kv[1])
        for (platform, category), seconds in ranked:
            instret = self.cell_instrets.get((platform, category), 0)
            rate = instret / seconds if seconds > 0 else 0.0
            outcome = self.outcomes.get((platform, category))
            lines.append(f"{platform + '/' + category:<{width}} "
                         f"{seconds * 1e3:>7.1f}ms "
                         f"{span_col((platform, category))} "
                         f"{instret:>10} {rate:>12,.0f}  "
                         f"{outcome.label() if outcome else 'ok'}")
        for platform, category, outcome in self.failed_cells():
            lines.append(f"{platform + '/' + category:<{width}} "
                         f"{'-':>9} {span_col((platform, category))} "
                         f"{'-':>10} {'-':>12}  "
                         f"{outcome.label()}")
        lines.append(f"{'total':<{width}} {self.busy_time_s * 1e3:>7.1f}ms "
                     f"{sum(self.cell_spans.values()) * 1e3:>7.1f}ms "
                     f"{self.instructions_total:>10} "
                     f"{self.instructions_per_s:>12,.0f}")
        return "\n".join(lines)
