"""The experiment engine: deterministic cells, fanned out and memoised.

A :class:`CellSpec` names one unit of measurement — a ``(platform,
category)`` attack cell or a platform's reference workload — by plain
picklable values only.  :func:`execute_spec` turns a spec into a payload
dict and is a *pure function* of the spec: the SoC is rebuilt from the
platform's registered factory and the RNG is derived from the spec's
coordinates, so any process computes the same payload.  That purity is
what makes both layers above it sound:

* :class:`ExperimentRunner` fans pending specs out over a
  ``ProcessPoolExecutor`` (serial fallback when pools are unavailable)
  and memoises payloads in a :class:`~repro.runner.cache.ResultCache`
  keyed by :func:`cache_key_for`;
* every run's cost is recorded in a fresh
  :class:`~repro.runner.stats.RunnerStats` exposed as ``runner.stats``.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pickle import PicklingError
from typing import Callable, Iterable, Sequence

from repro.runner.cache import ResultCache
from repro.runner.seeding import derive_cell_seed
from repro.runner.stats import RunnerStats

#: Pseudo-category for the per-platform reference-workload measurement.
WORKLOAD_CATEGORY = "workload"


@dataclass(frozen=True)
class CellSpec:
    """Complete, picklable description of one cell's inputs.

    ``platform`` and ``category`` are enum *values* (strings), not enum
    members, so the spec pickles compactly and hashes stably; ``knobs``
    is the canonical tuple form from ``MatrixKnobs.as_key()``.
    """

    seed: int
    platform: str
    category: str
    knobs: tuple[tuple[str, int], ...] = ()


def cache_key_for(spec: CellSpec, version: str | None = None) -> str:
    """Content address of a cell: SHA-256 over the full input description.

    The package version participates in the key, so upgrading the
    simulator implicitly invalidates every cached measurement.
    """
    if version is None:
        import repro
        version = repro.__version__
    material = json.dumps({
        "version": version,
        "seed": spec.seed,
        "platform": spec.platform,
        "category": spec.category,
        "knobs": [list(pair) for pair in spec.knobs],
    }, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def execute_spec(spec: CellSpec) -> dict:
    """Compute one cell; importable by reference from worker processes.

    Imports are deferred so that importing :mod:`repro.runner` stays
    cheap and free of circular imports with :mod:`repro.core`.
    """
    from repro.arch.null import NullArchitecture
    from repro.attacks.base import AttackCategory
    from repro.attacks.suites import SUITES, MatrixKnobs
    from repro.common import PlatformClass
    from repro.core.platforms import reference_workload
    from repro.cpu.soc import soc_factory_for
    from repro.crypto.rng import XorShiftRNG
    from repro.runner.serialize import attack_result_to_dict, workload_to_dict

    start = time.perf_counter()
    platform = PlatformClass(spec.platform)
    soc = soc_factory_for(platform)()
    if spec.category == WORKLOAD_CATEGORY:
        payload = {"kind": WORKLOAD_CATEGORY,
                   "workload": workload_to_dict(reference_workload(soc))}
    else:
        category = AttackCategory(spec.category)
        arch = NullArchitecture(soc, platform)
        rng = XorShiftRNG(derive_cell_seed(spec.seed, spec.platform,
                                           spec.category))
        knobs = MatrixKnobs.from_key(spec.knobs)
        results = SUITES[category](arch, rng, knobs)
        payload = {"kind": "attacks",
                   "attacks": [attack_result_to_dict(r) for r in results]}
    payload["cell_wall_time_s"] = time.perf_counter() - start
    payload["cell_instret"] = sum(core.instret for core in soc.cores)
    return payload


def parallel_map(fn: Callable, items: Iterable,
                 jobs: int = 1) -> tuple[list, str]:
    """``[fn(x) for x in items]``, fanned over processes when asked.

    Returns ``(results, mode)`` with ``mode`` one of ``"serial"``,
    ``"process-pool"`` or ``"serial-fallback"``.  Only pool
    *infrastructure* failures (no fork permitted, broken pool, pickling
    refusal) trigger the fallback; an exception raised by ``fn`` itself
    propagates — a failing experiment must fail loudly, not quietly
    rerun.
    """
    items = list(items)
    if jobs > 1 and len(items) > 1:
        try:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(items))) as pool:
                return list(pool.map(fn, items)), "process-pool"
        except (OSError, ImportError, BrokenProcessPool, PicklingError):
            pass
    mode = "serial-fallback" if jobs > 1 and len(items) > 1 else "serial"
    return [fn(item) for item in items], mode


class ExperimentRunner:
    """Cache-aware, optionally parallel executor for cell specs.

    ``jobs`` is the worker-process count (1 = in-process serial);
    ``cache`` is a :class:`ResultCache` or ``None`` to disable
    memoisation.  Each :meth:`run` replaces :attr:`stats` with that
    run's measurements.
    """

    def __init__(self, jobs: int = 1,
                 cache: ResultCache | None = None) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.stats = RunnerStats(jobs=self.jobs)

    def run(self, specs: Sequence[CellSpec]) -> dict[CellSpec, dict]:
        specs = list(specs)
        stats = RunnerStats(jobs=self.jobs)
        start = time.perf_counter()
        corrupt_before = (self.cache.corrupt_discarded
                          if self.cache else 0)

        results: dict[CellSpec, dict] = {}
        pending: list[CellSpec] = []
        for spec in specs:
            payload = (self.cache.get(cache_key_for(spec))
                       if self.cache else None)
            if payload is not None:
                stats.cache_hits += 1
                results[spec] = payload
            else:
                pending.append(spec)
        stats.cache_misses = len(pending)

        if pending:
            payloads, stats.mode = parallel_map(execute_spec, pending,
                                                self.jobs)
            for spec, payload in zip(pending, payloads):
                results[spec] = payload
                stats.cell_times[(spec.platform, spec.category)] = \
                    payload.get("cell_wall_time_s", 0.0)
                stats.cell_instrets[(spec.platform, spec.category)] = \
                    payload.get("cell_instret", 0)
                if self.cache is not None:
                    self.cache.put(cache_key_for(spec), payload)

        if self.cache is not None:
            stats.corrupt_entries = \
                self.cache.corrupt_discarded - corrupt_before
        stats.wall_time_s = time.perf_counter() - start
        self.stats = stats
        return results
