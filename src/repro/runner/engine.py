"""The experiment engine: deterministic cells, supervised and memoised.

A :class:`CellSpec` names one unit of measurement — a ``(platform,
category)`` attack cell or a platform's reference workload — by plain
picklable values only.  :func:`execute_spec` turns a spec into a payload
dict and is a *pure function* of the spec: the SoC is rebuilt from the
platform's registered factory and the RNG is derived from the spec's
coordinates, so any process computes the same payload.  That purity is
what makes both layers above it sound:

* :class:`ExperimentRunner` fans pending specs out over a supervised
  ``ProcessPoolExecutor`` — per-cell timeouts, hung-worker replacement,
  ``BrokenProcessPool`` recovery, capped deterministic-jitter retries —
  and memoises payloads in a :class:`~repro.runner.cache.ResultCache`
  keyed by :func:`cache_key_for`;
* every run's cost and per-cell
  :class:`~repro.runner.stats.CellOutcome` are recorded in a fresh
  :class:`~repro.runner.stats.RunnerStats` exposed as ``runner.stats``.

Payloads carry a content digest (:func:`payload_fingerprint`, stored
under :data:`INTEGRITY_KEY`) over their deterministic fields, so a
corrupted worker return or torn cache entry is *detected* rather than
trusted — the property the chaos suite (``make chaos``) attacks.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import nullcontext
from dataclasses import dataclass
from pickle import PicklingError
from typing import Callable, Iterable, Sequence

from repro.errors import (
    CellExecutionError,
    CellTimeoutError,
    PayloadCorruptionError,
)
from repro.obs.observer import (
    CELL_METRICS_KEY,
    NULL_OBSERVER,
    SPANS_KEY,
    RunObserver,
)
from repro.runner.cache import ResultCache
from repro.runner.chaos import ChaosConfig, chaos_execute_spec
from repro.runner.retry import RetryPolicy
from repro.runner.seeding import derive_cell_seed
from repro.runner.stats import CellOutcome, RunnerStats

#: Pseudo-category for the per-platform reference-workload measurement.
WORKLOAD_CATEGORY = "workload"

#: Pseudo-category for Spectre-scanner cells (repro.spec): ``platform``
#: carries a scan-config name instead of a PlatformClass value.
SCAN_CATEGORY = "spec-scan"

#: Default per-cell wall-clock budget before a worker counts as hung.
DEFAULT_TIMEOUT_S = 120.0

#: Payload key holding the integrity digest over deterministic fields.
INTEGRITY_KEY = "payload_sha256"

#: Payload fields that legitimately vary between identical reruns and are
#: therefore excluded from the integrity digest.  The telemetry keys are
#: excluded so an *observed* run computes the same fingerprint as an
#: unobserved one — observation must never invalidate (or fork) the
#: cache, and the chaos suite's byte-identity guarantees must hold with
#: tracing on.
VOLATILE_KEYS = frozenset({"cell_wall_time_s", SPANS_KEY,
                           CELL_METRICS_KEY})


@dataclass(frozen=True)
class CellSpec:
    """Complete, picklable description of one cell's inputs.

    ``platform`` and ``category`` are enum *values* (strings), not enum
    members, so the spec pickles compactly and hashes stably; ``knobs``
    is the canonical tuple form from ``MatrixKnobs.as_key()``.
    """

    seed: int
    platform: str
    category: str
    knobs: tuple[tuple[str, int], ...] = ()


def cache_key_for(spec: CellSpec, version: str | None = None) -> str:
    """Content address of a cell: SHA-256 over the full input description.

    The package version participates in the key, so upgrading the
    simulator implicitly invalidates every cached measurement.
    """
    if version is None:
        import repro
        version = repro.__version__
    material = json.dumps({
        "version": version,
        "seed": spec.seed,
        "platform": spec.platform,
        "category": spec.category,
        "knobs": [list(pair) for pair in spec.knobs],
    }, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def payload_fingerprint(payload: dict) -> str:
    """SHA-256 over the payload's deterministic content.

    Volatile fields (per-run wall times) and the digest itself are
    excluded, so the fingerprint is identical for any two honest
    computations of the same spec — the "byte-identical payload"
    property the robustness tests assert.  ``json.dumps`` canonicalises
    (tuples and lists serialise identically, keys sort), so the value
    survives both the pickle and the on-disk JSON boundary.
    """
    stable = {k: v for k, v in payload.items()
              if k not in VOLATILE_KEYS and k != INTEGRITY_KEY}
    return hashlib.sha256(
        json.dumps(stable, sort_keys=True).encode("utf-8")).hexdigest()


def payload_intact(payload: object) -> bool:
    """Whether a payload carries a matching integrity digest."""
    if not isinstance(payload, dict):
        return False
    digest = payload.get(INTEGRITY_KEY)
    if not isinstance(digest, str):
        return False
    try:
        return digest == payload_fingerprint(payload)
    except (TypeError, ValueError):
        return False


def execute_spec(spec: CellSpec, collect: bool = False,
                 ensemble: bool = False, batch: bool = False,
                 memo: bool = False) -> dict:
    """Compute one cell; importable by reference from worker processes.

    ``collect`` turns on in-cell telemetry: a per-cell
    :class:`~repro.obs.tracer.Tracer` (IDs derived from the cell seed)
    is activated around the suite so attack-phase spans are recorded, a
    :class:`~repro.obs.metrics.MetricsRegistry` is attached to every
    core (``Core.run`` flushes instructions/cycles/energy into it) and
    fed the cache-hierarchy hit rates, and both land in the payload
    under volatile keys — the payload fingerprint is unchanged, so
    observed and unobserved runs share cache entries.

    ``ensemble`` routes the workload cell's kernel calibration sweep
    through the struct-of-arrays :class:`~repro.cpu.ensemble.CoreEnsemble`
    instead of the scalar per-core loop.  Like ``collect`` it is an
    *execution strategy*, not a measurement input: the sweep summary —
    and therefore the payload and its fingerprint — is bit-identical
    either way (the differential suite proves it), so ensemble and
    scalar runs legitimately share cache entries and manifests.

    ``batch`` is the attack-cell counterpart: suites that take it route
    their hot attacks (cache SCA probing, Kocher timing) through the
    batched kernels of :mod:`repro.attacks.batch`, which are
    bit-identical to the scalar attacks (recovered keys, scores, RNG
    end states, SoC state) with automatic scalar fallback — payload
    fingerprints are unchanged, so ``batch`` runs share cache entries
    with scalar runs too.

    ``memo`` is the scan-cell strategy knob: scan cells route through
    the memoized exploration engine (:mod:`repro.spec.memo`), which
    dedups the fork frontier and replays window-parametric excursion
    recordings across the grid.  Rows and ``cell_instret`` are
    byte-identical to the reference path (the explore-diff harness and
    differential suite prove it), so memoized and reference scan cells
    share cache entries.

    Imports are deferred so that importing :mod:`repro.runner` stays
    cheap and free of circular imports with :mod:`repro.core`.
    """
    if spec.category == SCAN_CATEGORY:
        # Spectre-scanner cells: spec.platform names a scan config, not a
        # PlatformClass, so they branch off before platform resolution.
        # The sweep is pure analysis (no RNG), so the payload inherits the
        # full integrity/caching machinery with no extra seeding.
        from repro.spec.scanner import execute_scan_cell
        start = time.perf_counter()
        payload = execute_scan_cell(spec, memo=True) if memo \
            else execute_scan_cell(spec)
        payload["cell_wall_time_s"] = time.perf_counter() - start
        payload[INTEGRITY_KEY] = payload_fingerprint(payload)
        return payload

    import repro.obs as obs
    from repro.arch.null import NullArchitecture
    from repro.attacks.base import AttackCategory
    from repro.attacks.suites import SUITES, MatrixKnobs
    from repro.common import PlatformClass, accepts_keyword
    from repro.core.platforms import reference_workload
    from repro.core.sweep import run_kernel_sweep
    from repro.cpu.soc import soc_factory_for
    from repro.crypto.rng import XorShiftRNG
    from repro.runner.serialize import attack_result_to_dict, workload_to_dict

    coords = f"{spec.platform}/{spec.category}"
    tracer = obs.Tracer(scope=coords, seed=derive_cell_seed(
        spec.seed, spec.platform, spec.category)) if collect else None
    registry = obs.MetricsRegistry() if collect else None

    start = time.perf_counter()
    platform = PlatformClass(spec.platform)
    soc = soc_factory_for(platform)()
    if registry is not None:
        for core in soc.cores:
            core.metrics = registry
    with obs.activate(tracer) if collect else nullcontext():
        with obs.span(f"cell:{coords}", cat="cell", seed=spec.seed):
            if spec.category == WORKLOAD_CATEGORY:
                knobs = MatrixKnobs.from_key(spec.knobs)
                sweep = run_kernel_sweep(
                    platform, derive_cell_seed(spec.seed, spec.platform,
                                               spec.category),
                    knobs.sweep_instances, knobs.sweep_iters,
                    ensemble=ensemble)
                # The execution strategy is not part of the measurement:
                # dropping the flag keeps scalar and ensemble payload
                # fingerprints equal (the determinism check CI runs).
                sweep.pop("ensemble", None)
                payload = {
                    "kind": WORKLOAD_CATEGORY,
                    "workload": workload_to_dict(reference_workload(soc)),
                    "sweep": sweep}
            else:
                category = AttackCategory(spec.category)
                arch = NullArchitecture(soc, platform)
                rng = XorShiftRNG(derive_cell_seed(spec.seed, spec.platform,
                                                   spec.category))
                knobs = MatrixKnobs.from_key(spec.knobs)
                suite = SUITES[category]
                if batch and accepts_keyword(suite, "batch"):
                    # Keyword only when set: suites without the knob
                    # (and monkeypatched three-arg stand-ins) keep the
                    # exact historical call shape.
                    results = suite(arch, rng, knobs, batch=True)
                else:
                    results = suite(arch, rng, knobs)
                payload = {
                    "kind": "attacks",
                    "attacks": [attack_result_to_dict(r) for r in results]}
    payload["cell_instret"] = sum(core.instret for core in soc.cores)
    payload["cell_wall_time_s"] = time.perf_counter() - start
    if collect:
        for core in soc.cores:
            core.flush_metrics()
        soc.hierarchy.metrics_into(registry)
        payload[SPANS_KEY] = tracer.export_records()
        payload[CELL_METRICS_KEY] = registry.to_json()
    payload[INTEGRITY_KEY] = payload_fingerprint(payload)
    return payload


@dataclass(frozen=True)
class CellTask:
    """One execution attempt of one cell, as shipped to a worker.

    ``collect`` asks the worker to gather in-cell telemetry (span
    records, core/cache metric snapshots) into the payload's volatile
    keys; it is only set when the runner's observer wants them.
    ``ensemble`` picks the vectorized sweep path, ``batch`` the batched
    attack kernels, and ``memo`` the memoized scan explorer — all
    bit-identical to their reference paths, so they change nothing but
    speed.
    """

    spec: CellSpec
    attempt: int = 0
    chaos: ChaosConfig | None = None
    collect: bool = False
    ensemble: bool = False
    batch: bool = False
    memo: bool = False


def execute_task(task: CellTask) -> tuple[str, object]:
    """Worker entry point: compute the task's cell, never raise.

    Returns a tagged pair — ``("ok", payload)`` or ``("err",
    description)`` — so a cell's own exception travels back as a
    *result* and can never be conflated with pool-infrastructure
    failure (which surfaces as the future's exception instead).
    """
    try:
        # Strategy flags ride as keywords only when set: the bare
        # ``execute_spec(spec)`` call keeps the exact historical shape
        # (tests monkeypatch one-arg stand-ins).
        flags = {}
        if task.collect:
            flags["collect"] = True
        if task.ensemble:
            flags["ensemble"] = True
        if task.batch:
            flags["batch"] = True
        if task.memo:
            flags["memo"] = True
        if task.chaos is not None:
            payload = chaos_execute_spec(task.spec, task.attempt,
                                         task.chaos, in_worker=True,
                                         **flags)
        else:
            payload = execute_spec(task.spec, **flags)
        return ("ok", payload)
    except BaseException as exc:  # noqa: BLE001 — the tag is the contract
        return ("err", f"{type(exc).__name__}: {exc}")


@dataclass(frozen=True)
class _Wrapped:
    """Picklable wrapper making worker exceptions travel as results.

    Used by :func:`parallel_map`: without it, an ``OSError`` raised *by
    the mapped function* inside a worker is indistinguishable from pool
    infrastructure dying, and would wrongly trigger the serial rerun.
    """

    fn: Callable

    def __call__(self, item):
        try:
            return ("ok", self.fn(item))
        except Exception as exc:  # noqa: BLE001 — re-raised by the parent
            return ("err", exc)


def parallel_map(fn: Callable, items: Iterable,
                 jobs: int = 1) -> tuple[list, str]:
    """``[fn(x) for x in items]``, fanned over processes when asked.

    Returns ``(results, mode)`` with ``mode`` one of ``"serial"``,
    ``"process-pool"`` or ``"serial-fallback"``.  Only pool
    *infrastructure* failures (no fork permitted, broken pool, pickling
    refusal) trigger the fallback; an exception raised by ``fn`` itself
    propagates — even from inside a worker, thanks to the tagged-result
    wrapping — because a failing experiment must fail loudly, not
    quietly rerun.
    """
    items = list(items)
    if jobs > 1 and len(items) > 1:
        outcomes = None
        try:
            with ProcessPoolExecutor(
                    max_workers=min(jobs, len(items))) as pool:
                outcomes = list(pool.map(_Wrapped(fn), items))
        except (OSError, ImportError, BrokenProcessPool, PicklingError):
            pass
        if outcomes is not None:
            results = []
            for tag, value in outcomes:
                if tag == "err":
                    raise value
                results.append(value)
            return results, "process-pool"
    mode = "serial-fallback" if jobs > 1 and len(items) > 1 else "serial"
    return [fn(item) for item in items], mode


class _CellFailure(Exception):
    """Internal: one attempt's failure, normalised to (cause, detail)."""

    def __init__(self, cause: str, detail: str) -> None:
        super().__init__(detail)
        self.cause = cause
        self.detail = detail


class ExperimentRunner:
    """Supervised, cache-aware, optionally parallel executor for specs.

    ``jobs`` is the worker-process count (1 = in-process serial);
    ``cache`` is a :class:`ResultCache` or ``None`` to disable
    memoisation; ``timeout_s`` bounds one attempt's wall time inside a
    worker (``None`` disables hang detection); ``retry`` caps how often
    a failing cell is re-run, with deterministic-jitter backoff;
    ``chaos`` injects harness faults (tests only, or ``--chaos``);
    ``fail_fast`` restores the historical abort-on-first-error
    behaviour instead of degrading failed cells to structured outcomes;
    ``ensemble`` runs each workload cell's kernel sweep through the
    struct-of-arrays engine, ``batch`` the attack cells through the
    batched attack kernels, and ``memo`` the scan cells through the
    memoized exploration engine (all bit-identical payloads, faster
    wall time).

    Each :meth:`run` replaces :attr:`stats` with that run's
    measurements, including one
    :class:`~repro.runner.stats.CellOutcome` per requested cell.
    """

    def __init__(self, jobs: int = 1,
                 cache: ResultCache | None = None,
                 timeout_s: float | None = DEFAULT_TIMEOUT_S,
                 retry: RetryPolicy | None = None,
                 chaos: ChaosConfig | None = None,
                 fail_fast: bool = False,
                 observer: RunObserver | None = None,
                 ensemble: bool = False,
                 batch: bool = False,
                 memo: bool = False) -> None:
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.timeout_s = timeout_s if timeout_s and timeout_s > 0 else None
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos
        self.fail_fast = fail_fast
        self.ensemble = bool(ensemble)
        self.batch = bool(batch)
        self.memo = bool(memo)
        #: Lifecycle hook surface; the default no-op observer keeps the
        #: fast path at its unobserved cost (one call per cell edge).
        self.observer = observer if observer is not None else NULL_OBSERVER
        self._collect = bool(getattr(self.observer, "wants_cell_spans",
                                     False))
        if self.cache is not None:
            self.cache.on_event = self._cache_event
        self.stats = RunnerStats(jobs=self.jobs)
        #: Per-spec queue-to-outcome start times for the current run.
        self._span_start: dict[CellSpec, float] = {}

    def _cache_event(self, event: str, key: str) -> None:
        """Forward cache-internal events (quarantines) to the observer."""
        if event == "quarantine":
            self.observer.on_cache_quarantine(key)

    # -- public entry ----------------------------------------------------------

    def run(self, specs: Sequence[CellSpec]) -> dict[CellSpec, dict]:
        """Execute all ``specs``; return payloads for the cells that
        produced one.  Cells whose every attempt failed are *absent*
        from the result and carry a non-``ok``
        :class:`~repro.runner.stats.CellOutcome` in :attr:`stats`
        (unless ``fail_fast``, which re-raises instead)."""
        specs = list(specs)
        stats = RunnerStats(jobs=self.jobs)
        start = time.perf_counter()
        corrupt_before = (self.cache.corrupt_discarded
                          if self.cache else 0)
        observer = self.observer
        observer.on_run_start(specs)

        results: dict[CellSpec, dict] = {}
        pending: list[CellSpec] = []
        self._span_start = {}
        for spec in specs:
            payload = self._cached_payload(spec)
            if payload is not None:
                stats.cache_hits += 1
                results[spec] = payload
                stats.outcomes[(spec.platform, spec.category)] = \
                    CellOutcome(status="ok", attempts=0)
                observer.on_cache_hit(spec)
                observer.on_cell_end(spec, "ok", 0, payload)
            else:
                pending.append(spec)
                observer.on_cache_miss(spec)
        stats.cache_misses = len(pending)
        now = time.perf_counter()
        for spec in pending:
            self._span_start[spec] = now

        try:
            if pending:
                if self.jobs > 1 and len(pending) > 1:
                    self._run_supervised(pending, results, stats)
                else:
                    stats.mode = "serial"
                    self._run_serial(pending, results, stats,
                                     degraded=False)
        finally:
            if self.cache is not None:
                stats.corrupt_entries = \
                    self.cache.corrupt_discarded - corrupt_before
            stats.wall_time_s = time.perf_counter() - start
            self.stats = stats
            observer.on_run_end(stats)
        return results

    # -- cache -----------------------------------------------------------------

    def _cached_payload(self, spec: CellSpec) -> dict | None:
        """A trustworthy cached payload, or ``None``.

        The integrity digest is re-verified here even when the cache has
        no validator of its own, so a tampered entry that still parses
        as JSON is quarantined rather than believed.
        """
        if self.cache is None:
            return None
        key = cache_key_for(spec)
        payload = self.cache.get(key)
        if payload is None:
            return None
        if not payload_intact(payload):
            self.cache.quarantine(key)
            return None
        return payload

    def _cell_span_s(self, spec: CellSpec) -> float:
        """Queue-to-outcome duration of a cell in this run (seconds)."""
        started = self._span_start.get(spec)
        return time.perf_counter() - started if started is not None else 0.0

    def _record_success(self, spec: CellSpec, attempt: int, payload: dict,
                        results: dict, stats: RunnerStats,
                        degraded: bool) -> None:
        results[spec] = payload
        coords = (spec.platform, spec.category)
        stats.cell_times[coords] = payload.get("cell_wall_time_s", 0.0)
        stats.cell_instrets[coords] = payload.get("cell_instret", 0)
        stats.cell_spans[coords] = self._cell_span_s(spec)
        if degraded:
            status = "degraded-to-serial"
        else:
            status = "ok" if attempt == 0 else "ok-after-retry"
        stats.outcomes[coords] = CellOutcome(status=status,
                                             attempts=attempt + 1)
        self.observer.on_cell_end(spec, status, attempt + 1, payload)
        if self.cache is not None:
            self.cache.put(cache_key_for(spec), payload)

    def _record_failure(self, spec: CellSpec, attempts: int, cause: str,
                        detail: str, stats: RunnerStats) -> None:
        if self.fail_fast:
            if cause == "timed-out":
                raise CellTimeoutError(spec.platform, spec.category,
                                       attempts, self.timeout_s or 0.0)
            if cause == "corrupt-payload":
                raise PayloadCorruptionError(
                    f"cell {spec.platform}/{spec.category}: {detail}")
            raise CellExecutionError(spec.platform, spec.category,
                                     attempts, cause, detail)
        status = "timed-out" if cause == "timed-out" else "failed"
        coords = (spec.platform, spec.category)
        stats.cell_spans[coords] = self._cell_span_s(spec)
        stats.outcomes[coords] = CellOutcome(
            status=status, attempts=attempts,
            error=f"{cause}: {detail}" if detail else cause)
        self.observer.on_cell_end(spec, status, attempts, None)

    # -- serial path -----------------------------------------------------------

    def _attempt_in_process(self, spec: CellSpec, attempt: int) -> dict:
        """One in-parent-process attempt; raises :class:`_CellFailure`."""
        self.observer.on_cell_start(spec, attempt)
        try:
            # Keyword flags only when set, preserving the historical
            # bare ``execute_spec(spec)`` shape for monkeypatched
            # one-arg stand-ins (see ``execute_task``).
            flags = {}
            if self._collect:
                flags["collect"] = True
            if self.ensemble:
                flags["ensemble"] = True
            if self.batch:
                flags["batch"] = True
            if self.memo:
                flags["memo"] = True
            if self.chaos is not None:
                payload = chaos_execute_spec(spec, attempt, self.chaos,
                                             in_worker=False, **flags)
            else:
                payload = execute_spec(spec, **flags)
        except Exception as exc:
            if self.fail_fast:
                raise  # the historical behaviour: the cell's error, verbatim
            raise _CellFailure("raised",
                               f"{type(exc).__name__}: {exc}") from exc
        if not payload_intact(payload):
            raise _CellFailure("corrupt-payload",
                               "integrity digest mismatch")
        return payload

    def _run_serial(self, pending: Sequence[CellSpec], results: dict,
                    stats: RunnerStats, degraded: bool) -> None:
        for spec in pending:
            failure: _CellFailure | None = None
            for attempt in range(self.retry.max_attempts):
                if attempt:
                    delay = self.retry.delay_s(
                        spec.seed, spec.platform, spec.category, attempt)
                    self.observer.on_retry(spec, attempt,
                                           failure.cause if failure
                                           else "unknown", delay)
                    time.sleep(delay)
                try:
                    payload = self._attempt_in_process(spec, attempt)
                except _CellFailure as exc:
                    failure = exc
                    if self.fail_fast:
                        break
                    continue
                self._record_success(spec, attempt, payload, results,
                                     stats, degraded)
                failure = None
                break
            if failure is not None:
                self._record_failure(spec, self.retry.max_attempts,
                                     failure.cause, failure.detail, stats)

    # -- supervised pool path --------------------------------------------------

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcibly retire a pool whose workers can no longer be trusted
        to finish (hung, or already dead)."""
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.kill()
            except Exception:  # noqa: BLE001 — teardown is best-effort
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_supervised(self, pending: Sequence[CellSpec], results: dict,
                        stats: RunnerStats) -> None:
        """Futures-based supervisor: submit cells individually, watch
        deadlines, replace broken/hung pools, requeue and retry.

        Recovery invariants (the chaos suite's contract):

        * a worker crash (``BrokenProcessPool``) charges an attempt only
          to the tasks that were *observed running*; queued tasks are
          requeued unchanged on a fresh pool;
        * a task overdue past ``timeout_s`` (measured from when it was
          first observed running, so pool queueing doesn't count)
          charges an attempt to itself; innocent co-resident tasks are
          requeued unchanged;
        * attempts per cell are capped by the retry policy, which bounds
          pool rebuilds; past a hard rebuild budget the remaining cells
          degrade to in-process serial execution (with process-lethal
          chaos modes disarmed) rather than looping forever.
        """
        max_workers = min(self.jobs, len(pending))
        #: (spec, attempt, not_before): ready-to-submit work items.
        queue: deque[tuple[CellSpec, int, float]] = deque(
            (spec, 0, 0.0) for spec in pending)
        rebuild_budget = len(pending) * self.retry.max_attempts + 4

        pool: ProcessPoolExecutor | None = None
        futures: dict = {}           # future -> (spec, attempt)
        deadlines: dict = {}         # future -> monotonic deadline
        observed_running: set = set()
        stats.mode = "process-pool"

        def teardown(kill: bool) -> None:
            nonlocal pool
            if pool is not None:
                if kill:
                    self._kill_pool(pool)
                else:
                    pool.shutdown(wait=True)
                pool = None
            futures.clear()
            deadlines.clear()
            observed_running.clear()

        def degrade_to_serial() -> None:
            """Abandon pooling: finish every unfinished cell in-process."""
            remaining = [(spec, attempt)
                         for _, (spec, attempt) in futures.items()]
            remaining += [(spec, attempt) for spec, attempt, _ in queue]
            queue.clear()
            teardown(kill=True)
            stats.mode = "serial-fallback"
            self._run_serial([spec for spec, _ in remaining], results,
                             stats, degraded=True)

        def retry_or_fail(spec: CellSpec, attempt: int, cause: str,
                          detail: str) -> None:
            if self.fail_fast:
                teardown(kill=True)
                self._record_failure(spec, attempt + 1, cause, detail,
                                     stats)  # raises
            if attempt + 1 < self.retry.max_attempts:
                delay = self.retry.delay_s(spec.seed, spec.platform,
                                           spec.category, attempt + 1)
                self.observer.on_retry(spec, attempt + 1, cause, delay)
                queue.append((spec, attempt + 1,
                              time.monotonic() + delay))
            else:
                self._record_failure(spec, attempt + 1, cause, detail,
                                     stats)

        try:
            while queue or futures:
                now = time.monotonic()

                # (Re)build the pool; an environment that cannot pool at
                # all (no fork, no pickling) degrades every cell.
                if pool is None and (queue or futures):
                    if stats.pool_rebuilds > rebuild_budget:
                        degrade_to_serial()
                        return
                    try:
                        pool = ProcessPoolExecutor(max_workers=max_workers)
                    except (OSError, ImportError):
                        degrade_to_serial()
                        return

                # Submit everything whose backoff has elapsed.
                deferred: list[tuple[CellSpec, int, float]] = []
                submit_failed = False
                while queue:
                    spec, attempt, not_before = queue.popleft()
                    if not_before > now:
                        deferred.append((spec, attempt, not_before))
                        continue
                    task = CellTask(spec=spec, attempt=attempt,
                                    chaos=self.chaos,
                                    collect=self._collect,
                                    ensemble=self.ensemble,
                                    batch=self.batch,
                                    memo=self.memo)
                    try:
                        future = pool.submit(execute_task, task)
                    except (RuntimeError, BrokenProcessPool, OSError,
                            PicklingError):
                        # Pool died between loop iterations; requeue and
                        # let the broken-pool path below rebuild it.
                        deferred.append((spec, attempt, not_before))
                        submit_failed = True
                        break
                    futures[future] = (spec, attempt)
                    self.observer.on_cell_start(spec, attempt)
                queue.extend(deferred)
                self.observer.on_queue_depth(len(queue), len(futures))

                if submit_failed and not futures:
                    stats.pool_rebuilds += 1
                    self.observer.on_pool_rebuild("submit-failed")
                    teardown(kill=True)
                    continue

                if not futures:
                    # Everything is backing off; sleep to the nearest
                    # not_before instead of spinning.
                    wake = min(nb for _, _, nb in queue)
                    time.sleep(max(0.0, min(wake - now, 0.25)))
                    continue

                done, not_done = wait(list(futures), timeout=0.05,
                                      return_when=FIRST_COMPLETED)

                # Arm deadlines when a task is first seen *running* —
                # time spent queued behind other cells doesn't count.
                now = time.monotonic()
                for future in not_done:
                    if future.running():
                        observed_running.add(future)
                        if (self.timeout_s is not None
                                and future not in deadlines):
                            deadlines[future] = now + self.timeout_s

                broken: list[tuple[object, CellSpec, int]] = []
                for future in done:
                    spec, attempt = futures.pop(future)
                    deadlines.pop(future, None)
                    try:
                        tag, value = future.result()
                    except Exception:  # pool infra: broken, cancelled, pickle
                        broken.append((future, spec, attempt))
                        continue
                    observed_running.discard(future)
                    if tag == "ok" and payload_intact(value):
                        self._record_success(spec, attempt, value,
                                             results, stats,
                                             degraded=False)
                    elif tag == "ok":
                        retry_or_fail(spec, attempt, "corrupt-payload",
                                      "integrity digest mismatch")
                    else:
                        retry_or_fail(spec, attempt, "raised", str(value))

                if broken:
                    # The pool is gone: every submitted-but-unprocessed
                    # future is equally dead.  Charge an attempt to the
                    # tasks that were observed running (one of them took
                    # the worker down); requeue the rest unchanged.
                    stats.pool_rebuilds += 1
                    self.observer.on_pool_rebuild("worker-crash")
                    broken += [(future, *futures[future])
                               for future in list(futures)]
                    was_running = {future for future, _, _ in broken
                                   if future in observed_running}
                    if not was_running:  # crash before any poll saw it
                        was_running = {future for future, _, _ in broken}
                    for future, spec, attempt in broken:
                        if future in was_running:
                            retry_or_fail(spec, attempt, "worker-crash",
                                          "worker process died "
                                          "(BrokenProcessPool)")
                        else:
                            queue.append((spec, attempt, 0.0))
                    teardown(kill=True)
                    continue

                # Hung-worker detection: a running task past its
                # deadline forfeits this attempt and takes the pool (the
                # only way to reclaim its worker) down with it.
                overdue = [future for future, deadline in deadlines.items()
                           if now > deadline and future in futures]
                if overdue:
                    stats.pool_rebuilds += 1
                    self.observer.on_pool_rebuild("hung-worker")
                    for future in overdue:
                        spec, attempt = futures.pop(future)
                        retry_or_fail(
                            spec, attempt, "timed-out",
                            f"exceeded {self.timeout_s:.1f}s per-cell "
                            f"timeout; worker replaced")
                    for future in list(futures):
                        spec, attempt = futures.pop(future)
                        queue.append((spec, attempt, 0.0))
                    teardown(kill=True)
        finally:
            teardown(kill=bool(futures))
