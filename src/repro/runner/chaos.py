"""Chaos harness: seeded fault injection into the experiment runner itself.

The repo already injects faults into *simulated hardware*
(:mod:`repro.fault` — clock glitches, CLKSCREW).  This module points the
same discipline at the measuring apparatus: it wraps
:func:`~repro.runner.engine.execute_spec` so that selected cells crash
their worker process, hang past the supervisor's timeout, raise, or
return a corrupted payload.  The chaos test suite uses it to prove the
supervised runner's recovery guarantees hold under adversarial execution
conditions, not just on the happy path.

Every injection decision is a pure function of ``(chaos seed, cell
coordinates, attempt)`` via the repo's SHA-256 seed derivation — a chaos
run is exactly as reproducible as a clean one, and a cell that drew a
crash on attempt 0 draws independently on attempt 1, so retries
genuinely exercise recovery rather than deterministically re-failing.

Faults:

``crash``
    ``os._exit(CRASH_EXIT_CODE)`` — the worker dies without unwinding,
    exactly like an OOM kill; the pool surfaces ``BrokenProcessPool``.
``hang``
    sleeps ``hang_s`` (chosen to exceed the runner's per-cell timeout)
    before computing, so the supervisor must detect and replace it.
``raise``
    raises :class:`~repro.errors.ChaosError` from inside the cell.
``corrupt``
    computes the real payload, then tampers with it *without* refreshing
    the integrity digest — detection is the runner's job.

When a cell executes in the parent process (serial mode or serial
fallback) the process-lethal modes are downgraded to ``raise``: chaos
must threaten the harness, never the experimenter's shell.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.errors import ChaosError
from repro.runner.seeding import derive_seed

#: All injectable fault kinds, in draw-index order.
FAULT_MODES = ("crash", "hang", "raise", "corrupt")

#: Exit status of a chaos-crashed worker (visible in pool diagnostics).
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class ChaosConfig:
    """Picklable description of a chaos campaign.

    ``rate`` is the per-(cell, attempt) injection probability; ``modes``
    restricts which faults may be drawn; ``hang_s`` is how long a hung
    cell sleeps and should comfortably exceed the runner's timeout.
    """

    rate: float
    seed: int = 0xC4A05
    modes: tuple[str, ...] = FAULT_MODES
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"chaos rate must be in [0, 1], got {self.rate}")
        unknown = set(self.modes) - set(FAULT_MODES)
        if unknown:
            raise ValueError(f"unknown chaos modes: {sorted(unknown)}")
        if not self.modes:
            raise ValueError("chaos needs at least one fault mode")

    def draw(self, spec, attempt: int) -> str | None:
        """The fault for this ``(cell, attempt)``, or ``None``.

        Deterministic: the same config, spec and attempt always draw the
        same fault, and distinct attempts draw independently.
        """
        digest = derive_seed(self.seed, spec.seed, spec.platform,
                             spec.category, attempt, "chaos")
        if (digest % (1 << 32)) / float(1 << 32) >= self.rate:
            return None
        pick = derive_seed(self.seed, spec.seed, spec.platform,
                           spec.category, attempt, "chaos-mode")
        return self.modes[pick % len(self.modes)]


def corrupt_payload(payload: dict) -> dict:
    """Tamper with a computed payload, leaving its stale integrity digest
    in place so a vigilant consumer can (must) notice."""
    payload = dict(payload)
    payload["kind"] = "chaos-corrupted"
    payload.pop("attacks", None)
    payload.pop("workload", None)
    return payload


def chaos_execute_spec(spec, attempt: int, config: ChaosConfig,
                       in_worker: bool = True,
                       collect: bool = False,
                       ensemble: bool = False,
                       batch: bool = False,
                       memo: bool = False) -> dict:
    """:func:`execute_spec` with a chance of drawn sabotage.

    ``in_worker`` gates the process-lethal modes: a crash or hang is only
    realised inside a disposable pool worker; in the parent process both
    downgrade to :class:`ChaosError` so serial runs stay survivable.
    ``collect``, ``ensemble``, ``batch`` and ``memo`` are forwarded to
    :func:`execute_spec` (telemetry and the vectorized/memoized paths
    ride along even under chaos — observed recovery must stay
    observable, and the fast paths' payloads face the same corruption
    adversary).
    """
    from repro.runner.engine import execute_spec

    mode = config.draw(spec, attempt)
    if mode in ("crash", "hang") and not in_worker:
        mode = "raise"
    if mode == "crash":
        os._exit(CRASH_EXIT_CODE)
    if mode == "hang":
        time.sleep(config.hang_s)
    if mode == "raise":
        raise ChaosError(
            f"injected failure in {spec.platform}/{spec.category} "
            f"(attempt {attempt})")
    flags = {}
    if collect:
        flags["collect"] = True
    if ensemble:
        flags["ensemble"] = True
    if batch:
        flags["batch"] = True
    if memo:
        flags["memo"] = True
    payload = execute_spec(spec, **flags)
    if mode == "corrupt":
        payload = corrupt_payload(payload)
    return payload
