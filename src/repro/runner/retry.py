"""Retry policy: capped exponential backoff with *deterministic* jitter.

A transiently failing cell (a worker crash, a corrupted payload, a
timeout) is retried a bounded number of times.  Between attempts the
runner backs off exponentially, and — because thundering-herd avoidance
must not cost reproducibility — the jitter applied to each delay is not
drawn from a wall-clock or process RNG but derived from the cell's own
coordinates via the same SHA-256 scheme that seeds the cell itself
(:mod:`repro.runner.seeding`).  Rerunning a matrix therefore replays the
exact same retry schedule, which keeps chaos tests and flake
investigations deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runner.seeding import derive_seed


@dataclass(frozen=True)
class RetryPolicy:
    """How failed cells are retried.

    ``max_retries`` counts *re*-executions: a cell runs at most
    ``1 + max_retries`` times.  Delays grow as ``base_delay_s *
    growth ** retry`` capped at ``max_delay_s``, then scaled into
    ``[1 - jitter, 1.0]`` by the deterministic jitter fraction.
    """

    max_retries: int = 2
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    growth: float = 2.0
    jitter: float = 0.5

    @property
    def max_attempts(self) -> int:
        return 1 + max(0, self.max_retries)

    def jitter_fraction(self, seed: int, platform: str, category: str,
                        attempt: int) -> float:
        """Deterministic stand-in for ``random.random()``: a value in
        ``[0, 1)`` that is a pure function of the cell and the attempt."""
        digest = derive_seed(seed, platform, category, attempt, "retry")
        return (digest % (1 << 32)) / float(1 << 32)

    def delay_s(self, seed: int, platform: str, category: str,
                attempt: int) -> float:
        """Backoff before re-running ``attempt`` (1-based retry index)."""
        retry = max(0, attempt - 1)
        raw = min(self.base_delay_s * (self.growth ** retry),
                  self.max_delay_s)
        fraction = self.jitter_fraction(seed, platform, category, attempt)
        return raw * (1.0 - self.jitter * fraction)


#: Retry disabled: one attempt, no backoff.
NO_RETRY = RetryPolicy(max_retries=0)
