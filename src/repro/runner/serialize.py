"""JSON-safe (de)serialisation of experiment payloads.

Cell results cross two boundaries — pickling to/from worker processes and
JSON to/from the on-disk cache — so attack outcomes are flattened to a
plain-JSON payload.  ``bytes`` and ``tuple`` values (both common in
``AttackResult.leaked``/``details``) are wrapped in tagged objects so the
round trip is lossless.
"""

from __future__ import annotations

from repro.attacks.base import AttackCategory, AttackResult
from repro.core.platforms import WorkloadResult

_BYTES_TAG = "__bytes__"
_TUPLE_TAG = "__tuple__"


def encode_value(value: object) -> object:
    """Recursively convert ``value`` into JSON-representable types."""
    if isinstance(value, bytes):
        return {_BYTES_TAG: value.hex()}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {_BYTES_TAG}:
            return bytes.fromhex(value[_BYTES_TAG])
        if set(value) == {_TUPLE_TAG}:
            return tuple(decode_value(v) for v in value[_TUPLE_TAG])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def attack_result_to_dict(result: AttackResult) -> dict:
    return {
        "name": result.name,
        "category": result.category.value,
        "success": result.success,
        "score": result.score,
        "leaked": encode_value(result.leaked),
        "details": encode_value(result.details),
    }


def attack_result_from_dict(data: dict) -> AttackResult:
    return AttackResult(
        name=data["name"],
        category=AttackCategory(data["category"]),
        success=data["success"],
        score=data["score"],
        leaked=decode_value(data["leaked"]),
        details=decode_value(data["details"]),
    )


def workload_to_dict(workload: WorkloadResult) -> dict:
    return {
        "cycles": workload.cycles,
        "instructions": workload.instructions,
        "wall_time_us": workload.wall_time_us,
        "energy_pj": workload.energy_pj,
    }


def workload_from_dict(data: dict) -> WorkloadResult:
    return WorkloadResult(
        cycles=data["cycles"],
        instructions=data["instructions"],
        wall_time_us=data["wall_time_us"],
        energy_pj=data["energy_pj"],
    )
