"""Deterministic, parallel, cached experiment execution.

The evaluation grid (``repro.core.matrix``) and the comparison tables
(``repro.core.comparison``) are *measured* artefacts: every cell is the
outcome of running real attack code.  That only means something if a cell
is a pure function of its inputs.  This package provides the three layers
that make it so, and then make it fast:

* :mod:`repro.runner.seeding` — stable, process-independent seed
  derivation (SHA-256 of the ``(seed, platform, category)`` coordinates;
  never Python's salted ``hash()``);
* :mod:`repro.runner.engine` — :class:`ExperimentRunner`, which fans
  independent cells out over a ``ProcessPoolExecutor`` (with a serial
  fallback) and memoises results in a content-addressed on-disk
  :class:`~repro.runner.cache.ResultCache`;
* :mod:`repro.runner.stats` — :class:`RunnerStats`, the run's measured
  metadata: per-cell wall time, cache hit/miss counts, worker
  utilisation.
"""

from repro.runner.cache import ResultCache, default_cache_root
from repro.runner.engine import (
    WORKLOAD_CATEGORY,
    CellSpec,
    ExperimentRunner,
    cache_key_for,
    execute_spec,
    parallel_map,
)
from repro.runner.seeding import derive_cell_seed, derive_seed
from repro.runner.stats import RunnerStats

__all__ = [
    "CellSpec",
    "ExperimentRunner",
    "ResultCache",
    "RunnerStats",
    "WORKLOAD_CATEGORY",
    "cache_key_for",
    "default_cache_root",
    "derive_cell_seed",
    "derive_seed",
    "execute_spec",
    "parallel_map",
]
