"""Deterministic, parallel, cached, *fault-tolerant* experiment execution.

The evaluation grid (``repro.core.matrix``) and the comparison tables
(``repro.core.comparison``) are *measured* artefacts: every cell is the
outcome of running real attack code.  That only means something if a cell
is a pure function of its inputs — and if the harness's guarantees hold
under adversarial execution conditions, not just the happy path.  This
package provides the layers that make it so:

* :mod:`repro.runner.seeding` — stable, process-independent seed
  derivation (SHA-256 of the ``(seed, platform, category)`` coordinates;
  never Python's salted ``hash()``);
* :mod:`repro.runner.engine` — :class:`ExperimentRunner`, a *supervised*
  executor: cells are submitted as individual futures with a per-cell
  timeout, hung workers are detected and their pool replaced, worker
  crashes (``BrokenProcessPool``) requeue unfinished specs, failed cells
  retry with capped deterministic-jitter backoff, and payload integrity
  digests catch corrupted returns and torn cache entries;
* :mod:`repro.runner.retry` — the :class:`RetryPolicy` (jitter derived
  from the cell seed, so reruns replay the same schedule);
* :mod:`repro.runner.chaos` — seeded fault injection *into the harness
  itself* (crash / hang / raise / corrupt), proving the recovery
  guarantees end to end (``make chaos``);
* :mod:`repro.runner.cache` — crash-safe content-addressed on-disk
  memoisation (:class:`ResultCache`: temp-file + ``os.replace`` writes,
  corrupt-entry quarantine);
* :mod:`repro.runner.stats` — :class:`RunnerStats` with one structured
  :class:`CellOutcome` per cell (ok / ok-after-retry / timed-out /
  failed / degraded-to-serial) plus wall times, cache hit/miss counts
  and worker utilisation.
"""

from repro.runner.cache import ResultCache, default_cache_root
from repro.runner.chaos import ChaosConfig, FAULT_MODES, chaos_execute_spec
from repro.runner.engine import (
    DEFAULT_TIMEOUT_S,
    INTEGRITY_KEY,
    SCAN_CATEGORY,
    WORKLOAD_CATEGORY,
    CellSpec,
    CellTask,
    ExperimentRunner,
    cache_key_for,
    execute_spec,
    execute_task,
    parallel_map,
    payload_fingerprint,
    payload_intact,
)
from repro.runner.retry import NO_RETRY, RetryPolicy
from repro.runner.seeding import derive_cell_seed, derive_seed
from repro.runner.stats import CellOutcome, OUTCOME_STATUSES, RunnerStats

__all__ = [
    "CellOutcome",
    "CellSpec",
    "CellTask",
    "ChaosConfig",
    "DEFAULT_TIMEOUT_S",
    "ExperimentRunner",
    "FAULT_MODES",
    "INTEGRITY_KEY",
    "NO_RETRY",
    "OUTCOME_STATUSES",
    "ResultCache",
    "RetryPolicy",
    "RunnerStats",
    "SCAN_CATEGORY",
    "WORKLOAD_CATEGORY",
    "cache_key_for",
    "chaos_execute_spec",
    "default_cache_root",
    "derive_cell_seed",
    "derive_seed",
    "execute_spec",
    "execute_task",
    "parallel_map",
    "payload_fingerprint",
    "payload_intact",
]
