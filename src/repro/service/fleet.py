"""Worker fleets: real subprocess workers, optionally under chaos.

A :class:`WorkerFleet` spawns N genuine ``python -m repro worker``
processes against one queue directory — the same processes a multi-host
deployment would run per machine, so killing one *is* the host-failure
experiment, not a simulation of it.  The fleet's chaos controller
(driven by :class:`~repro.service.chaos.HostChaosConfig`) SIGKILLs
members on deterministic draws and respawns them, which is how the
serve-smoke gate and the host-chaos suite exercise lease expiry and
takeover with nothing mocked.

The fleet object itself holds no protocol state — losing the parent
process orphans nothing, because workers drain against the directory,
not against their spawner.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.service.chaos import HostChaosConfig, kill_process
from repro.service.lease import DEFAULT_TTL_S


class WorkerFleet:
    """Spawn, kill, respawn and drain ``python -m repro worker``s."""

    def __init__(self, queue_root: str | Path,
                 cache_root: str | Path | None = None,
                 size: int = 2,
                 ttl_s: float = DEFAULT_TTL_S,
                 poll_s: float = 0.1,
                 chaos: HostChaosConfig | None = None,
                 python: str | None = None,
                 extra_env: dict[str, str] | None = None) -> None:
        self.queue_root = Path(queue_root)
        self.cache_root = Path(cache_root) if cache_root else None
        self.size = max(1, int(size))
        self.ttl_s = float(ttl_s)
        self.poll_s = float(poll_s)
        self.chaos = chaos
        self.python = python or sys.executable
        self.extra_env = dict(extra_env or {})
        self.procs: list[subprocess.Popen | None] = [None] * self.size
        self.kills = 0
        self.respawns = 0
        self._chaos_tick = 0
        self._next_chaos_at = 0.0

    # -- lifecycle ---------------------------------------------------------

    def _command(self) -> list[str]:
        cmd = [self.python, "-m", "repro", "worker",
               "--queue", str(self.queue_root),
               "--lease-ttl", str(self.ttl_s),
               "--poll", str(self.poll_s)]
        if self.cache_root is not None:
            cmd += ["--cache-dir", str(self.cache_root)]
        return cmd

    def _spawn(self, slot: int) -> subprocess.Popen:
        env = {**os.environ, **self.extra_env}
        src = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = (f"{src}{os.pathsep}{env['PYTHONPATH']}"
                             if env.get("PYTHONPATH") else str(src))
        proc = subprocess.Popen(self._command(), env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        self.procs[slot] = proc
        return proc

    def start(self) -> None:
        for slot in range(self.size):
            if self.procs[slot] is None:
                self._spawn(slot)
        if self.chaos is not None:
            self._next_chaos_at = (time.monotonic()
                                   + self.chaos.kill_interval_s)

    def alive(self) -> int:
        return sum(1 for proc in self.procs
                   if proc is not None and proc.poll() is None)

    # -- supervision (call from the coordinator's poll loop) ---------------

    def poll(self) -> None:
        """One supervision tick: run chaos draws, respawn the dead.

        Respawning *after* the chaos draw means a killed worker stays
        dead for at least one tick — its lease must genuinely expire
        and be reclaimed by a survivor, not by its own instant
        replacement racing the TTL.
        """
        self._chaos_poll()
        for slot, proc in enumerate(self.procs):
            if proc is not None and proc.poll() is not None:
                self._spawn(slot)
                self.respawns += 1

    def _chaos_poll(self) -> None:
        if self.chaos is None or self.chaos.kill_rate <= 0:
            return
        now = time.monotonic()
        if now < self._next_chaos_at:
            return
        self._next_chaos_at = now + self.chaos.kill_interval_s
        victim = self.chaos.draw_kill(self._chaos_tick, self.size)
        self._chaos_tick += 1
        if victim is None:
            return
        proc = self.procs[victim]
        if proc is not None and proc.poll() is None:
            if kill_process(proc.pid):
                self.kills += 1

    def kill_one(self, slot: int = 0) -> bool:
        """Deterministic host loss for tests: SIGKILL a named member."""
        proc = self.procs[slot]
        if proc is None or proc.poll() is not None:
            return False
        ok = kill_process(proc.pid)
        if ok:
            self.kills += 1
            proc.wait(timeout=10.0)
        return ok

    # -- teardown ----------------------------------------------------------

    def drain(self, timeout_s: float = 30.0) -> bool:
        """SIGTERM everyone (graceful drain) and wait; True if all left."""
        for proc in self.procs:
            if proc is not None and proc.poll() is None:
                try:
                    proc.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + timeout_s
        for proc in self.procs:
            if proc is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                return False
        return True

    def stop(self) -> None:
        """Hard stop: kill anything still running (tests' finally path)."""
        for proc in self.procs:
            if proc is not None and proc.poll() is None:
                kill_process(proc.pid)
        for proc in self.procs:
            if proc is not None:
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    pass

    def __enter__(self) -> "WorkerFleet":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()
