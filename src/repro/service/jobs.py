"""Job specifications: what a client submits to the evaluation service.

A :class:`JobSpec` is the declarative form of one evaluation campaign —
a (platform × category) sub-grid of the Figure-1 matrix at a chosen
seed and knob sizing — that expands deterministically into the same
:class:`~repro.runner.engine.CellSpec` objects the
:class:`~repro.runner.engine.ExperimentRunner` executes directly.  The
job's identity is the SHA-256 of its canonical JSON, so submission is
naturally idempotent (re-submitting the same campaign re-points at the
same job) and two clients asking for overlapping grids share cells
through the content-addressed result cache rather than recomputing.

``ensemble``/``batch`` ride along as *execution strategy hints*, not
measurement inputs: they are excluded from the job id exactly as they
are excluded from cell cache keys, because payloads are bit-identical
either way (the differential suites prove it).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.runner.engine import WORKLOAD_CATEGORY, CellSpec

#: Current job-file schema; readers reject anything else.
JOB_SCHEMA = "repro-service-job/1"


def _default_platforms() -> tuple[str, ...]:
    from repro.common import PlatformClass
    return tuple(p.value for p in PlatformClass)


def _default_categories() -> tuple[str, ...]:
    from repro.attacks.base import AttackCategory
    return tuple(c.value for c in AttackCategory) + (WORKLOAD_CATEGORY,)


@dataclass(frozen=True)
class JobSpec:
    """One evaluation campaign, declaratively.

    ``knobs`` is the canonical tuple form from
    ``MatrixKnobs.as_key()``; ``platforms``/``categories`` name the
    sub-grid (category ``"workload"`` selects the reference-workload
    cell).  ``ensemble``/``batch`` choose the vectorized execution
    lanes and deliberately do not participate in :attr:`job_id`.
    """

    seed: int = 0x2019
    knobs: tuple[tuple[str, int], ...] = ()
    platforms: tuple[str, ...] = field(default_factory=_default_platforms)
    categories: tuple[str, ...] = field(default_factory=_default_categories)
    ensemble: bool = False
    batch: bool = False

    @property
    def job_id(self) -> str:
        """Content address of the campaign (strategy flags excluded)."""
        material = json.dumps({
            "schema": JOB_SCHEMA,
            "seed": self.seed,
            "knobs": [list(pair) for pair in self.knobs],
            "platforms": list(self.platforms),
            "categories": list(self.categories),
        }, sort_keys=True)
        return "job-" + hashlib.sha256(
            material.encode("utf-8")).hexdigest()[:16]

    def cells(self) -> list[CellSpec]:
        """The job's grid, in deterministic platform-major order."""
        return [CellSpec(seed=self.seed, platform=platform,
                         category=category, knobs=self.knobs)
                for platform in self.platforms
                for category in self.categories]

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "job_id": self.job_id,
            "seed": self.seed,
            "knobs": [list(pair) for pair in self.knobs],
            "platforms": list(self.platforms),
            "categories": list(self.categories),
            "ensemble": self.ensemble,
            "batch": self.batch,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        if data.get("schema") != JOB_SCHEMA:
            raise ValueError(
                f"not a {JOB_SCHEMA} document: {data.get('schema')!r}")
        return cls(
            seed=int(data["seed"]),
            knobs=tuple((str(k), int(v)) for k, v in data.get("knobs", [])),
            platforms=tuple(data["platforms"]),
            categories=tuple(data["categories"]),
            ensemble=bool(data.get("ensemble", False)),
            batch=bool(data.get("batch", False)))

    # -- construction helpers ----------------------------------------------

    @classmethod
    def matrix(cls, quick: bool = True, seed: int = 0x2019,
               ensemble: bool = False, batch: bool = False) -> "JobSpec":
        """The full Figure-1 evaluation grid as one job."""
        from repro.attacks.suites import MatrixKnobs
        knobs = MatrixKnobs.quick() if quick else MatrixKnobs.full()
        return cls(seed=seed, knobs=knobs.as_key(),
                   ensemble=ensemble, batch=batch)

    @classmethod
    def from_manifest(cls, manifest) -> "JobSpec":
        """Reconstruct the campaign a RunManifest describes.

        This is the cold-resume path: a manifest plus the shared result
        cache is enough to re-submit the job — cells whose payloads
        already sit in the cache are skipped by every worker, so only
        genuinely missing cells recompute.
        """
        coords = sorted(manifest.outcomes)
        platforms: list[str] = []
        categories: list[str] = []
        for cell in coords:
            platform, _, category = cell.partition("/")
            if platform not in platforms:
                platforms.append(platform)
            if category not in categories:
                categories.append(category)
        knobs = tuple(sorted((str(k), int(v))
                             for k, v in manifest.knobs.items()))
        return cls(seed=int(manifest.seed or 0), knobs=knobs,
                   platforms=tuple(platforms),
                   categories=tuple(categories))

    def scoped(self, platforms=None, categories=None) -> "JobSpec":
        """A copy restricted to a sub-grid (test-sized jobs)."""
        return replace(
            self,
            platforms=tuple(platforms) if platforms else self.platforms,
            categories=tuple(categories) if categories else self.categories)
