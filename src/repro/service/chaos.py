"""Host-level chaos: faults the process-level harness cannot express.

PR 3's chaos harness (:mod:`repro.runner.chaos`) sabotages individual
cell *attempts* inside a supervised runner's workers.  This module
scales the same discipline to the service's failure domain — whole
hosts and the shared directory protocol between them:

``kill-worker``
    SIGKILL an entire worker process mid-job (not one pool worker — the
    fleet member itself), exactly like a host dying.  Its held lease
    stops heartbeating, expires, and a survivor reclaims the cell.
``stale-lease``
    plant a lease whose owner is a fiction and whose heartbeat is long
    past — the wreckage a dead host leaves.  Workers must reap it.
``torn-lease``
    plant a half-written (non-JSON) lease, as if the owner died
    mid-``write``.  Treated as immediately stale.
``skewed-lease``
    plant a lease heartbeated far into the *future* — a host with a
    broken clock.  Trusting it would deadlock the cell forever, so the
    lease layer classifies beyond-TTL future skew as reapable.
``torn-job``
    tear a submitted job file; the queue must quarantine it without
    wedging job listings.

Fault *selection* is deterministic (the repo's SHA-256 draw over the
chaos seed and the cell key), so a chaos campaign is reproducible; the
faults' interleaving with real workers is of course not, which is the
point — the end-state guarantee (every payload byte-identical to a
fault-free run) must hold under any interleaving.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.runner.engine import cache_key_for
from repro.runner.seeding import derive_seed
from repro.service.jobs import JobSpec
from repro.service.lease import LeaseInfo
from repro.service.queue import JobQueue

#: Lease/job faults plantable in a queue directory, in draw order.
LEASE_FAULTS = ("stale-lease", "torn-lease", "skewed-lease")


@dataclass(frozen=True)
class HostChaosConfig:
    """A host-level chaos campaign.

    ``lease_rate`` is the per-cell probability of planting a lease
    fault before workers start; ``kill_interval_s`` is how often the
    fleet's chaos controller considers killing a worker and
    ``kill_rate`` the probability it goes through with it on each tick.
    """

    lease_rate: float = 0.0
    kill_rate: float = 0.0
    kill_interval_s: float = 1.0
    seed: int = 0x4057

    def __post_init__(self) -> None:
        for name in ("lease_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")

    def _fraction(self, *parts: object) -> float:
        digest = derive_seed(self.seed, *parts)
        return (digest % (1 << 32)) / float(1 << 32)

    def draw_lease_fault(self, key: str) -> str | None:
        """The lease fault for this cache key, or ``None``."""
        if self._fraction(key, "lease") >= self.lease_rate:
            return None
        pick = derive_seed(self.seed, key, "lease-mode")
        return LEASE_FAULTS[pick % len(LEASE_FAULTS)]

    def draw_kill(self, tick: int, fleet_size: int) -> int | None:
        """Index of the worker to SIGKILL on this tick, or ``None``."""
        if fleet_size <= 0 or self._fraction(tick, "kill") >= self.kill_rate:
            return None
        return derive_seed(self.seed, tick, "kill-victim") % fleet_size


# -- lease/job fault injectors ---------------------------------------------


def plant_stale_lease(queue: JobQueue, key: str,
                      age_s: float = 3600.0,
                      ttl_s: float = 5.0) -> None:
    """A dead host's wreckage: valid JSON, heartbeat long expired."""
    queue.leases_dir.mkdir(parents=True, exist_ok=True)
    then = time.time() - age_s
    info = LeaseInfo(owner="worker-deadhost-1-0000", host="deadhost",
                     pid=1, acquired_at=then, heartbeat_at=then,
                     ttl_s=ttl_s)
    queue.lease_path(key).write_text(info.to_json(), encoding="utf-8")


def plant_torn_lease(queue: JobQueue, key: str) -> None:
    """A mid-write death: bytes that will never parse as JSON."""
    queue.leases_dir.mkdir(parents=True, exist_ok=True)
    queue.lease_path(key).write_bytes(b'{"owner": "worker-to')


def plant_skewed_lease(queue: JobQueue, key: str,
                       skew_s: float = 3600.0,
                       ttl_s: float = 5.0) -> None:
    """A broken clock: heartbeat from the far future."""
    queue.leases_dir.mkdir(parents=True, exist_ok=True)
    future = time.time() + skew_s
    info = LeaseInfo(owner="worker-skewhost-1-0000", host="skewhost",
                     pid=1, acquired_at=future, heartbeat_at=future,
                     ttl_s=ttl_s)
    queue.lease_path(key).write_text(info.to_json(), encoding="utf-8")


def tear_job_file(queue: JobQueue, job_id: str) -> None:
    """Truncate a submitted job file mid-content."""
    path = queue.job_path(job_id)
    data = path.read_bytes() if path.exists() else b'{"schema": "repro'
    path.write_bytes(data[:max(3, len(data) // 2)])


def plant_torn_cache_entry(cache_root, key: str) -> None:
    """A torn payload file in the shared cache (never produced by the
    crash-safe writer, but an adversarial disk can): must be
    quarantined and recomputed, never trusted."""
    root = os.fspath(cache_root)
    os.makedirs(root, exist_ok=True)
    with open(os.path.join(root, f"{key}.json"), "w",
              encoding="utf-8") as fh:
        fh.write('{"kind": "attacks", "attacks": [')


def seed_lease_faults(queue: JobQueue, job: JobSpec,
                      config: HostChaosConfig) -> dict[str, str]:
    """Plant the campaign's drawn lease faults for ``job``'s cells.

    Returns ``{cache key: fault}`` for what was planted, so tests can
    assert the ≥30 %% fault-coverage bar directly.
    """
    planted: dict[str, str] = {}
    for spec in job.cells():
        key = cache_key_for(spec)
        fault = config.draw_lease_fault(key)
        if fault is None:
            continue
        if fault == "stale-lease":
            plant_stale_lease(queue, key)
        elif fault == "torn-lease":
            plant_torn_lease(queue, key)
        else:
            plant_skewed_lease(queue, key)
        planted[key] = fault
    return planted


def kill_process(pid: int) -> bool:
    """SIGKILL — no unwind, no cleanup, exactly a host loss."""
    try:
        os.kill(pid, signal.SIGKILL)
        return True
    except (OSError, ProcessLookupError):
        return False


def chaos_report(planted: dict[str, str], kills: int) -> str:
    by_fault: dict[str, int] = {}
    for fault in planted.values():
        by_fault[fault] = by_fault.get(fault, 0) + 1
    parts = [f"{fault} x{count}" for fault, count in sorted(by_fault.items())]
    parts.append(f"kill-worker x{kills}")
    return "host chaos: " + ", ".join(parts)
