"""Evaluation as a service: a crash-safe, multi-host job layer.

The supervised runner (PR 3) recovers from *worker-process* failure
inside one host.  This package recovers from the loss of the host
itself: jobs are atomic JSON files in a shared queue directory, workers
claim cells through ``O_EXCL`` lease files carrying owner identity,
heartbeat and TTL, and completion *is* the content-addressed cache
entry — so the entire system state lives in two directories any
surviving machine can read, and every failure mode (SIGKILLed worker,
partitioned host, torn file, skewed clock, dead coordinator) resolves
to "a lease expires and someone else finishes the cell", with payloads
byte-identical to a fault-free run.

Layers:

* :mod:`repro.service.jobs` — :class:`JobSpec`, the content-addressed
  campaign description that expands into runner ``CellSpec``\\ s;
* :mod:`repro.service.queue` — :class:`JobQueue`, the directory
  protocol (atomic submission, torn-file quarantine, failure records);
* :mod:`repro.service.lease` — the ``O_EXCL`` + heartbeat + TTL lease
  discipline with race-free reaping of stale/torn/skewed leases;
* :mod:`repro.service.worker` — :class:`ServiceWorker`, the claim →
  execute (via a serial supervised runner) → publish loop with
  graceful SIGTERM/SIGINT drain;
* :mod:`repro.service.coordinator` — :class:`Coordinator`, the purely
  observational progress/status/manifest layer (Prometheus + JSONL via
  the PR-4 exporters; cold-resume manifests);
* :mod:`repro.service.fleet` — :class:`WorkerFleet`, real subprocess
  workers plus the host-kill chaos controller;
* :mod:`repro.service.chaos` — host-level fault injection (worker
  SIGKILL, stale/torn/skewed leases, torn job files).
"""

from repro.service.chaos import (
    HostChaosConfig,
    LEASE_FAULTS,
    chaos_report,
    plant_skewed_lease,
    plant_stale_lease,
    plant_torn_cache_entry,
    plant_torn_lease,
    seed_lease_faults,
    tear_job_file,
)
from repro.service.coordinator import Coordinator, JobStatus
from repro.service.fleet import WorkerFleet
from repro.service.jobs import JOB_SCHEMA, JobSpec
from repro.service.lease import (
    DEFAULT_TTL_S,
    Lease,
    LeaseInfo,
    LeaseLostError,
    default_owner_id,
    lease_state,
    read_lease,
    reap_lease,
    try_acquire,
)
from repro.service.queue import JobQueue
from repro.service.worker import ServiceWorker, WorkerStats, run_worker_process

__all__ = [
    "Coordinator",
    "DEFAULT_TTL_S",
    "HostChaosConfig",
    "JOB_SCHEMA",
    "JobQueue",
    "JobSpec",
    "JobStatus",
    "LEASE_FAULTS",
    "Lease",
    "LeaseInfo",
    "LeaseLostError",
    "ServiceWorker",
    "WorkerFleet",
    "WorkerStats",
    "chaos_report",
    "default_owner_id",
    "lease_state",
    "plant_skewed_lease",
    "plant_stale_lease",
    "plant_torn_cache_entry",
    "plant_torn_lease",
    "read_lease",
    "reap_lease",
    "run_worker_process",
    "seed_lease_faults",
    "tear_job_file",
    "try_acquire",
]
