"""Crash-safe work leases: ``O_EXCL`` files with heartbeat and TTL.

A lease is one JSON file whose *existence* is the lock: acquisition is
``os.open(O_CREAT | O_EXCL)``, which the filesystem arbitrates — two
contenders racing for the same path get exactly one winner, with no
daemon and no shared state beyond the directory.  The file's contents
identify the owner (host, pid, a per-process nonce) and carry a
heartbeat timestamp plus a TTL, which is what makes the lock safe
against *whole-host* failure: a SIGKILLed or partitioned owner stops
heartbeating, its lease goes stale after ``ttl_s``, and any surviving
worker may reap it and take over.  Nothing an owner can fail to do
leaves the cell locked forever.

Reaping serialises the staleness verdict and the clearing rename
through a short-lived ``O_EXCL`` reap slot: the slot holder re-judges
the lease *inside* the critical section and renames it aside only if
it is still reapable, so a verdict outdated by a rival's reap-and-
re-acquire can never steal the rival's fresh lease (see
:func:`reap_lease` for the two-owner race a bare rename-aside
permits).  Slot losers simply retry later, a slot orphaned by a crash
is broken after a grace period, and the winner still goes through the
same ``O_EXCL`` acquisition as everyone else — the create, not the
reap, is always the arbiter.

Torn lease files (a host died mid-write, or chaos tore one on purpose)
parse as garbage and are treated as *immediately* stale: an
unreadable lease proves its writer never completed an atomic publish,
so there is no live owner to protect.  Heartbeats skewed into the
future beyond the TTL are equally untrustworthy — a clock that far
wrong would make a dead host's lease immortal — and also count as
stale (:func:`lease_state` returns ``"skewed"``).

Timestamps are wall-clock (``time.time()``): leases must be comparable
*across hosts*, which monotonic clocks are not.  The TTL is therefore
also the cross-host clock-skew tolerance; keep it generous relative to
NTP drift (seconds, not milliseconds) in real deployments.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
from dataclasses import asdict, dataclass
from itertools import count
from pathlib import Path

from repro.errors import HarnessError

#: Default seconds without a heartbeat before a lease may be reaped.
DEFAULT_TTL_S = 30.0

#: File-name suffix of live leases under a queue's ``leases/`` dir.
LEASE_SUFFIX = ".lease"

#: Per-process nonce: distinguishes two workers that share host + pid
#: (pid reuse after a crash, or a fork inheriting module state — the
#: fork changes the pid, the reuse changes the nonce's process).
_PROCESS_NONCE = os.urandom(3).hex()

#: Per-process counter for unique reap-tomb names.
_REAP_COUNTER = count()


def _hostname() -> str:
    """This host's name, sanitised for embedding in file names."""
    return re.sub(r"[^A-Za-z0-9-]", "-", socket.gethostname()) or "host"


def default_owner_id(role: str = "worker") -> str:
    """A globally distinguishable owner identity for this process."""
    return f"{role}-{_hostname()}-{os.getpid()}-{_PROCESS_NONCE}"


class LeaseLostError(HarnessError):
    """This process's lease was reaped (it went stale) and is now owned
    by someone else — the in-flight work must not publish as if still
    exclusive (the content-addressed cache makes double-publish safe,
    but the loser must stop heartbeating over the new owner)."""


@dataclass(frozen=True)
class LeaseInfo:
    """The decoded contents of one lease file."""

    owner: str
    host: str
    pid: int
    acquired_at: float
    heartbeat_at: float
    ttl_s: float

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def read_lease(path: str | Path) -> LeaseInfo | None:
    """Decode a lease file; ``None`` when absent, torn, or non-JSON.

    A ``None`` from an *existing* file means the lease is torn — its
    writer never finished an atomic publish — which callers treat as
    stale (see module docstring).
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        data = json.loads(text)
        return LeaseInfo(
            owner=str(data["owner"]), host=str(data["host"]),
            pid=int(data["pid"]),
            acquired_at=float(data["acquired_at"]),
            heartbeat_at=float(data["heartbeat_at"]),
            ttl_s=float(data["ttl_s"]))
    except (ValueError, TypeError, KeyError):
        return None


def lease_state(path: str | Path, now: float | None = None) -> str:
    """One of ``"free" | "held" | "stale" | "torn" | "skewed"``.

    ``stale``, ``torn`` and ``skewed`` are all reapable; ``held`` is
    the only state that must be respected.
    """
    path = Path(path)
    if not path.exists():
        return "free"
    info = read_lease(path)
    if info is None:
        return "torn"
    now = time.time() if now is None else now
    if info.heartbeat_at > now + info.ttl_s:
        return "skewed"
    if now - info.heartbeat_at > info.ttl_s:
        return "stale"
    return "held"


def _write_lease_file(path: Path, info: LeaseInfo, exclusive: bool) -> bool:
    """Atomically publish ``info`` at ``path``.

    ``exclusive`` publishes a fully written temp file into place with
    ``os.link``, which fails if ``path`` already exists — the same
    lose-to-an-existing-file arbitration as ``O_EXCL``, but the lease
    appears with its *contents* in one atomic step.  A bare
    ``O_EXCL`` open followed by a write is not enough: between the
    create and the write the lease is an empty file, which a
    concurrent :func:`lease_state` reads as ``torn`` — i.e. reapable —
    and a rival could legitimately clear a lease that was just won.
    The non-exclusive branch is the heartbeat refresh: same temp file,
    published with ``os.replace`` (which must never tear the file a
    concurrent reader is decoding, and *may* overwrite).
    Returns whether the publish happened.
    """
    # No fsync, deliberately: a lease needs *atomicity* (link /
    # rename are the arbiters), never durability — a lease lost to a
    # host crash is exactly the stale/absent lease the protocol
    # already recovers from, and syncing every acquire/heartbeat would
    # tax each cell for a guarantee nothing relies on.
    payload = info.to_json().encode("utf-8")
    if exclusive:
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{next(_REAP_COUNTER)}.new")
        try:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                os.write(fd, payload)
            finally:
                os.close(fd)
            os.link(tmp, path)
            return True
        except OSError:
            return False
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_REAP_COUNTER)}.hb")
    try:
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, payload)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        return True
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        return False


#: Seconds after which an abandoned reap slot (its holder died between
#: taking it and finishing the rename — a microseconds-long critical
#: section) is broken by the next contender.  Generous relative to the
#: section, tiny relative to lease TTLs.
REAP_SLOT_GRACE_S = 5.0


def _break_abandoned_reap_slot(slot: Path) -> None:
    """Clear a reap slot whose holder evidently died mid-reap.

    Age is judged by file mtime against this host's clock; the grace is
    orders of magnitude above the critical section it guards, so only a
    genuinely dead (or absurdly paused) holder is ever displaced.  The
    rename-aside keeps slot-breaking itself single-winner.
    """
    try:
        age = time.time() - slot.stat().st_mtime
    except OSError:
        return
    if age <= REAP_SLOT_GRACE_S:
        return
    aside = slot.with_name(
        f"{slot.name}.{os.getpid()}.{next(_REAP_COUNTER)}")
    try:
        os.rename(slot, aside)
    except OSError:
        return
    try:
        aside.unlink()
    except OSError:
        pass


def reap_lease(path: str | Path, now: float | None = None) -> bool:
    """Clear a stale/torn/skewed lease from ``path``; one winner only.

    A bare rename-aside is *not* enough: the rename grabs whatever is
    at the path at that instant, and between a contender's staleness
    verdict and its rename a rival may have reaped first and won the
    ``O_EXCL`` re-acquire — the late rename would then steal the
    rival's *fresh* lease, leaving the path momentarily free for a
    third contender's create, and two workers walk away each believing
    they own the cell.  So the verdict and the rename are serialised
    through a reap slot (an ``O_EXCL`` sidecar file): the slot holder
    re-judges the lease state *inside* the critical section and only
    renames a lease that is still reapable.  Losers of the slot report
    ``False`` and simply retry later; a slot orphaned by a crash is
    broken after :data:`REAP_SLOT_GRACE_S`.  The winner still has to
    *acquire* afterwards like anyone else — the ``O_EXCL`` create
    remains the ownership arbiter.
    """
    path = Path(path)
    now = time.time() if now is None else now
    slot = path.with_name(path.name + ".reaplock")
    _break_abandoned_reap_slot(slot)
    token = (f"{_hostname()}.{os.getpid()}.{_PROCESS_NONCE}."
             f"{next(_REAP_COUNTER)}").encode("ascii")
    try:
        fd = os.open(slot, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    except OSError:
        return False
    try:
        os.write(fd, token)
        os.close(fd)
        if lease_state(path, now=now) not in ("stale", "torn", "skewed"):
            # The lease was re-acquired (or refreshed) since the
            # caller's verdict; it is live and must be respected.
            return False
        tomb = path.with_name(
            f"{path.name}.reaped.{os.getpid()}.{next(_REAP_COUNTER)}")
        try:
            os.rename(path, tomb)
        except OSError:
            return False
        try:
            tomb.unlink()
        except OSError:
            pass
        return True
    finally:
        # Remove only our own slot: if a breaker judged us dead and a
        # rival now holds a fresh slot, leave it strictly alone.
        try:
            if slot.read_bytes() == token:
                slot.unlink()
        except OSError:
            pass


class Lease:
    """A held lease: heartbeat it while working, release it when done."""

    def __init__(self, path: Path, info: LeaseInfo) -> None:
        self.path = Path(path)
        self.info = info
        self.lost = False
        self._keepalive_stop: threading.Event | None = None
        self._keepalive_thread: threading.Thread | None = None

    @property
    def owner(self) -> str:
        return self.info.owner

    def heartbeat(self, now: float | None = None) -> None:
        """Refresh the lease's liveness timestamp, atomically.

        Raises :class:`LeaseLostError` when the on-disk lease is no
        longer ours — it went stale and a surviving worker reaped it.
        A lease this process let expire is *not* rewritten: the reaper
        was entitled to take it, and stomping the new owner's file
        would create two believers.
        """
        if self.lost:
            raise LeaseLostError(f"lease {self.path.name} already lost")
        current = read_lease(self.path)
        if current is None or current.owner != self.info.owner:
            self.lost = True
            raise LeaseLostError(
                f"lease {self.path.name} now owned by "
                f"{current.owner if current else '<torn/absent>'}")
        now = time.time() if now is None else now
        refreshed = LeaseInfo(
            owner=self.info.owner, host=self.info.host, pid=self.info.pid,
            acquired_at=self.info.acquired_at, heartbeat_at=now,
            ttl_s=self.info.ttl_s)
        if _write_lease_file(self.path, refreshed, exclusive=False):
            self.info = refreshed

    def release(self) -> bool:
        """Give the lease up; returns whether we still owned it.

        Only the owner's own file is removed — if the lease was reaped
        and re-acquired while we dawdled, the new owner's file is left
        strictly alone.
        """
        self.stop_keepalive()
        current = read_lease(self.path)
        if current is None or current.owner != self.info.owner:
            self.lost = True
            return False
        try:
            self.path.unlink()
        except OSError:
            return False
        return True

    # -- background heartbeating -------------------------------------------

    def start_keepalive(self, interval_s: float | None = None) -> None:
        """Heartbeat from a daemon thread every ``interval_s`` seconds
        (default: a third of the TTL) until stopped or lost.  A
        SIGKILLed process takes the thread with it — which is exactly
        the point: liveness stops when the host does."""
        if self._keepalive_thread is not None:
            return
        interval = (interval_s if interval_s and interval_s > 0
                    else max(self.info.ttl_s / 3.0, 0.01))
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    self.heartbeat()
                except (LeaseLostError, OSError):
                    return

        thread = threading.Thread(target=beat, name="lease-keepalive",
                                  daemon=True)
        self._keepalive_stop = stop
        self._keepalive_thread = thread
        thread.start()

    def stop_keepalive(self) -> None:
        if self._keepalive_stop is not None:
            self._keepalive_stop.set()
        if self._keepalive_thread is not None:
            self._keepalive_thread.join(timeout=5.0)
        self._keepalive_stop = None
        self._keepalive_thread = None

    def __enter__(self) -> "Lease":
        self.start_keepalive()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


def try_acquire(path: str | Path, owner: str,
                ttl_s: float = DEFAULT_TTL_S,
                now: float | None = None) -> Lease | None:
    """Attempt to take the lease at ``path``; ``None`` if someone holds it.

    A fresh lease is respected; a stale, torn or clock-skewed one is
    reaped first (one reaper wins the rename) and acquisition then
    proceeds through the normal ``O_EXCL`` create — so even a reap
    winner can lose the subsequent create to a third party arriving
    fresh, and exactly one owner ever results.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    now = time.time() if now is None else now
    info = LeaseInfo(owner=owner, host=_hostname(), pid=os.getpid(),
                     acquired_at=now, heartbeat_at=now, ttl_s=ttl_s)
    if _write_lease_file(path, info, exclusive=True):
        return Lease(path, info)
    if lease_state(path, now=now) in ("stale", "torn", "skewed"):
        reap_lease(path, now=now)
        # Whether or not *we* won the reap, the path may now be free;
        # the O_EXCL create below stays the single arbiter.
        if _write_lease_file(path, info, exclusive=True):
            return Lease(path, info)
    return None
