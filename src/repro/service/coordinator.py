"""The coordinator: observe job progress, stream it, prove completion.

The queue protocol needs no coordinator to *function* — workers drive
jobs to completion from the directory state alone — so this one is
purely observational, which is what makes it crash-safe: everything it
reports is re-derived from (queue directory + shared cache) on every
poll, and a coordinator restarted cold reconstructs the same view.

Progress streams through the existing observability layer: a
:class:`~repro.obs.metrics.MetricsRegistry` fed per poll (exportable as
Prometheus text via :func:`repro.obs.export.write_metrics`), an
append-only JSONL progress feed, and — once a job completes — a
:class:`~repro.obs.manifest.RunManifest` whose outcome rows and payload
fingerprints are byte-compatible with a direct
:class:`~repro.runner.engine.ExperimentRunner` run of the same grid.
The manifest is also the cold-resume artefact:
:meth:`repro.service.jobs.JobSpec.from_manifest` turns one back into a
submittable job, and every cell the manifest's cache still holds is
skipped rather than recomputed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.export import write_metrics
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.runner.cache import ResultCache
from repro.runner.engine import (
    CellSpec,
    cache_key_for,
    payload_intact,
)
from repro.runner.stats import CellOutcome, RunnerStats
from repro.service.jobs import JobSpec
from repro.service.queue import JobQueue


@dataclass(frozen=True)
class JobStatus:
    """One job's progress, derived entirely from shared state."""

    job_id: str
    total: int
    done: int
    failed: int
    leased: int
    reapable: int
    owners: tuple[str, ...] = ()

    @property
    def pending(self) -> int:
        return self.total - self.done - self.failed

    @property
    def complete(self) -> bool:
        """Every cell terminal (a payload or a failure record exists)."""
        return self.total > 0 and self.pending == 0

    @property
    def succeeded(self) -> bool:
        return self.complete and self.failed == 0

    def summary(self) -> str:
        line = (f"{self.job_id}: {self.done}/{self.total} done"
                f" ({self.leased} leased, {self.failed} failed,"
                f" {self.pending} pending)")
        if self.owners:
            line += f" workers: {', '.join(sorted(set(self.owners)))}"
        return line


@dataclass
class _Progress:
    """Mutable per-coordinator metric handles."""

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def __post_init__(self) -> None:
        m = self.registry
        self.done = m.gauge("repro_service_cells_done",
                            "Cells with an intact cached payload")
        self.pending = m.gauge("repro_service_cells_pending",
                               "Cells not yet terminal")
        self.failed = m.gauge("repro_service_cells_failed",
                              "Cells with a terminal failure record")
        self.leased = m.gauge("repro_service_cells_leased",
                              "Cells currently claimed by a fresh lease")
        self.jobs = m.gauge("repro_service_jobs",
                            "Jobs visible in the queue")
        self.polls = m.counter("repro_service_polls_total",
                               "Coordinator status polls")


class Coordinator:
    """Cold-restartable observer of one queue (and its shared cache)."""

    def __init__(self, queue: JobQueue,
                 cache: ResultCache | None = None) -> None:
        self.queue = queue
        self.cache = cache if cache is not None else queue.default_cache()
        self._progress = _Progress()

    @property
    def metrics(self) -> MetricsRegistry:
        return self._progress.registry

    # -- status ------------------------------------------------------------

    def cell_state(self, spec: CellSpec) -> str:
        """``"done" | "failed" | "leased" | "reapable" | "pending"``."""
        key = cache_key_for(spec)
        payload = self.cache.get(key)
        if payload is not None and payload_intact(payload):
            return "done"
        if self.queue.failure(key) is not None:
            return "failed"
        lease = self.queue.lease_state(key)
        if lease == "held":
            return "leased"
        if lease in ("stale", "torn", "skewed"):
            return "reapable"
        return "pending"

    def status(self, job: JobSpec) -> JobStatus:
        counts = {"done": 0, "failed": 0, "leased": 0, "reapable": 0,
                  "pending": 0}
        owners: list[str] = []
        cells = job.cells()
        for spec in cells:
            state = self.cell_state(spec)
            counts[state] += 1
            if state == "leased":
                owner = self.queue.lease_owner(cache_key_for(spec))
                if owner:
                    owners.append(owner)
        status = JobStatus(
            job_id=job.job_id, total=len(cells), done=counts["done"],
            failed=counts["failed"], leased=counts["leased"],
            reapable=counts["reapable"], owners=tuple(owners))
        self._record(status)
        return status

    def statuses(self) -> list[JobStatus]:
        out = []
        for job_id in self.queue.job_ids():
            job = self.queue.load(job_id)
            if job is not None:
                out.append(self.status(job))
        return out

    def _record(self, status: JobStatus) -> None:
        p = self._progress
        p.polls.inc(job=status.job_id)
        p.done.set(status.done, job=status.job_id)
        p.pending.set(status.pending, job=status.job_id)
        p.failed.set(status.failed, job=status.job_id)
        p.leased.set(status.leased, job=status.job_id)
        p.jobs.set(len(self.queue.job_ids()))

    # -- waiting -----------------------------------------------------------

    def wait(self, job: JobSpec, timeout_s: float = 600.0,
             poll_s: float = 0.25,
             on_poll=None) -> JobStatus:
        """Poll until the job is complete or ``timeout_s`` elapses.

        Returns the final status either way — the caller decides
        whether an incomplete job is an error.  ``on_poll`` (if given)
        receives every intermediate :class:`JobStatus`, which is how
        the CLI streams progress and the fleet injects chaos ticks.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job)
            if on_poll is not None:
                on_poll(status)
            if status.complete or time.monotonic() >= deadline:
                return status
            time.sleep(poll_s)

    # -- results -----------------------------------------------------------

    def collect(self, job: JobSpec) -> dict[CellSpec, dict]:
        """Every completed cell's payload, straight from the cache."""
        results: dict[CellSpec, dict] = {}
        for spec in job.cells():
            payload = self.cache.get(cache_key_for(spec))
            if payload is not None and payload_intact(payload):
                results[spec] = payload
        return results

    def fingerprints(self, job: JobSpec) -> dict[str, str]:
        """``{"platform/category": payload_sha256}`` for completed cells."""
        return {
            f"{spec.platform}/{spec.category}":
                payload.get("payload_sha256", "")
            for spec, payload in self.collect(job).items()}

    def manifest(self, job: JobSpec, command: str = "",
                 version: str | None = None) -> RunManifest:
        """A RunManifest equivalent to a direct runner's for this grid."""
        if version is None:
            import repro
            version = repro.__version__
        stats = RunnerStats(jobs=0, mode="service")
        for spec in job.cells():
            coords = (spec.platform, spec.category)
            key = cache_key_for(spec)
            state = self.cell_state(spec)
            if state == "done":
                stats.outcomes[coords] = CellOutcome(status="ok", attempts=0)
                stats.cache_hits += 1
            elif state == "failed":
                record = self.queue.failure(key) or {}
                stats.outcomes[coords] = CellOutcome(
                    status=str(record.get("status", "failed")),
                    attempts=int(record.get("attempts", 0)),
                    error=record.get("error"))
            else:
                # Pending cells are recorded too: a mid-flight manifest
                # must describe the *whole* campaign, or cold resume
                # via JobSpec.from_manifest would reconstruct only the
                # finished slice of the grid.
                stats.outcomes[coords] = CellOutcome(status="pending",
                                                     attempts=0)
                stats.cache_misses += 1
        return RunManifest.from_stats(
            version, stats, command=command or f"repro service {job.job_id}",
            seed=job.seed, knobs=dict(job.knobs),
            fingerprints=self.fingerprints(job),
            metrics=self.metrics.to_json())

    # -- artefacts ---------------------------------------------------------

    def append_progress(self, path: str | Path,
                        status: JobStatus) -> None:
        """Append one JSONL progress record (the streaming feed)."""
        record = {
            "job_id": status.job_id, "total": status.total,
            "done": status.done, "failed": status.failed,
            "leased": status.leased, "pending": status.pending,
            "ts": round(time.time(), 3),
        }
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")

    def write_metrics(self, path: str | Path) -> Path:
        """Prometheus (or JSON) snapshot via the existing exporter."""
        return write_metrics(self.metrics, path)
