"""The directory-backed job queue: atomic files as the whole protocol.

A queue is a directory tree any number of hosts can mount::

    <root>/jobs/<job_id>.json      submitted campaigns (atomic writes)
    <root>/leases/<key>.lease      single-flight work leases per cache key
    <root>/failed/<key>.json       terminal per-cell failure records

plus the shared content-addressed
:class:`~repro.runner.cache.ResultCache` (conventionally
``<root>/cells``, but any shared directory works) that holds every
completed cell's payload.  There is deliberately no server: submission
is one crash-safe file publish, claiming is one ``O_EXCL`` create, and
completion is the cache entry itself — so the queue's durability is the
filesystem's, and "the coordinator died" is not a failure mode the
protocol can even express.

Torn job files — a submitting host that died mid-write *around* the
atomic publish (only possible for files written by other tooling), or
chaos tearing one on purpose — are quarantined aside as ``*.torn``
rather than trusted or allowed to wedge the listing.
"""

from __future__ import annotations

import json
import os
from itertools import count
from pathlib import Path

from repro.runner.cache import ResultCache
from repro.service.jobs import JobSpec
from repro.service.lease import LEASE_SUFFIX, lease_state, read_lease

#: Per-process counter for unique submission temp names.
_SUBMIT_COUNTER = count()


class JobQueue:
    """One queue directory; all operations are crash-safe file ops."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.leases_dir = self.root / "leases"
        self.failed_dir = self.root / "failed"
        #: Job files quarantined because they would not parse.
        self.torn_jobs_quarantined = 0

    # -- submission --------------------------------------------------------

    def submit(self, job: JobSpec) -> str:
        """Publish a job atomically; idempotent by content address."""
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        path = self.job_path(job.job_id)
        tmp = self.jobs_dir / (f"{job.job_id}.{os.getpid()}."
                               f"{next(_SUBMIT_COUNTER)}.tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, json.dumps(job.to_dict(),
                                    sort_keys=True).encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        return job.job_id

    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    # -- listing / loading -------------------------------------------------

    def job_ids(self) -> list[str]:
        """Submitted job ids, sorted; torn files are quarantined, not
        returned."""
        if not self.jobs_dir.is_dir():
            return []
        ids = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            if self.load(path.stem) is not None:
                ids.append(path.stem)
        return ids

    def load(self, job_id: str) -> JobSpec | None:
        """The job, or ``None`` when absent or quarantined as torn."""
        path = self.job_path(job_id)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            return JobSpec.from_dict(json.loads(text))
        except (ValueError, TypeError, KeyError):
            self._quarantine_job(path)
            return None

    def _quarantine_job(self, path: Path) -> None:
        """Move a torn job file aside so it stops poisoning listings.

        The rename is naturally single-winner (like lease reaping), so
        concurrent readers quarantine it exactly once.
        """
        try:
            os.rename(path, path.with_suffix(".torn"))
            self.torn_jobs_quarantined += 1
        except OSError:
            pass

    # -- per-cell state ----------------------------------------------------

    def lease_path(self, key: str) -> Path:
        return self.leases_dir / f"{key}{LEASE_SUFFIX}"

    def lease_state(self, key: str) -> str:
        return lease_state(self.lease_path(key))

    def lease_owner(self, key: str) -> str | None:
        info = read_lease(self.lease_path(key))
        return info.owner if info else None

    def held_leases(self) -> dict[str, str]:
        """``{cache key: owner}`` for every *fresh* lease on disk."""
        if not self.leases_dir.is_dir():
            return {}
        held = {}
        for path in self.leases_dir.glob(f"*{LEASE_SUFFIX}"):
            if lease_state(path) == "held":
                info = read_lease(path)
                if info is not None:
                    held[path.name[:-len(LEASE_SUFFIX)]] = info.owner
        return held

    # -- terminal failures -------------------------------------------------

    def failed_path(self, key: str) -> Path:
        return self.failed_dir / f"{key}.json"

    def mark_failed(self, key: str, record: dict) -> None:
        """Persist a terminal per-cell failure record, atomically."""
        self.failed_dir.mkdir(parents=True, exist_ok=True)
        tmp = self.failed_dir / (f"{key}.{os.getpid()}."
                                 f"{next(_SUBMIT_COUNTER)}.tmp")
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, json.dumps(record, sort_keys=True).encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.failed_path(key))

    def failure(self, key: str) -> dict | None:
        try:
            return json.loads(
                self.failed_path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def clear_failure(self, key: str) -> None:
        """Forget a terminal failure so the cell becomes claimable again."""
        try:
            self.failed_path(key).unlink()
        except OSError:
            pass

    # -- conventions -------------------------------------------------------

    def default_cache(self) -> ResultCache:
        """The conventional shared cell cache living inside the queue."""
        return ResultCache(self.root / "cells")
