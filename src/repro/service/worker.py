"""Service workers: claim cells by lease, execute, publish to the cache.

A :class:`ServiceWorker` is one process's participation in the fleet.
Its loop is deliberately stateless between cells — every decision is
re-derived from the queue directory and the shared cache — so a worker
can be SIGKILLed at *any* instruction and the system's only loss is the
single in-flight cell, whose lease expires and whose next owner
recomputes the identical payload (cells are pure functions of their
specs; the content-addressed cache makes double-publish harmless).

Per cell the worker:

1. skips it when the shared cache already holds an intact payload or a
   terminal failure record exists (completion is *observed*, never
   tracked);
2. claims the cell's **cache key** with an ``O_EXCL`` lease — keying
   the lease by content address rather than by (job, cell) is what
   gives single-flight *across jobs and hosts*: two campaigns sharing a
   cell contend on one lease, so a cache stampede cannot start;
3. executes the cell through a serial, supervised
   :class:`~repro.runner.engine.ExperimentRunner` (same retries, same
   integrity digests, same outcome taxonomy as a local run) while a
   keepalive thread heartbeats the lease;
4. publishes the payload via the runner's crash-safe cache write and
   releases the lease (or records a terminal failure).

Losing a lease race is not an error: the loser backs off with the
repo's deterministic-jitter schedule (:mod:`repro.runner.retry` — the
same derivation that schedules cell retries, so contention behaviour
replays exactly) and moves on to the next claimable cell.

``SIGTERM``/``SIGINT`` request a *graceful drain*: the worker finishes
the in-flight cell, releases every lease it holds, and returns — a
drained worker leaves the queue exactly as claimable as before it
started, which the drain test asserts.
"""

from __future__ import annotations

import signal
import time
from dataclasses import dataclass

from repro.runner.cache import ResultCache
from repro.runner.engine import (
    CellSpec,
    ExperimentRunner,
    cache_key_for,
    payload_intact,
)
from repro.runner.retry import RetryPolicy
from repro.service.jobs import JobSpec
from repro.service.lease import (
    DEFAULT_TTL_S,
    Lease,
    default_owner_id,
    try_acquire,
)
from repro.service.queue import JobQueue


@dataclass
class WorkerStats:
    """What one worker contributed to the fleet."""

    cells_computed: int = 0
    cells_already_done: int = 0
    cells_failed: int = 0
    lease_losses: int = 0
    leases_reclaimed_stale: int = 0
    passes: int = 0
    drained: bool = False

    def summary(self) -> str:
        return (f"worker: computed={self.cells_computed} "
                f"already-done={self.cells_already_done} "
                f"failed={self.cells_failed} "
                f"lease-losses={self.lease_losses} "
                f"passes={self.passes}"
                + (" (drained)" if self.drained else ""))


class ServiceWorker:
    """One worker process of the evaluation service.

    ``owner_id`` defaults to a host/pid/nonce identity so lease files
    name their holder across machines; ``ttl_s`` is the lease TTL (and
    therefore the recovery latency after a host death); ``retry``
    drives both in-cell retries and the lease-contention backoff.
    """

    def __init__(self, queue: JobQueue,
                 cache: ResultCache | None = None,
                 owner_id: str | None = None,
                 ttl_s: float = DEFAULT_TTL_S,
                 poll_s: float = 0.2,
                 retry: RetryPolicy | None = None,
                 timeout_s: float | None = None,
                 ensemble: bool | None = None,
                 batch: bool | None = None) -> None:
        self.queue = queue
        self.cache = cache if cache is not None else queue.default_cache()
        self.owner_id = owner_id or default_owner_id()
        self.ttl_s = float(ttl_s)
        self.poll_s = float(poll_s)
        self.retry = retry if retry is not None else RetryPolicy()
        self.timeout_s = timeout_s
        #: ``None`` defers to each job's own strategy flags.
        self.ensemble = ensemble
        self.batch = batch
        self.stats = WorkerStats()
        self._draining = False
        self._current_lease: Lease | None = None

    # -- drain / signals ---------------------------------------------------

    def request_drain(self) -> None:
        """Finish the in-flight cell, release leases, then stop."""
        self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def install_signal_handlers(self):
        """Route SIGTERM/SIGINT to :meth:`request_drain`.

        Returns a zero-argument callable restoring the previous
        handlers (main thread only — Python's signal rules).
        """
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda *_args: self.request_drain())

        def restore() -> None:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

        return restore

    # -- the loop ----------------------------------------------------------

    def run_until_drained(self, max_cells: int | None = None,
                          max_idle_passes: int | None = None) -> WorkerStats:
        """Work until every known cell is terminal (cached or failed),
        a drain is requested, or ``max_cells`` computations are done.

        ``max_idle_passes`` bounds how many consecutive passes may make
        no progress while cells remain non-terminal (leased by someone
        else, or jobs arriving late); ``None`` waits indefinitely —
        the fleet's chaos guarantee is that stale leases *will* expire,
        so waiting is always productive eventually.
        """
        self.stats = WorkerStats()
        self.cache.sweep()
        idle = 0
        while not self._draining:
            self.stats.passes += 1
            progressed, pending = self._pass(max_cells)
            if pending == 0:
                break
            if max_cells is not None and self.stats.cells_computed >= max_cells:
                break
            if progressed:
                idle = 0
                continue
            idle += 1
            if max_idle_passes is not None and idle > max_idle_passes:
                break
            time.sleep(self.poll_s)
        self.stats.drained = self._draining
        self._release_current()
        return self.stats

    def _pass(self, max_cells: int | None = None) -> tuple[bool, int]:
        """One sweep over every known job's cells.

        Returns ``(progressed, pending)`` where ``pending`` counts
        cells that are not yet terminal.  The cell order is rotated by
        a stable function of the worker identity so a fleet's workers
        start at different offsets and mostly avoid contending for the
        same lease.
        """
        progressed = False
        pending = 0
        for job_id in self.queue.job_ids():
            job = self.queue.load(job_id)
            if job is None:
                continue
            for spec in self._rotated(job.cells()):
                if self._draining:
                    return progressed, pending + 1
                if (max_cells is not None
                        and self.stats.cells_computed >= max_cells):
                    return progressed, pending + 1
                state = self._advance(job, spec)
                if state == "computed":
                    progressed = True
                elif state in ("busy", "lost-race"):
                    pending += 1
        return progressed, pending

    def _rotated(self, cells: list[CellSpec]) -> list[CellSpec]:
        if not cells:
            return cells
        offset = sum(ord(ch) for ch in self.owner_id) % len(cells)
        return cells[offset:] + cells[:offset]

    # -- one cell ----------------------------------------------------------

    def _advance(self, job: JobSpec, spec: CellSpec) -> str:
        """Move one cell toward terminal state; returns what happened:
        ``"done"`` (already terminal), ``"computed"``, ``"failed"``,
        ``"busy"`` (fresh foreign lease) or ``"lost-race"``."""
        key = cache_key_for(spec)
        if self.queue.failure(key) is not None:
            return "done"
        if self._cached_ok(key):
            self.stats.cells_already_done += 1
            return "done"
        state = self.queue.lease_state(key)
        if state == "held":
            return "busy"
        was_reapable = state in ("stale", "torn", "skewed")
        lease = try_acquire(self.queue.lease_path(key), self.owner_id,
                            ttl_s=self.ttl_s)
        if lease is None:
            self.stats.lease_losses += 1
            time.sleep(self._backoff_s(spec))
            return "lost-race"
        if was_reapable:
            self.stats.leases_reclaimed_stale += 1
        self._current_lease = lease
        try:
            # The lease holder re-checks the cache: the previous owner
            # may have published before dying, making this a free hit.
            if self._cached_ok(key):
                self.stats.cells_already_done += 1
                return "done"
            return self._execute(job, spec, key, lease)
        finally:
            self._release_current()

    def _execute(self, job: JobSpec, spec: CellSpec, key: str,
                 lease: Lease) -> str:
        lease.start_keepalive()
        runner = ExperimentRunner(
            jobs=1, cache=self.cache, timeout_s=self.timeout_s,
            retry=self.retry,
            ensemble=job.ensemble if self.ensemble is None else self.ensemble,
            batch=job.batch if self.batch is None else self.batch)
        results = runner.run([spec])
        outcome = runner.stats.outcomes.get((spec.platform, spec.category))
        if spec in results and outcome is not None and outcome.ok:
            self.stats.cells_computed += 1
            return "computed"
        self.stats.cells_failed += 1
        self.queue.mark_failed(key, {
            "job_id": job.job_id,
            "platform": spec.platform,
            "category": spec.category,
            "status": outcome.status if outcome else "failed",
            "attempts": outcome.attempts if outcome else 0,
            "error": (outcome.error if outcome else None) or "unknown",
            "owner": self.owner_id,
        })
        return "failed"

    def _release_current(self) -> None:
        lease, self._current_lease = self._current_lease, None
        if lease is not None:
            lease.release()

    def _cached_ok(self, key: str) -> bool:
        payload = self.cache.get(key)
        return payload is not None and payload_intact(payload)

    def _backoff_s(self, spec: CellSpec) -> float:
        """Deterministic contention backoff: the same jitter derivation
        that schedules cell retries, scoped to this cell's coordinates,
        scaled to stay well under a lease TTL."""
        fraction = self.retry.jitter_fraction(
            spec.seed, spec.platform, spec.category, 1)
        return min(self.retry.base_delay_s * (0.5 + fraction),
                   self.ttl_s / 4.0)


def run_worker_process(queue_root: str, cache_root: str | None = None,
                       ttl_s: float = DEFAULT_TTL_S, poll_s: float = 0.2,
                       forever: bool = False,
                       timeout_s: float | None = None) -> WorkerStats:
    """Entry point for ``python -m repro worker``: signals installed,
    drain on SIGTERM/SIGINT, exit when the queue is fully terminal
    (or never, with ``forever``, for long-lived fleet members)."""
    queue = JobQueue(queue_root)
    cache = ResultCache(cache_root) if cache_root else None
    worker = ServiceWorker(queue, cache=cache, ttl_s=ttl_s, poll_s=poll_s,
                           timeout_s=timeout_s)
    restore = worker.install_signal_handlers()
    try:
        if forever:
            while not worker.draining:
                worker.run_until_drained()
                if worker.draining:
                    break
                time.sleep(poll_s)
            return worker.stats
        return worker.run_until_drained()
    finally:
        restore()
