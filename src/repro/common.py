"""Cross-cutting enums and helpers shared across the layers."""

from __future__ import annotations

import enum
import inspect


def accepts_keyword(fn, name: str) -> bool:
    """True when calling ``fn(..., name=value)`` can succeed.

    ``inspect.signature`` already resolves ``functools.partial`` chains
    and follows ``__wrapped__``; what naive ``name in parameters`` checks
    miss is ``**kwargs`` forwarders, which accept *every* keyword without
    listing any — exactly the shape of the wrapper callables attack
    suites hand to :func:`repro.attacks.dpa.traces_to_success`.  A
    keyword a partial has pre-bound still counts as accepted: a call-site
    keyword overrides the bound one (``functools.partial`` merges with
    call-site precedence).  Builtins whose signature cannot be
    introspected report False — the caller must then invoke ``fn``
    without the keyword.
    """
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False
    param = params.get(name)
    if param is not None:
        return param.kind is not inspect.Parameter.POSITIONAL_ONLY
    return any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in params.values())


class PrivilegeLevel(enum.IntEnum):
    """CPU privilege ring, ordered so ``>=`` means 'at least as privileged'.

    ``USER`` and ``KERNEL`` map onto any ISA's U/S modes.  ``MONITOR`` is
    the most-privileged software level: Sanctum's security monitor,
    TrustZone's monitor code (EL3), or x86 microcode-adjacent firmware.
    """

    USER = 0
    KERNEL = 1
    MONITOR = 2


class World(enum.Enum):
    """TrustZone-style security state of a core or transaction."""

    NORMAL = "normal"
    SECURE = "secure"

    @property
    def is_secure(self) -> bool:
        return self is World.SECURE


class PlatformClass(enum.Enum):
    """The paper's three platform categories (Figure 1 columns)."""

    SERVER_DESKTOP = "server-desktop"
    MOBILE = "mobile"
    EMBEDDED = "embedded"
