"""Cross-cutting enums shared by CPU, memory and architecture layers."""

from __future__ import annotations

import enum


class PrivilegeLevel(enum.IntEnum):
    """CPU privilege ring, ordered so ``>=`` means 'at least as privileged'.

    ``USER`` and ``KERNEL`` map onto any ISA's U/S modes.  ``MONITOR`` is
    the most-privileged software level: Sanctum's security monitor,
    TrustZone's monitor code (EL3), or x86 microcode-adjacent firmware.
    """

    USER = 0
    KERNEL = 1
    MONITOR = 2


class World(enum.Enum):
    """TrustZone-style security state of a core or transaction."""

    NORMAL = "normal"
    SECURE = "secure"

    @property
    def is_secure(self) -> bool:
        return self is World.SECURE


class PlatformClass(enum.Enum):
    """The paper's three platform categories (Figure 1 columns)."""

    SERVER_DESKTOP = "server-desktop"
    MOBILE = "mobile"
    EMBEDDED = "embedded"
