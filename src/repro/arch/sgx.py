"""Intel SGX model: EPC, MEE, OS-managed paging, secure page swap.

The properties Section 3.1 compares — and the attack surface Section 4
exploits — are reproduced mechanistically:

* enclave memory lives in a dedicated physical window (the EPC) covered by
  the :class:`~repro.memory.mee.MemoryEncryptionEngine` → DMA aborts and
  physical dumps see ciphertext;
* EPC pages are only CPU-readable while the owning enclave is the active
  context on that core (abort-page semantics modelled as a bus denial);
* **the untrusted OS owns the page tables** — it can clear present bits,
  which together with the secure-page-swap path decrypting enclave pages
  into L1 is exactly Foreshadow's lever;
* the shared LLC is *not* partitioned and caches are *not* flushed on
  enclave switches (refs [8, 44]: cache attacks on SGX are practical);
* attestation: measurement at build, reports MAC'd with a CPU-fused key.
"""

from __future__ import annotations

from repro.arch.base import (
    AES_TABLES_SIZE,
    ArchFeatures,
    EnclaveHandle,
    SecurityArchitecture,
)
from repro.attestation.measure import Measurement
from repro.attestation.report import AttestationReport
from repro.common import PlatformClass, PrivilegeLevel
from repro.crypto.rng import XorShiftRNG
from repro.errors import AccessFault, EnclaveError
from repro.memory.bus import BusTransaction
from repro.memory.mee import MemoryEncryptionEngine
from repro.memory.paging import FrameAllocator, PAGE_SIZE, PageFlags

#: Enclave virtual base; each enclave gets a 1 MiB VA window.
ENCLAVE_VA_BASE = 0x1000_0000
ENCLAVE_VA_STRIDE = 0x10_0000

EPC_SIZE = 1 << 22  # 4 MiB enclave page cache


class _EPCAccessControl:
    """Abort-page semantics: EPC is only readable in the owning enclave."""

    def __init__(self, sgx: "SGX") -> None:
        self.sgx = sgx

    def check(self, txn: BusTransaction, region) -> None:
        base, end = self.sgx.epc_base, self.sgx.epc_base + EPC_SIZE
        if not (txn.addr < end and base < txn.end):
            return
        if txn.master.kind != "cpu":
            return  # the MEE controller already aborts non-CPU masters
        core_name = txn.master.name.split("-")[0]
        page = txn.addr & ~(PAGE_SIZE - 1)
        owner = self.sgx.epc_owner.get(page)
        active = self.sgx.active_enclave.get(core_name)
        if owner is None or owner != active:
            raise AccessFault(txn.addr, txn.access,
                              "EPC access outside owning enclave (abort page)")


class SGX(SecurityArchitecture):
    """Intel SGX on a stationary high-performance SoC."""

    NAME = "sgx"

    def install(self) -> None:
        soc = self.soc
        dram = soc.regions.get("dram")
        # EPC sits at the bottom of DRAM; page-table frames at the top.
        self.epc_base = dram.base
        self.epc_allocator = FrameAllocator(self.epc_base,
                                            EPC_SIZE // PAGE_SIZE)
        self._rng = XorShiftRNG(0x5E5E)
        #: CPU-fused keys: never exposed outside this object (the hardware).
        self._mee_key = self._rng.next_u64()
        self._attestation_key = self._rng.bytes(32)
        self._swap_key = self._rng.bytes(32)

        self.mee = MemoryEncryptionEngine(self.epc_base, EPC_SIZE,
                                          self._mee_key)
        soc.bus.add_transform("sgx-mee", self.mee)
        soc.bus.add_controller("sgx-mee-dma-abort", self.mee)
        soc.bus.add_controller("sgx-epc-access", _EPCAccessControl(self))

        self.epc_owner: dict[int, int] = {}  # page paddr -> enclave id
        self.active_enclave: dict[str, int | None] = {}
        #: The untrusted OS's page table — SGX trusts it for *management*
        #: only; confidentiality is supposed to come from the EPC + MEE.
        self.os_page_table = soc.make_page_table(asid=1)
        #: Swapped-out page blobs: va -> (ciphertext, mac-ish tag).
        self._swapped: dict[int, bytes] = {}

    def features(self) -> ArchFeatures:
        return ArchFeatures(
            name=self.NAME,
            target_platform=PlatformClass.SERVER_DESKTOP,
            software_tcb="none (CPU microcode only)",
            hardware_tcb="CPU package incl. MEE",
            enclave_count="N",
            memory_encryption=True,
            llc_partitioning=False,
            cache_exclusion=False,
            flush_on_switch=False,
            dma_protection="mee-abort",
            peripheral_secure_channel=False,
            attestation="local+remote",
            code_isolation=True,
            requires_new_hardware=True,
        )

    # -- lifecycle -----------------------------------------------------------

    def create_enclave(self, name: str, size: int = AES_TABLES_SIZE,
                       core_id: int = 0) -> EnclaveHandle:
        enclave_id = self._allocate_id()
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        va_base = ENCLAVE_VA_BASE + enclave_id * ENCLAVE_VA_STRIDE
        first_paddr = None
        for i in range(pages):
            frame = self.epc_allocator.alloc()
            if first_paddr is None:
                first_paddr = frame
            self.epc_owner[frame] = enclave_id
            self.os_page_table.map(
                va_base + i * PAGE_SIZE, frame,
                PageFlags.PRESENT | PageFlags.WRITABLE | PageFlags.USER |
                PageFlags.EXECUTE)
        handle = EnclaveHandle(
            enclave_id=enclave_id, name=name, base=va_base,
            paddr=first_paddr, size=pages * PAGE_SIZE, core_id=core_id,
            domain=f"sgx-enclave-{enclave_id}")
        self.enclaves[enclave_id] = handle
        measurement = Measurement()
        self.enter_enclave(handle)
        try:
            # EADD: every enclave byte is written through the CPU (and
            # therefore through the MEE, which tags it — from now on any
            # DRAM-side tamper is caught on the next enclave read).  The
            # first words carry the enclave's code image (distinct per
            # app), so distinct enclaves get distinct measurements.
            core = self.soc.cores[core_id]
            image = name.encode().ljust(32, b"\x00")[:32]
            for off in range(0, handle.size, 8):
                if off < len(image):
                    word = int.from_bytes(image[off:off + 8], "little")
                else:
                    word = 0
                core.write_mem(handle.base + off, word)
            # EINIT: measure the pages as loaded.
            evidence = bytes(
                self._read_word_as_enclave(handle, off) & 0xFF
                for off in range(0, min(handle.size, 4096), 8))
        finally:
            self.exit_enclave(handle)
        measurement.extend(evidence, label=f"enclave:{name}")
        handle.measurement = measurement.value
        handle.initialized = True
        return handle

    def destroy_enclave(self, handle: EnclaveHandle) -> None:
        for page in [p for p, owner in self.epc_owner.items()
                     if owner == handle.enclave_id]:
            del self.epc_owner[page]
        super().destroy_enclave(handle)

    # -- context switching ---------------------------------------------------------

    def enter_enclave(self, handle: EnclaveHandle) -> None:
        core = self.soc.cores[handle.core_id]
        core.domain = handle.domain
        core.privilege = PrivilegeLevel.USER
        core.mmu.set_context(self.os_page_table.root,
                             asid=self.os_page_table.asid)
        self.active_enclave[core.config.name] = handle.enclave_id

    def exit_enclave(self, handle: EnclaveHandle) -> None:
        core = self.soc.cores[handle.core_id]
        core.domain = None
        core.privilege = PrivilegeLevel.KERNEL
        self.active_enclave[core.config.name] = None
        # No cache flush on exit: SGX's documented (and exploited) gap.

    # -- enclave-context memory access ------------------------------------------------

    def _read_word_as_enclave(self, handle: EnclaveHandle,
                              offset: int) -> int:
        core = self.soc.cores[handle.core_id]
        return core.read_mem(handle.base + offset)

    def enclave_read(self, handle: EnclaveHandle, offset: int) -> int:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside enclave")
        return self._read_word_as_enclave(handle, offset)

    def enclave_write(self, handle: EnclaveHandle, offset: int,
                      value: int) -> None:
        """Word write as the enclave (stores land MEE-encrypted in EPC)."""
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside enclave")
        core = self.soc.cores[handle.core_id]
        core.write_mem(handle.base + offset, value)

    # -- attestation -----------------------------------------------------------------

    def attest(self, handle: EnclaveHandle,
               nonce: bytes) -> AttestationReport:
        if not handle.initialized:
            raise EnclaveError("attesting an uninitialised enclave")
        return AttestationReport.create(
            self._attestation_key, handle.measurement, nonce,
            params=handle.name.encode())

    @property
    def attestation_key_for_verifier(self) -> bytes:
        """Provisioned to the attestation service (the verifier side)."""
        return self._attestation_key

    # -- local attestation (EREPORT / EGETKEY) -------------------------------------

    def _report_key(self, target: EnclaveHandle) -> bytes:
        """The CPU-derived key binding reports to one target enclave."""
        from repro.crypto.hmacmod import hmac_sha256
        return hmac_sha256(self._attestation_key,
                           b"report-key" + target.measurement)

    def local_attest(self, source: EnclaveHandle, target: EnclaveHandle,
                     nonce: bytes) -> AttestationReport:
        """EREPORT: a report about ``source``, verifiable only by ``target``.

        The MAC key is derived from the *target's* identity, so only the
        enclave the report was destined for can check it — the hardware
        primitive under SGX's local-attestation handshake.
        """
        if not source.initialized or not target.initialized:
            raise EnclaveError("local attestation needs initialised enclaves")
        return AttestationReport.create(
            self._report_key(target), source.measurement, nonce,
            params=source.name.encode())

    def egetkey(self, handle: EnclaveHandle) -> bytes:
        """EGETKEY: hand the report key to the *currently executing* enclave.

        The hardware check: only the enclave that is the active context on
        its core may obtain its own report key.
        """
        core = self.soc.cores[handle.core_id]
        if self.active_enclave.get(core.config.name) != handle.enclave_id:
            raise EnclaveError(
                "EGETKEY outside the enclave's execution context")
        return self._report_key(handle)

    # -- secure page swapping (EWB / ELDU) -------------------------------------

    def swap_out(self, handle: EnclaveHandle, page_offset: int) -> None:
        """EWB: encrypt an enclave page out to regular memory, unmap it."""
        va = handle.base + page_offset
        if va % PAGE_SIZE:
            raise EnclaveError("page_offset must be page-aligned")
        entry = self.os_page_table.lookup(va)
        if entry is None:
            raise EnclaveError("page not mapped")
        paddr, _ = entry
        # Hardware path: read the page as the enclave (decrypting), then
        # re-encrypt under the swap key into a software blob.
        self.enter_enclave(handle)
        try:
            plain = bytearray()
            for off in range(0, PAGE_SIZE, 8):
                word = self.soc.cores[handle.core_id].read_mem(va + off)
                plain.extend(word.to_bytes(8, "little"))
        finally:
            self.exit_enclave(handle)
        keystream = XorShiftRNG(
            int.from_bytes(self._swap_key[:8], "little") ^ va)
        blob = bytes(b ^ k for b, k in zip(plain, keystream.bytes(PAGE_SIZE)))
        self._swapped[va] = blob
        self.os_page_table.update_flags(va, clear_flags=PageFlags.PRESENT)
        del self.epc_owner[paddr]
        self.soc.mmus[handle.core_id].flush_tlb()

    def swap_in(self, handle: EnclaveHandle, page_offset: int) -> None:
        """ELDU: decrypt a swapped page back into the EPC — *via the L1*.

        The OS may invoke this at will.  The decrypted words transit the
        core's load/store path inside the enclave context, so the page's
        plaintext ends up L1-resident — the state Foreshadow harvests.
        """
        va = handle.base + page_offset
        blob = self._swapped.pop(va, None)
        if blob is None:
            raise EnclaveError(f"page {va:#x} is not swapped out")
        frame = self.epc_allocator.alloc()
        self.epc_owner[frame] = handle.enclave_id
        self.os_page_table.remap(va, frame)
        self.os_page_table.update_flags(va, set_flags=PageFlags.PRESENT)
        self.soc.mmus[handle.core_id].flush_tlb()
        keystream = XorShiftRNG(
            int.from_bytes(self._swap_key[:8], "little") ^ va)
        plain = bytes(b ^ k for b, k in zip(blob, keystream.bytes(PAGE_SIZE)))
        self.enter_enclave(handle)
        try:
            core = self.soc.cores[handle.core_id]
            for off in range(0, PAGE_SIZE, 8):
                word = int.from_bytes(plain[off:off + 8], "little")
                core.write_mem(va + off, word)
                core.read_mem(va + off)  # decrypted-to-L1 behaviour
        finally:
            self.exit_enclave(handle)
