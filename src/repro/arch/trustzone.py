"""ARM TrustZone model: two worlds, TZASC, monitor, secure boot.

Section 3.2's characterisation, mechanised:

* the system splits into a normal and a **single** secure world — a
  second ``create_enclave`` raises, which is the "costly trust
  relationship" limitation Sanctuary later removes;
* separation is enforced *in hardware on the bus* by the
  :class:`~repro.memory.tzasc.TrustZoneAddressSpaceController`: non-secure
  transactions into secure windows are rejected, which is also the DMA
  protection story ("temporarily assigning memory regions exclusively to
  SoC components");
* the **monitor code** performs world switches and verifies all
  secure-world code during boot using digital signatures (a real RSA
  verification against the vendor key);
* secure channels to peripherals: a TZASC window claimed for one master;
* *no* cache partitioning and *no* flush on world switch — the gap
  TruSpy-style attacks (ref [44]) exploit, reproduced faithfully.
"""

from __future__ import annotations

from repro.arch.base import (
    AES_TABLES_SIZE,
    ArchFeatures,
    EnclaveHandle,
    SecurityArchitecture,
)
from repro.attestation.measure import Measurement
from repro.common import PlatformClass, PrivilegeLevel, World
from repro.crypto.rng import XorShiftRNG
from repro.crypto.rsa import RSA, RSAKey, generate_rsa_key
from repro.crypto.sha256 import sha256
from repro.errors import EnclaveError, SecurityViolation
from repro.memory.paging import PAGE_SIZE
from repro.memory.tzasc import SecureWindow, TrustZoneAddressSpaceController

SECURE_WORLD_SIZE = 1 << 22  # 4 MiB secure world


class TrustZone(SecurityArchitecture):
    """TrustZone on a mobile SoC."""

    NAME = "trustzone"

    def install(self) -> None:
        soc = self.soc
        dram = soc.regions.get("dram")
        self.secure_base = dram.base + dram.size // 8
        self.tzasc = TrustZoneAddressSpaceController()
        self.tzasc.add_window(SecureWindow(
            "secure-world", self.secure_base, SECURE_WORLD_SIZE))
        soc.bus.add_controller("tzasc", self.tzasc)

        self._rng = XorShiftRNG(0x72E5)
        #: Vendor signing key; the public half is fused into the SoC.
        self._vendor_key: RSAKey = generate_rsa_key(256, self._rng)
        self._verifier = RSA(self._vendor_key)
        self.secure_boot_ok = False
        self._secure_image: bytes = b""
        self._peripheral_channels: dict[str, str] = {}
        self._enclave_created = False
        self._alloc_cursor = self.secure_base

    # -- secure boot -----------------------------------------------------------

    def sign_image(self, image: bytes) -> int:
        """Vendor-side signing (happens at the factory, not on-device)."""
        digest = int.from_bytes(sha256(image)[:16], "little")
        return RSA(self._vendor_key).sign_crt(digest % self._vendor_key.n)

    def provision_secure_image(self, image: bytes, signature: int) -> bool:
        """Monitor boot step: verify and install the secure-world image."""
        digest = int.from_bytes(sha256(image)[:16], "little")
        if not self._verifier.verify(digest % self._vendor_key.n, signature):
            self.secure_boot_ok = False
            raise SecurityViolation(
                "secure boot: signature verification failed")
        self._secure_image = image
        # The monitor loads the verified image into the secure window; a
        # CPU in secure state performs the stores, so the TZASC admits them.
        core = self.soc.cores[0]
        saved_world = core.world
        self.soc.set_world(0, World.SECURE)
        try:
            for i in range(0, len(image), 8):
                chunk = image[i:i + 8].ljust(8, b"\x00")
                core.write_mem(self.secure_base + i,
                               int.from_bytes(chunk, "little"))
        finally:
            self.soc.set_world(0, saved_world)
        self.secure_boot_ok = True
        return True

    def boot_measurement(self) -> bytes:
        """Measurement of the verified secure-world image."""
        measurement = Measurement()
        measurement.extend(self._secure_image, label="secure-world-image")
        return measurement.value

    # -- monitor: world switch (SMC) ----------------------------------------------

    def smc(self, core_id: int, to_secure: bool) -> None:
        """Secure Monitor Call: switch one core's world."""
        if to_secure and not self.secure_boot_ok:
            raise SecurityViolation(
                "monitor refuses secure entry before verified boot")
        self.soc.set_world(core_id,
                           World.SECURE if to_secure else World.NORMAL)

    # -- peripheral secure channels ---------------------------------------------------

    def secure_channel(self, peripheral_master: str, window_name: str,
                       base: int, size: int) -> None:
        """Claim a window exclusively for one peripheral + secure world."""
        self.tzasc.add_window(SecureWindow(window_name, base, size,
                                           secure_only=True))
        self.tzasc.claim(window_name, peripheral_master)
        self._peripheral_channels[peripheral_master] = window_name

    def features(self) -> ArchFeatures:
        return ArchFeatures(
            name=self.NAME,
            target_platform=PlatformClass.MOBILE,
            software_tcb="monitor + entire secure world",
            hardware_tcb="CPU security state + TZASC + SoC enhancements",
            enclave_count="1",
            memory_encryption=False,
            llc_partitioning=False,
            cache_exclusion=False,
            flush_on_switch=False,
            dma_protection="tzasc-claim",
            peripheral_secure_channel=True,
            attestation="secure-boot only",
            code_isolation=True,
            requires_new_hardware=False,  # deployed on commodity ARM SoCs
        )

    # -- "enclave" = the one secure world --------------------------------------------

    def create_enclave(self, name: str, size: int = AES_TABLES_SIZE,
                       core_id: int = 0) -> EnclaveHandle:
        if self._enclave_created:
            raise EnclaveError(
                "TrustZone provides a single enclave (the secure world); "
                "deploy additional apps inside it or use Sanctuary")
        if not self.secure_boot_ok:
            # Boot a trivial verified image implicitly for convenience.
            image = f"secure-os:{name}".encode()
            self.provision_secure_image(image, self.sign_image(image))
        self._enclave_created = True
        enclave_id = self._allocate_id()
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        base = self._alloc_cursor + PAGE_SIZE  # skip the image page
        self._alloc_cursor = base + pages * PAGE_SIZE
        handle = EnclaveHandle(
            enclave_id=enclave_id, name=name, base=base, paddr=base,
            size=pages * PAGE_SIZE, core_id=core_id, domain="secure-world",
            measurement=self.boot_measurement(), initialized=True)
        self.enclaves[enclave_id] = handle
        return handle

    def enter_enclave(self, handle: EnclaveHandle) -> None:
        self.smc(handle.core_id, to_secure=True)
        core = self.soc.cores[handle.core_id]
        core.domain = handle.domain
        core.privilege = PrivilegeLevel.KERNEL

    def exit_enclave(self, handle: EnclaveHandle) -> None:
        self.smc(handle.core_id, to_secure=False)
        core = self.soc.cores[handle.core_id]
        core.domain = None
        # No cache flush on the world switch: the TruSpy gap.

    def enclave_read(self, handle: EnclaveHandle, offset: int) -> int:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside secure region")
        return self.soc.cores[handle.core_id].read_mem(handle.base + offset)

    def enclave_write(self, handle: EnclaveHandle, offset: int,
                      value: int) -> None:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside secure region")
        self.soc.cores[handle.core_id].write_mem(handle.base + offset, value)
