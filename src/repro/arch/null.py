"""The no-TEE baseline: plain OS process isolation and nothing else.

Every comparison needs this row: it is what the paper's introduction
describes failing ("flaws in the kernel itself can be used to undermine
process isolation"), and it is the host for attacks that target
unprotected software.
"""

from __future__ import annotations

from repro.arch.base import (
    AES_TABLES_SIZE,
    ArchFeatures,
    EnclaveHandle,
    SecurityArchitecture,
)
from repro.common import PlatformClass
from repro.errors import EnclaveError
from repro.memory.paging import PAGE_SIZE


class NullArchitecture(SecurityArchitecture):
    """No hardware-assisted security: the undefended baseline.

    'Enclaves' are plain memory regions with no protection whatsoever —
    useful as the control group in every experiment.
    """

    NAME = "none"

    def __init__(self, soc, platform: PlatformClass | None = None) -> None:
        self._platform = platform or soc.config.platform
        super().__init__(soc)

    def install(self) -> None:
        dram = self.soc.regions.get("dram")
        self._alloc_cursor = (dram.base + dram.size // 3) & ~0xFFF

    def features(self) -> ArchFeatures:
        return ArchFeatures(
            name=self.NAME,
            target_platform=self._platform,
            software_tcb="entire OS and all applications",
            hardware_tcb="none beyond the CPU itself",
            enclave_count="none",
            memory_encryption=False,
            llc_partitioning=False,
            cache_exclusion=False,
            flush_on_switch=False,
            dma_protection="none",
            peripheral_secure_channel=False,
            attestation="none",
            code_isolation=False,
            requires_new_hardware=False,
        )

    def create_enclave(self, name: str, size: int = AES_TABLES_SIZE,
                       core_id: int = 0) -> EnclaveHandle:
        enclave_id = self._allocate_id()
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        base = self._alloc_cursor
        self._alloc_cursor += pages * PAGE_SIZE
        handle = EnclaveHandle(
            enclave_id=enclave_id, name=name, base=base, paddr=base,
            size=pages * PAGE_SIZE, core_id=core_id, domain=None,
            initialized=True)
        self.enclaves[enclave_id] = handle
        return handle

    def enclave_read(self, handle: EnclaveHandle, offset: int) -> int:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside region")
        return self.soc.cores[handle.core_id].read_mem(handle.base + offset)

    def enclave_write(self, handle: EnclaveHandle, offset: int,
                      value: int) -> None:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside region")
        self.soc.cores[handle.core_id].write_mem(handle.base + offset, value)
