"""TyTAN model: TrustLite extended for real-time, secure boot and storage.

"TyTAN [6], an extension of TrustLite for real-time systems, further adds
secure boot and secure storage."  Modelled as exactly that — a subclass:

* **secure boot**: every trustlet loaded is measured into a boot
  aggregate; :meth:`verify_boot` compares it against the expected value
  and refuses to hand over to the OS on mismatch;
* **secure storage**: seal/unseal blobs under a device key bound to the
  boot measurement (a sealed blob from a different boot state will not
  open);
* **real-time**: trustlet execution and attestation never disable
  interrupts — isolation comes from the locked EA-MPU, not from atomicity,
  so interrupt latency stays bounded (contrast SMART).
"""

from __future__ import annotations

from repro.arch.base import AES_TABLES_SIZE, ArchFeatures, EnclaveHandle
from repro.arch.trustlite import TrustLite
from repro.attestation.measure import Measurement
from repro.crypto.hmacmod import hmac_sha256
from repro.crypto.rng import XorShiftRNG
from repro.errors import SecurityViolation


class TyTAN(TrustLite):
    """TyTAN on the embedded SoC."""

    NAME = "tytan"

    def install(self) -> None:
        super().install()
        self._storage_rng = XorShiftRNG(0x7774)
        self._device_storage_key = self._storage_rng.bytes(32)
        self.boot_aggregate = Measurement()
        self.expected_boot: bytes | None = None

    def features(self) -> ArchFeatures:
        base = super().features()
        from dataclasses import replace
        return replace(
            base,
            name=self.NAME,
            software_tcb="Secure Loader + trustlets + RT scheduler stub",
            attestation="local+remote (secure boot rooted)",
            realtime_capable=True,
        )

    # -- secure boot -----------------------------------------------------------

    def create_enclave(self, name: str, size: int = AES_TABLES_SIZE,
                       core_id: int = 0) -> EnclaveHandle:
        handle = super().create_enclave(name, size, core_id)
        self.boot_aggregate.extend(handle.measurement,
                                   label=f"boot:{name}")
        return handle

    def expect_boot_state(self, measurement: bytes) -> None:
        """Provision the expected boot aggregate (vendor policy)."""
        self.expected_boot = measurement

    def verify_boot(self) -> bool:
        """Secure-boot gate before :meth:`finish_boot`."""
        if self.expected_boot is None:
            return True  # no policy provisioned: first boot records state
        return self.boot_aggregate.value == self.expected_boot

    def finish_boot(self) -> None:
        if not self.verify_boot():
            raise SecurityViolation(
                "secure boot: aggregate differs from provisioned state")
        super().finish_boot()

    # -- secure storage ------------------------------------------------------------

    def _sealing_key(self) -> bytes:
        """Storage key bound to the current boot measurement."""
        return hmac_sha256(self._device_storage_key,
                           self.boot_aggregate.value)

    def seal(self, blob: bytes) -> bytes:
        """Seal ``blob`` to the current boot state; returns the package."""
        key = self._sealing_key()
        stream = XorShiftRNG(int.from_bytes(key[:8], "little"))
        ciphertext = bytes(b ^ s for b, s in
                           zip(blob, stream.bytes(len(blob))))
        tag = hmac_sha256(key, ciphertext)
        return len(blob).to_bytes(4, "little") + ciphertext + tag

    def unseal(self, package: bytes) -> bytes:
        """Open a sealed package; fails if boot state or data changed."""
        length = int.from_bytes(package[:4], "little")
        ciphertext = package[4:4 + length]
        tag = package[4 + length:]
        key = self._sealing_key()
        if hmac_sha256(key, ciphertext) != tag:
            raise SecurityViolation(
                "unseal failed: wrong boot state or tampered blob")
        stream = XorShiftRNG(int.from_bytes(key[:8], "little"))
        return bytes(b ^ s for b, s in
                     zip(ciphertext, stream.bytes(length)))
