"""Sanctuary model: TrustZone-based user-space enclaves on isolated cores.

Sanctuary "solves the main problem of currently deployed TrustZone-based
architectures by providing an arbitrary number of user-space enclaves
without introducing new hardware components".  Mechanically:

* enclaves run in the **normal world** on a temporarily dedicated physical
  core; the secure world holds only vendor security primitives (a small
  attestation service here), so no app developer needs a vendor contract;
* isolation of enclave memory "is enforced by exploiting a feature of
  ARM's TrustZone-enabled address space controller": a TZASC window over
  the enclave's memory, *claimed exclusively* for the enclave's core —
  every other master (other cores, DMA) is rejected at the bus;
* it "cannot provide cache partitioning of the shared last-level cache"
  (no new hardware!), so instead enclave memory is **excluded from the
  shared caches** and core-private caches are flushed on enclave exits.
"""

from __future__ import annotations

from repro.arch.base import (
    AES_TABLES_SIZE,
    ArchFeatures,
    EnclaveHandle,
    SecurityArchitecture,
)
from repro.attestation.measure import Measurement
from repro.attestation.report import AttestationReport
from repro.common import PlatformClass, PrivilegeLevel
from repro.crypto.rng import XorShiftRNG
from repro.errors import EnclaveError
from repro.memory.paging import PAGE_SIZE
from repro.memory.regions import MemoryRegion, Permissions
from repro.memory.tzasc import SecureWindow, TrustZoneAddressSpaceController

#: Dedicated physical pool for Sanctuary enclaves, outside regular DRAM.
POOL_BASE = 0xC000_0000
POOL_SIZE = 1 << 22


class Sanctuary(SecurityArchitecture):
    """Sanctuary on a mobile SoC (no new hardware: TZASC + cache config)."""

    NAME = "sanctuary"

    def install(self) -> None:
        soc = self.soc
        soc.regions.add(MemoryRegion(
            "sanctuary-pool", POOL_BASE, POOL_SIZE,
            perms=Permissions.rwx(), cacheable=True))
        # The defining cache defence: the pool never reaches the shared LLC.
        soc.hierarchy.exclude_from_llc(POOL_BASE, POOL_SIZE)

        self.tzasc = TrustZoneAddressSpaceController()
        soc.bus.add_controller("sanctuary-tzasc", self.tzasc)

        self._rng = XorShiftRNG(0x5AC7)
        #: Vendor-provided security primitive in the secure world: local
        #: attestation under a device key that never leaves it.
        self._attestation_key = self._rng.bytes(32)
        self._alloc_cursor = POOL_BASE
        #: core id -> enclave id currently bound to that core.
        self.core_binding: dict[int, int] = {}

    def features(self) -> ArchFeatures:
        return ArchFeatures(
            name=self.NAME,
            target_platform=PlatformClass.MOBILE,
            software_tcb="vendor security primitives (secure world) only",
            hardware_tcb="TrustZone CPU state + TZASC",
            enclave_count="N",
            memory_encryption=False,
            llc_partitioning=False,
            cache_exclusion=True,
            flush_on_switch=True,
            dma_protection="tzasc-claim",
            peripheral_secure_channel=True,  # inherited TrustZone primitive
            attestation="local+remote",
            code_isolation=True,
            requires_new_hardware=False,
        )

    # -- lifecycle -----------------------------------------------------------

    def create_enclave(self, name: str, size: int = AES_TABLES_SIZE,
                       core_id: int = 0) -> EnclaveHandle:
        if core_id in self.core_binding:
            raise EnclaveError(
                f"core {core_id} already dedicated to enclave "
                f"{self.core_binding[core_id]}")
        enclave_id = self._allocate_id()
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        base = self._alloc_cursor
        self._alloc_cursor += pages * PAGE_SIZE
        if self._alloc_cursor > POOL_BASE + POOL_SIZE:
            raise EnclaveError("sanctuary pool exhausted")

        window = f"sanctuary-{enclave_id}"
        # The TZASC feature: a normal-world window exclusively claimed for
        # the enclave's core.  secure_only=False — enclaves are normal
        # world; exclusivity, not the NS bit, is the isolation.
        self.tzasc.add_window(SecureWindow(window, base, pages * PAGE_SIZE,
                                           secure_only=False))
        core_name = self.soc.cores[core_id].config.name
        self.tzasc.claim(window, core_name)
        self.core_binding[core_id] = enclave_id

        handle = EnclaveHandle(
            enclave_id=enclave_id, name=name, base=base, paddr=base,
            size=pages * PAGE_SIZE, core_id=core_id,
            domain=f"sanctuary-enclave-{enclave_id}")
        handle.metadata["window"] = window
        self.enclaves[enclave_id] = handle
        measurement = Measurement()
        measurement.extend(name.encode(), label=f"sanctuary:{name}")
        handle.measurement = measurement.value
        handle.initialized = True
        return handle

    def destroy_enclave(self, handle: EnclaveHandle) -> None:
        window = handle.metadata.get("window")
        core_name = self.soc.cores[handle.core_id].config.name
        if window is not None:
            self.tzasc.release(window, core_name)
        self.core_binding.pop(handle.core_id, None)
        # Enclave memory scrubbed before the core rejoins the OS pool.
        self.soc.memory.clear_range(handle.paddr, handle.size)
        self.soc.hierarchy.flush_core(handle.core_id)
        super().destroy_enclave(handle)

    # -- context switching ---------------------------------------------------------

    def enter_enclave(self, handle: EnclaveHandle) -> None:
        core = self.soc.cores[handle.core_id]
        core.domain = handle.domain
        core.privilege = PrivilegeLevel.USER  # user-space enclaves
        self.soc.hierarchy.flush_core(handle.core_id)

    def exit_enclave(self, handle: EnclaveHandle) -> None:
        core = self.soc.cores[handle.core_id]
        core.domain = None
        core.privilege = PrivilegeLevel.KERNEL
        self.soc.hierarchy.flush_core(handle.core_id)

    # -- enclave memory access --------------------------------------------------------

    def enclave_read(self, handle: EnclaveHandle, offset: int) -> int:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside enclave")
        return self.soc.cores[handle.core_id].read_mem(handle.base + offset)

    def enclave_write(self, handle: EnclaveHandle, offset: int,
                      value: int) -> None:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside enclave")
        self.soc.cores[handle.core_id].write_mem(handle.base + offset, value)

    # -- attestation (secure-world primitive) ----------------------------------

    def attest(self, handle: EnclaveHandle,
               nonce: bytes) -> AttestationReport:
        if not handle.initialized:
            raise EnclaveError("attesting an uninitialised enclave")
        return AttestationReport.create(
            self._attestation_key, handle.measurement, nonce,
            params=handle.name.encode())

    @property
    def attestation_key_for_verifier(self) -> bytes:
        return self._attestation_key
