"""Common interface every security architecture implements.

The comparison engine (TAB-S3) reads :class:`ArchFeatures`; the attack
suite drives enclaves through :class:`EnclaveHandle` and the standard
:class:`AESVictim` deployment, which every architecture can host.  The
victim's table lookups go through the *full* simulated memory path of its
SoC — MMU, bus controllers, cache hierarchy — so whatever protections the
architecture installed are what the attacker actually faces.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.attestation.report import AttestationReport
from repro.common import PlatformClass
from repro.cpu.soc import SoC
from repro.crypto.aes import TTableAES
from repro.errors import EnclaveError

#: Size of the five AES lookup tables (Te0-Te3 + final S-box), each 256
#: 4-byte entries, padded to its own 1 KiB so tables never share lines.
AES_TABLE_STRIDE = 1024
AES_TABLES_SIZE = 5 * AES_TABLE_STRIDE
#: Enclave-relative offset where the victim stores its AES key (two words).
AES_KEY_OFFSET = AES_TABLES_SIZE


@dataclass(frozen=True)
class ArchFeatures:
    """The Section-3 comparison axes, one row of TAB-S3."""

    name: str
    target_platform: PlatformClass
    software_tcb: str  # what software must be trusted
    hardware_tcb: str  # what hardware must be trusted
    enclave_count: str  # "1" | "N" | "none"
    memory_encryption: bool
    llc_partitioning: bool
    cache_exclusion: bool
    flush_on_switch: bool
    dma_protection: str  # "none" | "mee-abort" | "mc-filter" | "tzasc-claim"
    peripheral_secure_channel: bool
    attestation: str  # "none" | "local+remote" | "remote"
    code_isolation: bool
    requires_new_hardware: bool
    realtime_capable: bool = True


@dataclass
class EnclaveHandle:
    """One protected execution compartment."""

    enclave_id: int
    name: str
    base: int  # virtual base of enclave memory as the enclave sees it
    paddr: int  # physical base
    size: int
    core_id: int
    domain: str
    measurement: bytes = b""
    initialized: bool = False
    metadata: dict = field(default_factory=dict)


class SecurityArchitecture(abc.ABC):
    """Base class: lifecycle + the feature/attack-facing API."""

    #: Human-readable architecture name (class attribute in subclasses).
    NAME = "abstract"

    def __init__(self, soc: SoC) -> None:
        self.soc = soc
        self._next_enclave_id = 1
        self.enclaves: dict[int, EnclaveHandle] = {}
        self.install()

    # -- subclass responsibilities ------------------------------------------

    @abc.abstractmethod
    def install(self) -> None:
        """Configure the SoC: bus controllers, regions, monitor state."""

    @abc.abstractmethod
    def features(self) -> ArchFeatures:
        """Static + mechanism-derived feature row."""

    @abc.abstractmethod
    def create_enclave(self, name: str, size: int = AES_TABLES_SIZE,
                       core_id: int = 0) -> EnclaveHandle:
        """Allocate and protect an enclave; measurement covers its memory."""

    @abc.abstractmethod
    def enclave_read(self, handle: EnclaveHandle, offset: int) -> int:
        """One word read *as the enclave* at ``base + offset``.

        Implementations must route through the SoC's real memory path with
        the enclave's execution context active, so the access is subject
        to — and shielded by — whatever the architecture installed.
        """

    @abc.abstractmethod
    def enclave_write(self, handle: EnclaveHandle, offset: int,
                      value: int) -> None:
        """One word write as the enclave at ``base + offset``."""

    def attest(self, handle: EnclaveHandle,
               nonce: bytes) -> AttestationReport:
        """Produce an attestation report for the enclave, if supported."""
        raise EnclaveError(f"{self.NAME} does not support attestation")

    # -- shared helpers -------------------------------------------------------

    def _allocate_id(self) -> int:
        enclave_id = self._next_enclave_id
        self._next_enclave_id += 1
        return enclave_id

    def destroy_enclave(self, handle: EnclaveHandle) -> None:
        """Tear an enclave down (subclasses extend for cleanup duties)."""
        self.enclaves.pop(handle.enclave_id, None)
        handle.initialized = False

    def attacker_can_map(self, paddr: int) -> bool:
        """Can an attacker-controlled address space map ``paddr`` at all?

        Bus-level defences say no at transaction time; *translation-level*
        defences (Sanctum's page-walker ownership check) say no here —
        the attacker never obtains a usable virtual mapping.  Default:
        yes (no translation-level defence).
        """
        return True

    def alloc_attacker_page(self) -> int:
        """A physical page an unprivileged attacker process may use freely.

        The default hands out plain DRAM pages from the middle of memory.
        Architectures whose defence acts through frame allocation
        (Sanctum's page colouring) override this: attacker pages then come
        only from the colours the OS is allowed to allocate, which is the
        entire mechanism.
        """
        if not hasattr(self, "_attacker_allocator"):
            from repro.memory.paging import FrameAllocator
            dram = self.soc.regions.get("dram")
            base = dram.base + dram.size // 2
            self._attacker_allocator = FrameAllocator(base, 2048)
        return self._attacker_allocator.alloc()

    # -- the standard cache-attack victim ---------------------------------------

    def deploy_aes_victim(self, key: bytes,
                          core_id: int = 0) -> "AESVictim":
        """Host a T-table AES service inside a fresh enclave.

        The returned victim's ``encrypt`` runs with the enclave context
        active on ``core_id``; each T-table lookup performs a real word
        read at ``table_base + table*1024 + index*4`` through the SoC.
        """
        handle = self.create_enclave(f"aes-victim-{self._next_enclave_id}",
                                     size=AES_TABLES_SIZE + 64,
                                     core_id=core_id)
        return AESVictim(self, handle, key)

    # -- context management used by AESVictim --------------------------------------

    def enter_enclave(self, handle: EnclaveHandle) -> None:
        """Make ``handle`` the active context on its core (default: domain)."""
        core = self.soc.cores[handle.core_id]
        core.domain = handle.domain

    def exit_enclave(self, handle: EnclaveHandle) -> None:
        """Leave enclave context (default: restore OS domain)."""
        core = self.soc.cores[handle.core_id]
        core.domain = None


class AESVictim:
    """A T-table AES-128 service running inside an enclave.

    This is the shared victim of every cache side-channel experiment
    (TAB-S41): same cipher, same table layout, different architecture
    underneath.
    """

    def __init__(self, arch: SecurityArchitecture, handle: EnclaveHandle,
                 key: bytes) -> None:
        self.arch = arch
        self.handle = handle
        self.key = key
        self.table_base = handle.base  # enclave-virtual address of Te0
        self.encryptions = 0

        # The enclave provisions its key into protected memory — this is
        # the secret Foreshadow-class attacks try to pull out of the L1.
        arch.enter_enclave(handle)
        try:
            for i in range(2):
                arch.enclave_write(
                    handle, AES_KEY_OFFSET + 8 * i,
                    int.from_bytes(key[8 * i:8 * i + 8], "little"))
        finally:
            arch.exit_enclave(handle)

        def on_lookup(table: int, index: int) -> None:
            # Word-aligned touch of the entry's cache line: the timing
            # channel is line-granular, so alignment loses nothing.
            offset = (table * AES_TABLE_STRIDE + index * 4) & ~7
            self.arch.enclave_read(self.handle, offset)

        self._cipher = TTableAES(key, on_lookup=on_lookup)

    @property
    def core_id(self) -> int:
        return self.handle.core_id

    @property
    def table_paddr(self) -> int:
        """Physical base of the victim's tables (oracle for tests only)."""
        return self.handle.paddr

    def encrypt(self, plaintext: bytes) -> bytes:
        """Service one encryption request inside the enclave.

        The key is (re)loaded from enclave memory first — on every real
        TEE the key schedule transits the L1 when the enclave runs, which
        is the state terminal-fault attacks harvest.
        """
        self.arch.enter_enclave(self.handle)
        try:
            for i in range(2):
                self.arch.enclave_read(self.handle, AES_KEY_OFFSET + 8 * i)
            ciphertext = self._cipher.encrypt_block(plaintext)
        finally:
            self.arch.exit_enclave(self.handle)
        self.encryptions += 1
        return ciphertext
