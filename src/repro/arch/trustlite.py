"""TrustLite model: Secure Loader + locked EA-MPU trustlets.

"TrustLite leverages an (extended) execution-aware Memory Protection Unit
and generalizes the concept of a read-only attestation code to freely-
configurable regions, called Trustlets."  The boot protocol is modelled in
order: (1) the Secure Loader, conceptually in ROM, loads trustlets and
configures the EA-MPU; (2) the EA-MPU configuration is **locked** —
regions are static, so SMART-style cleanup is unnecessary; (3) the
(untrusted) OS starts.

Per the paper, "side-channel and DMA attacks are not part of the attacker
model": the EA-MPU does not see DMA traffic, which the DMA-attack
experiment demonstrates.
"""

from __future__ import annotations

from repro.arch.base import (
    AES_TABLES_SIZE,
    ArchFeatures,
    EnclaveHandle,
    SecurityArchitecture,
)
from repro.attestation.measure import Measurement
from repro.attestation.report import AttestationReport
from repro.common import PlatformClass
from repro.crypto.rng import XorShiftRNG
from repro.errors import EnclaveError, SecurityViolation
from repro.memory.mpu import ExecutionAwareMPU

#: Trustlet code/data live in a carved-up slice of embedded DRAM.
TRUSTLET_POOL_BASE = 0x8002_0000
TRUSTLET_CODE_SIZE = 0x1000
TRUSTLET_SLOT = 0x4000  # code page + data pages per trustlet


class TrustLite(SecurityArchitecture):
    """TrustLite on the embedded SoC."""

    NAME = "trustlite"

    def install(self) -> None:
        self.mpu = ExecutionAwareMPU(max_regions=16, default_allow=True)
        self.soc.bus.add_controller("trustlite-ea-mpu", self.mpu)
        self._rng = XorShiftRNG(0x7125)
        self._attestation_key = self._rng.bytes(32)
        self._slot_cursor = TRUSTLET_POOL_BASE
        self.boot_finished = False

    def finish_boot(self) -> None:
        """Secure Loader done: lock the EA-MPU, hand over to the OS."""
        self.mpu.lock()
        self.boot_finished = True

    def features(self) -> ArchFeatures:
        return ArchFeatures(
            name=self.NAME,
            target_platform=PlatformClass.EMBEDDED,
            software_tcb="Secure Loader (ROM) + trustlet code",
            hardware_tcb="EA-MPU with lock",
            enclave_count="N (static, fixed at boot)",
            memory_encryption=False,
            llc_partitioning=False,
            cache_exclusion=False,
            flush_on_switch=False,
            dma_protection="none",
            peripheral_secure_channel=False,
            attestation="local+remote",
            code_isolation=True,
            requires_new_hardware=True,
            # TyTAN exists precisely because TrustLite gives no real-time
            # guarantees (paper Section 3.3).
            realtime_capable=False,
        )

    # -- trustlets are the enclaves --------------------------------------------

    def create_enclave(self, name: str, size: int = AES_TABLES_SIZE,
                       core_id: int = 0) -> EnclaveHandle:
        if self.boot_finished:
            raise SecurityViolation(
                "EA-MPU locked: trustlets are configured at boot only")
        enclave_id = self._allocate_id()
        code_base = self._slot_cursor
        data_base = code_base + TRUSTLET_CODE_SIZE
        data_size = max(size, 8)
        if data_size > TRUSTLET_SLOT - TRUSTLET_CODE_SIZE:
            raise EnclaveError("trustlet data exceeds slot size")
        self._slot_cursor += TRUSTLET_SLOT
        self.mpu.protect_trustlet(name, code_base, TRUSTLET_CODE_SIZE,
                                  data_base, data_size)
        # Secure Loader writes a placeholder code image and measures it.
        image = f"trustlet:{name}".encode().ljust(64, b"\x00")
        self.soc.memory.write_bytes(code_base, image)
        measurement = Measurement()
        measurement.extend_memory(self.soc.memory, code_base, len(image),
                                  label=f"trustlet:{name}")
        handle = EnclaveHandle(
            enclave_id=enclave_id, name=name, base=data_base,
            paddr=data_base, size=data_size, core_id=core_id,
            domain=f"trustlet-{enclave_id}",
            measurement=measurement.value, initialized=True)
        handle.metadata["code_base"] = code_base
        handle.metadata["code_size"] = TRUSTLET_CODE_SIZE
        self.enclaves[enclave_id] = handle
        return handle

    # -- execution-aware access -----------------------------------------------------

    def _run_as_trustlet(self, handle: EnclaveHandle, fn):
        """Execute ``fn`` with the PC inside the trustlet's code region."""
        core = self.soc.cores[handle.core_id]
        return core.execute_firmware(handle.metadata["code_base"] + 0x10, fn)

    def enclave_read(self, handle: EnclaveHandle, offset: int) -> int:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside trustlet data")
        return self._run_as_trustlet(
            handle, lambda core: core.read_mem(handle.base + offset))

    def enclave_write(self, handle: EnclaveHandle, offset: int,
                      value: int) -> None:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside trustlet data")
        self._run_as_trustlet(
            handle, lambda core: core.write_mem(handle.base + offset, value))

    # -- attestation (an attestation trustlet holds the key) --------------------------

    def attest(self, handle: EnclaveHandle,
               nonce: bytes) -> AttestationReport:
        if not handle.initialized:
            raise EnclaveError("attesting an uninitialised trustlet")
        return AttestationReport.create(
            self._attestation_key, handle.measurement, nonce,
            params=handle.name.encode())

    @property
    def attestation_key_for_verifier(self) -> bytes:
        return self._attestation_key
