"""Sancus model: a zero-software trusted computing base.

"Sancus [33] reduces SMART's TCB to pure hardware."  The real Sancus
goes further than attestation: it provides *software-module isolation*
enforced entirely by hardware program-counter-based access logic, and a
hardware key-derivation hierarchy (``K_{N,SP,SM}`` = a MAC chain over
node key, software-provider id and module identity) — no software, not
even a loader, is trusted.  Both are modelled:

* **attestation** — an MMIO HMAC engine whose key exists only inside the
  hardware; software invokes it, never touches key material;
* **module isolation** — loading a module makes the hardware derive its
  protection descriptor from the (text, data) ranges: data is accessible
  only while the PC is inside the module's text section.  There is no
  configuration interface to lock because there is no configuration
  software at all;
* **per-module keys** — the engine derives ``K_module = HMAC(K_N,
  SP || identity)`` in hardware, so a module's reports are bound to its
  *measured* identity: change a byte of module text and the derived key
  (and every MAC made with it) changes.

Consequences visible in experiments: SMART's interrupt/cleanup lesions
have no analogue (no working copy ever exists in RAM), attestation is
atomic in hardware, and module isolation survives a fully compromised OS
— while DMA remains outside the threat model, as the paper notes for
this device class.
"""

from __future__ import annotations

from repro.arch.base import (
    AES_TABLES_SIZE,
    ArchFeatures,
    EnclaveHandle,
    SecurityArchitecture,
)
from repro.attestation.report import AttestationReport
from repro.common import PlatformClass
from repro.crypto.hmacmod import hmac_sha256
from repro.crypto.rng import XorShiftRNG
from repro.errors import AccessFault, EnclaveError
from repro.memory.bus import BusMaster, BusTransaction

#: Module slots carved from embedded DRAM (text page + data pages).
MODULE_POOL_BASE = 0x8008_0000
MODULE_TEXT_SIZE = 0x1000
MODULE_SLOT = 0x4000


class _HardwareHMACEngine:
    """The attestation/key-derivation peripheral: node key sealed inside."""

    def __init__(self, bus, node_key: bytes) -> None:
        self._bus = bus
        self._node_key = node_key  # exists only in this object == silicon
        self.master = BusMaster("sancus-hmac-engine", kind="cpu",
                                secure_capable=True)
        self.invocations = 0

    def read_region(self, base: int, size: int) -> bytes:
        words = []
        for off in range(0, size, 8):
            txn = BusTransaction(self.master, base + off, "read", 8)
            words.append(self._bus.read(txn))
        return b"".join(words)[:size]

    def measure(self, base: int, size: int) -> bytes:
        self.invocations += 1
        return hmac_sha256(self._node_key, self.read_region(base, size))

    def derive_module_key(self, provider: bytes, identity: bytes) -> bytes:
        """K_module = HMAC(K_N, SP || identity) — the Sancus chain."""
        return hmac_sha256(self._node_key, provider + identity)

    def attest(self, base: int, size: int, nonce: bytes, params: bytes,
               dest_addr: int) -> AttestationReport:
        measurement = self.measure(base, size)
        return AttestationReport.create(self._node_key, measurement, nonce,
                                        params, dest_addr)


class _ModuleAccessLogic:
    """The hardware PC-comparison logic protecting module data sections.

    One descriptor per loaded module, derived by hardware at load time.
    Not an MPU: there are no configuration registers — software cannot
    add, remove or alter descriptors.
    """

    def __init__(self) -> None:
        self._descriptors: list[tuple[int, int, int, int]] = []

    def protect(self, text_base: int, text_size: int, data_base: int,
                data_size: int) -> None:
        self._descriptors.append((text_base, text_size, data_base,
                                  data_size))

    def check(self, txn: BusTransaction, region) -> None:
        """Bus hook: module data only for the module's own text."""
        if txn.master.kind != "cpu":
            return  # DMA is outside the device class's threat model
        for text_base, text_size, data_base, data_size in self._descriptors:
            if not (data_base <= txn.addr < data_base + data_size):
                continue
            pc = txn.pc
            if pc is not None and text_base <= pc < text_base + text_size:
                return
            raise AccessFault(
                txn.addr, txn.access,
                "sancus: module data accessible only from module text")


class Sancus(SecurityArchitecture):
    """Sancus on the embedded SoC."""

    NAME = "sancus"

    def __init__(self, soc, provider_id: bytes = b"SP-0001") -> None:
        self.provider_id = provider_id
        super().__init__(soc)

    def install(self) -> None:
        self._rng = XorShiftRNG(0x5A9C05)
        self._node_key = self._rng.bytes(32)
        self.engine = _HardwareHMACEngine(self.soc.bus, self._node_key)
        self.access_logic = _ModuleAccessLogic()
        self.soc.bus.add_controller("sancus-module-logic", self.access_logic)
        self._slot_cursor = MODULE_POOL_BASE

    def features(self) -> ArchFeatures:
        return ArchFeatures(
            name=self.NAME,
            target_platform=PlatformClass.EMBEDDED,
            software_tcb="none",
            hardware_tcb="HMAC/key-derivation engine + PC access logic",
            enclave_count="N (hardware-managed modules)",
            memory_encryption=False,
            llc_partitioning=False,
            cache_exclusion=False,
            flush_on_switch=False,
            dma_protection="none",
            peripheral_secure_channel=False,
            attestation="remote",
            code_isolation=True,
            requires_new_hardware=True,
            realtime_capable=True,  # atomic hardware attestation
        )

    # -- software modules are the enclaves --------------------------------------

    def create_enclave(self, name: str, size: int = AES_TABLES_SIZE,
                       core_id: int = 0) -> EnclaveHandle:
        enclave_id = self._allocate_id()
        text_base = self._slot_cursor
        data_base = text_base + MODULE_TEXT_SIZE
        data_size = max(size, 8)
        if data_size > MODULE_SLOT - MODULE_TEXT_SIZE:
            raise EnclaveError("module data exceeds slot size")
        self._slot_cursor += MODULE_SLOT
        # Deploying a module: its text is written to memory; the hardware
        # derives the protection descriptor and the module key from it.
        image = f"module:{name}".encode().ljust(64, b"\x00")
        self.soc.memory.write_bytes(text_base, image)
        self.access_logic.protect(text_base, MODULE_TEXT_SIZE,
                                  data_base, data_size)
        identity = self.engine.measure(text_base, len(image))
        module_key = self.engine.derive_module_key(self.provider_id,
                                                   identity)
        handle = EnclaveHandle(
            enclave_id=enclave_id, name=name, base=data_base,
            paddr=data_base, size=data_size, core_id=core_id,
            domain=f"sancus-module-{enclave_id}",
            measurement=identity, initialized=True)
        handle.metadata["text_base"] = text_base
        handle.metadata["text_size"] = MODULE_TEXT_SIZE
        handle.metadata["module_key"] = module_key
        self.enclaves[enclave_id] = handle
        return handle

    def _run_as_module(self, handle: EnclaveHandle, fn):
        core = self.soc.cores[handle.core_id]
        return core.execute_firmware(handle.metadata["text_base"] + 0x10,
                                     fn)

    def enclave_read(self, handle: EnclaveHandle, offset: int) -> int:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside module data")
        return self._run_as_module(
            handle, lambda core: core.read_mem(handle.base + offset))

    def enclave_write(self, handle: EnclaveHandle, offset: int,
                      value: int) -> None:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside module data")
        self._run_as_module(
            handle, lambda core: core.write_mem(handle.base + offset,
                                                value))

    # -- attestation -----------------------------------------------------------

    def shared_key_for_verifier(self) -> bytes:
        """Factory provisioning: the verifier's copy of the node key."""
        return self._node_key

    def module_key_for_verifier(self, handle: EnclaveHandle) -> bytes:
        """The provider derives the same module key off-device."""
        return hmac_sha256(self._node_key,
                           self.provider_id + handle.measurement)

    def attest_region(self, base: int, size: int, nonce: bytes,
                      params: bytes = b"",
                      dest_addr: int = 0) -> AttestationReport:
        """One MMIO invocation of the hardware engine (node key)."""
        return self.engine.attest(base, size, nonce, params, dest_addr)

    def attest(self, handle: EnclaveHandle,
               nonce: bytes) -> AttestationReport:
        """Module attestation: MAC'd with the module's *derived* key."""
        if not handle.initialized:
            raise EnclaveError("attesting an unloaded module")
        return AttestationReport.create(
            handle.metadata["module_key"], handle.measurement, nonce,
            params=handle.name.encode())

    def expected_measurement(self, base: int, size: int) -> bytes:
        region = self.soc.memory.read_bytes(base, size)
        return hmac_sha256(self._node_key, region)
