"""Sanctum model: monitor-owned paging, LLC page colouring, DMA filter.

Sanctum "resembles Intel SGX regarding its high-level concept" but differs
in exactly the ways Section 3.1 lists, and each difference is mechanised:

* the microcode TCB becomes a software **monitor**: enclave page tables
  are created and owned by the monitor; the OS never holds a writable
  reference to them (so the Foreshadow PTE lever does not exist);
* isolation is enforced by "small hardware changes around the page table
  walker": a walk hook on every MMU vetoes any translation that resolves
  into an enclave-owned frame from outside that enclave;
* **no memory encryption** — a physical bus probe sees enclave plaintext
  (contrast with SGX's MEE);
* "basic DMA attack protection by modifying the memory controller" — a
  whitelist filter confines DMA to a dedicated window;
* **LLC partitioning through page colouring**: enclave frames come from
  reserved colours, so no attacker-reachable address maps to an enclave
  LLC set; core-private caches are flushed on enclave switches.
"""

from __future__ import annotations

from repro.arch.base import (
    AES_TABLES_SIZE,
    ArchFeatures,
    EnclaveHandle,
    SecurityArchitecture,
)
from repro.attestation.measure import Measurement
from repro.attestation.report import AttestationReport
from repro.cache.partition import color_of, num_colors
from repro.common import PlatformClass, PrivilegeLevel
from repro.crypto.rng import XorShiftRNG
from repro.errors import EnclaveError, PageFault
from repro.memory.dma import DMAFilter
from repro.memory.paging import PAGE_SIZE, PageFlags

ENCLAVE_VA_BASE = 0x2000_0000
ENCLAVE_VA_STRIDE = 0x10_0000

#: Size of the DMA-permitted window at the top of the OS half of DRAM.
DMA_WINDOW_SIZE = 1 << 20


class Sanctum(SecurityArchitecture):
    """Sanctum on an open RISC-V-style high-performance SoC."""

    NAME = "sanctum"

    def install(self) -> None:
        soc = self.soc
        dram = soc.regions.get("dram")
        llc = soc.hierarchy.l2
        self.colors = num_colors(llc.num_sets, llc.line_size)
        #: Colours reserved for enclaves (the monitor's allocation policy).
        self.enclave_colors = {self.colors - 1} if self.colors > 1 else set()

        self._rng = XorShiftRNG(0x5A9C)
        self._attestation_key = self._rng.bytes(32)

        #: frame paddr -> owning enclave id (the walker's isolation table).
        self.frame_owner: dict[int, int] = {}
        self.active_enclave: dict[int, int | None] = {}

        # Walker hardware change: installed on every core's MMU.
        for core_id, mmu in enumerate(soc.mmus):
            mmu.walk_hooks.append(self._make_walk_hook(core_id))

        # Memory-controller DMA filter: DMA confined to a fixed window.
        self.dma_window_base = dram.base + dram.size // 4
        soc.bus.add_controller(
            "sanctum-dma-filter",
            DMAFilter(self.dma_window_base, DMA_WINDOW_SIZE))

        # Frame pools: enclave frames from reserved colours, OS/user frames
        # from the rest.  Both walk the same DRAM range.
        self._frame_cursor = dram.base
        self._frame_limit = dram.base + dram.size // 4
        self._free_enclave_frames: list[int] = []
        self._free_user_frames: list[int] = []

        #: The untrusted OS's own address space (it cannot map enclave
        #: frames into it: the walk hook fires even for kernel mappings).
        self.os_page_table = soc.make_page_table(asid=1)

    # -- frame allocation under the colouring policy -------------------------

    def _refill_frames(self) -> None:
        llc = self.soc.hierarchy.l2
        while not self._free_enclave_frames or not self._free_user_frames:
            if self._frame_cursor + PAGE_SIZE > self._frame_limit:
                raise EnclaveError("Sanctum frame pool exhausted")
            frame = self._frame_cursor
            self._frame_cursor += PAGE_SIZE
            color = color_of(frame, llc.num_sets, llc.line_size)
            if color in self.enclave_colors:
                self._free_enclave_frames.append(frame)
            else:
                self._free_user_frames.append(frame)

    def alloc_enclave_frame(self) -> int:
        """Monitor-only: a frame from the reserved enclave colours."""
        self._refill_frames()
        return self._free_enclave_frames.pop(0)

    def alloc_attacker_page(self) -> int:
        """OS/user frames never carry an enclave colour — by policy."""
        self._refill_frames()
        return self._free_user_frames.pop(0)

    def attacker_can_map(self, paddr: int) -> bool:
        """The walker check: enclave-owned frames are unmappable outside."""
        from repro.memory.paging import PAGE_SIZE
        return (paddr & ~(PAGE_SIZE - 1)) not in self.frame_owner

    # -- the page-table-walker hardware change ---------------------------------

    def _make_walk_hook(self, core_id: int):
        def hook(va: int, paddr: int, flags: PageFlags,
                 privilege: PrivilegeLevel, secure: bool) -> None:
            owner = self.frame_owner.get(paddr & ~(PAGE_SIZE - 1))
            if owner is None:
                return
            if self.active_enclave.get(core_id) != owner:
                fault = PageFault(va, "read",
                                  "sanctum: frame owned by another enclave")
                fault.paddr = None  # the walker aborts; nothing forwards
                fault.flags = flags
                raise fault
        return hook

    def features(self) -> ArchFeatures:
        return ArchFeatures(
            name=self.NAME,
            target_platform=PlatformClass.SERVER_DESKTOP,
            software_tcb="security monitor",
            hardware_tcb="CPU + page-walker checks + MC DMA filter",
            enclave_count="N",
            memory_encryption=False,
            llc_partitioning=True,
            cache_exclusion=False,
            flush_on_switch=True,
            dma_protection="mc-filter",
            peripheral_secure_channel=False,
            attestation="local+remote",
            code_isolation=True,
            requires_new_hardware=True,
        )

    # -- lifecycle ------------------------------------------------------------

    def create_enclave(self, name: str, size: int = AES_TABLES_SIZE,
                       core_id: int = 0) -> EnclaveHandle:
        enclave_id = self._allocate_id()
        pages = (size + PAGE_SIZE - 1) // PAGE_SIZE
        va_base = ENCLAVE_VA_BASE + enclave_id * ENCLAVE_VA_STRIDE
        # The monitor builds the enclave's page table itself; the OS never
        # sees it.  Stored on the handle's metadata, not reachable by
        # attacker-facing APIs.
        page_table = self.soc.make_page_table(asid=16 + enclave_id)
        first = None
        frames = []
        for i in range(pages):
            frame = self.alloc_enclave_frame()
            frames.append(frame)
            if first is None:
                first = frame
            self.frame_owner[frame] = enclave_id
            page_table.map(
                va_base + i * PAGE_SIZE, frame,
                PageFlags.PRESENT | PageFlags.WRITABLE | PageFlags.USER |
                PageFlags.EXECUTE)
        handle = EnclaveHandle(
            enclave_id=enclave_id, name=name, base=va_base, paddr=first,
            size=pages * PAGE_SIZE, core_id=core_id,
            domain=f"sanctum-enclave-{enclave_id}")
        handle.metadata["page_table"] = page_table
        handle.metadata["frames"] = frames
        self.enclaves[enclave_id] = handle
        measurement = Measurement()
        for frame in frames:
            measurement.extend_memory(self.soc.memory, frame, PAGE_SIZE,
                                      label=f"{name}:frame")
        handle.measurement = measurement.value
        handle.initialized = True
        return handle

    def destroy_enclave(self, handle: EnclaveHandle) -> None:
        for frame in handle.metadata.get("frames", []):
            self.frame_owner.pop(frame, None)
            self.soc.memory.clear_range(frame, PAGE_SIZE)  # monitor scrubs
            self._free_enclave_frames.append(frame)
        super().destroy_enclave(handle)

    # -- context switching -----------------------------------------------------

    def enter_enclave(self, handle: EnclaveHandle) -> None:
        core = self.soc.cores[handle.core_id]
        core.domain = handle.domain
        core.privilege = PrivilegeLevel.USER
        page_table = handle.metadata["page_table"]
        core.mmu.set_context(page_table.root, asid=page_table.asid)
        self.active_enclave[handle.core_id] = handle.enclave_id
        # Core-exclusive caches flushed on the way *in* as well: no OS
        # state survives into the enclave's timing.
        self.soc.hierarchy.flush_core(handle.core_id)
        core.mmu.flush_tlb()

    def exit_enclave(self, handle: EnclaveHandle) -> None:
        core = self.soc.cores[handle.core_id]
        core.domain = None
        core.privilege = PrivilegeLevel.KERNEL
        core.mmu.set_context(self.os_page_table.root,
                             asid=self.os_page_table.asid)
        self.active_enclave[handle.core_id] = None
        self.soc.hierarchy.flush_core(handle.core_id)
        core.mmu.flush_tlb()

    # -- enclave memory access -----------------------------------------------------

    def enclave_read(self, handle: EnclaveHandle, offset: int) -> int:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside enclave")
        return self.soc.cores[handle.core_id].read_mem(handle.base + offset)

    def enclave_write(self, handle: EnclaveHandle, offset: int,
                      value: int) -> None:
        if not 0 <= offset < handle.size:
            raise EnclaveError(f"offset {offset:#x} outside enclave")
        self.soc.cores[handle.core_id].write_mem(handle.base + offset, value)

    # -- attestation ------------------------------------------------------------------

    def attest(self, handle: EnclaveHandle,
               nonce: bytes) -> AttestationReport:
        if not handle.initialized:
            raise EnclaveError("attesting an uninitialised enclave")
        return AttestationReport.create(
            self._attestation_key, handle.measurement, nonce,
            params=handle.name.encode())

    @property
    def attestation_key_for_verifier(self) -> bytes:
        return self._attestation_key
