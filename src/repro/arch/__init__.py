"""Hardware-assisted security architectures (Section 3 of the paper).

Each module configures a simulated :class:`~repro.cpu.soc.SoC` the way the
real architecture configures real silicon: which bus controllers exist,
who owns the page tables, what the cache hierarchy does on enclave
switches, where attestation keys live.  The common interface in
:mod:`repro.arch.base` is what the attack suite and the comparison engine
drive.

========== ============================ ==================================
module     architecture                 defining mechanism modelled
========== ============================ ==================================
sgx        Intel SGX [16]               EPC + MEE, OS-managed paging,
                                        secure page swap, attestation keys
sanctum    Sanctum [11]                 monitor-owned paging, LLC page
                                        colouring, DMA filter
trustzone  ARM TrustZone [2]            two worlds, TZASC, monitor,
                                        secure boot, peripheral channels
sanctuary  Sanctuary [7]                core-isolated user-space enclaves,
                                        cache exclusion
smart      SMART [12]                   ROM + PC-gated key, interrupt
                                        discipline, cleanup
sancus     Sancus [33]                  zero-software TCB (HW HMAC engine)
trustlite  TrustLite [26]               Secure Loader + locked EA-MPU
tytan      TyTAN [6]                    TrustLite + secure boot/storage,
                                        real-time capable
========== ============================ ==================================
"""

from repro.arch.base import (
    AESVictim,
    ArchFeatures,
    EnclaveHandle,
    SecurityArchitecture,
)
from repro.arch.sgx import SGX
from repro.arch.sanctum import Sanctum
from repro.arch.trustzone import TrustZone
from repro.arch.sanctuary import Sanctuary
from repro.arch.smart import SMART
from repro.arch.sancus import Sancus
from repro.arch.trustlite import TrustLite
from repro.arch.tytan import TyTAN

ALL_ARCHITECTURES = (
    SGX, Sanctum, TrustZone, Sanctuary, SMART, Sancus, TrustLite, TyTAN,
)

__all__ = [
    "AESVictim",
    "ALL_ARCHITECTURES",
    "ArchFeatures",
    "EnclaveHandle",
    "SGX",
    "SMART",
    "Sanctuary",
    "Sanctum",
    "Sancus",
    "SecurityArchitecture",
    "TrustLite",
    "TrustZone",
    "TyTAN",
]
